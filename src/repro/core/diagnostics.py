"""Released-explanation diagnostics (post-processing, zero privacy cost).

Noisy histograms can mislead: a small cluster at a small eps_Hist may
produce bars that are mostly noise.  Because the *noise distribution* of the
release mechanism is public, the consumer can assess reliability without
touching the data again.  These helpers compute signal-to-noise summaries
per released explanation and flag unreliable components, complementing the
textual descriptions of :mod:`repro.core.textual`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..privacy.budget import ExplanationBudget
from ..privacy.postprocess import uniformity_distance
from .hbe import GlobalExplanation, SingleClusterExplanation

DEFAULT_SNR_THRESHOLD = 3.0


@dataclass(frozen=True)
class ClusterDiagnostics:
    """Reliability summary for one released single-cluster explanation."""

    cluster: int
    attribute: str
    cluster_mass: float
    expected_noise_l1: float
    snr: float
    uniformity: float
    reliable: bool

    def describe(self) -> str:
        status = "ok" if self.reliable else "LOW SIGNAL"
        return (
            f"Cluster {self.cluster + 1} ({self.attribute!r}): "
            f"mass={self.cluster_mass:.0f}, expected noise L1="
            f"{self.expected_noise_l1:.1f}, SNR={self.snr:.1f} [{status}]"
        )


def expected_noise_l1(eps_per_bin: float, domain_size: int) -> float:
    """Expected L1 noise mass of a per-bin geometric release at ``eps_per_bin``.

    E|Z| for the two-sided geometric with decay ``alpha = e^-eps`` is
    ``2 alpha / (1 - alpha^2)`` per bin.
    """
    if eps_per_bin <= 0:
        raise ValueError("eps_per_bin must be positive")
    if domain_size < 1:
        raise ValueError("domain_size must be >= 1")
    a = float(np.exp(-eps_per_bin))
    return domain_size * 2.0 * a / (1.0 - a * a)


def cluster_diagnostics(
    explanation: SingleClusterExplanation,
    eps_hist: float,
    snr_threshold: float = DEFAULT_SNR_THRESHOLD,
) -> ClusterDiagnostics:
    """Assess one released histogram pair against its known noise level.

    ``eps_hist`` is Algorithm 2's histogram budget; the cluster histogram was
    released at ``eps_hist / 2``.  SNR is released cluster mass over the
    expected L1 noise of its release.
    """
    m = explanation.attribute.domain_size
    mass = float(np.asarray(explanation.hist_cluster, dtype=np.float64).sum())
    noise = expected_noise_l1(eps_hist / 2.0, m)
    snr = mass / noise if noise > 0 else np.inf
    return ClusterDiagnostics(
        cluster=explanation.cluster,
        attribute=explanation.attribute.name,
        cluster_mass=mass,
        expected_noise_l1=noise,
        snr=snr,
        uniformity=uniformity_distance(np.asarray(explanation.hist_cluster)),
        reliable=snr >= snr_threshold,
    )


def reliability_report(
    explanation: GlobalExplanation,
    budget: "ExplanationBudget | float | None" = None,
    snr_threshold: float = DEFAULT_SNR_THRESHOLD,
) -> list[ClusterDiagnostics]:
    """Per-cluster diagnostics for a released global explanation.

    The histogram budget is read from the explanation's metadata when not
    supplied (DPClustX records it there).
    """
    if budget is None:
        meta_budget = explanation.metadata.get("budget")
        if not isinstance(meta_budget, ExplanationBudget):
            raise ValueError(
                "histogram budget unavailable: pass budget= explicitly"
            )
        eps_hist = meta_budget.eps_hist
    elif isinstance(budget, ExplanationBudget):
        eps_hist = budget.eps_hist
    else:
        eps_hist = float(budget)
    return [
        cluster_diagnostics(e, eps_hist, snr_threshold)
        for e in explanation.per_cluster
    ]


def render_report(report: list[ClusterDiagnostics]) -> str:
    """Human-readable reliability report."""
    lines = ["explanation reliability report:"]
    lines.extend("  " + d.describe() for d in report)
    unreliable = [d for d in report if not d.reliable]
    if unreliable:
        lines.append(
            f"  WARNING: {len(unreliable)} cluster(s) below SNR threshold — "
            "consider a larger eps_Hist or coarser bins (rebin_histogram)."
        )
    return "\n".join(lines)
