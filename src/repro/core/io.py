"""JSON (de)serialization of explanations.

Released explanations are post-processed data — persisting and re-loading
them costs no privacy.  The format is stable and self-describing: attribute
domains travel with the histograms, so a reader needs no access to the
original schema (which may itself be sensitive infrastructure).
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from ..dataset.schema import Attribute
from .hbe import (
    AttributeCombination,
    GlobalExplanation,
    MultiAttributeCombination,
    MultiGlobalExplanation,
    SingleClusterExplanation,
)

FORMAT_VERSION = 1


class ExplanationFormatError(ValueError):
    """Raised when a payload does not parse as a serialized explanation."""


def _single_to_dict(e: SingleClusterExplanation) -> dict[str, Any]:
    return {
        "cluster": e.cluster,
        "attribute": e.attribute.name,
        "domain": list(e.attribute.domain),
        "hist_rest": [float(x) for x in e.hist_rest],
        "hist_cluster": [float(x) for x in e.hist_cluster],
    }


def _single_from_dict(payload: dict[str, Any]) -> SingleClusterExplanation:
    try:
        attr = Attribute(payload["attribute"], tuple(payload["domain"]))
        return SingleClusterExplanation(
            cluster=int(payload["cluster"]),
            attribute=attr,
            hist_rest=np.asarray(payload["hist_rest"], dtype=np.float64),
            hist_cluster=np.asarray(payload["hist_cluster"], dtype=np.float64),
        )
    except (KeyError, TypeError) as exc:
        raise ExplanationFormatError(f"malformed single-cluster payload: {exc}") from exc


def _jsonable_metadata(metadata: Any) -> dict[str, Any]:
    out = {}
    for k, v in dict(metadata).items():
        try:
            json.dumps(v)
            out[k] = v
        except TypeError:
            out[k] = repr(v)
    return out


def explanation_to_dict(explanation: GlobalExplanation) -> dict[str, Any]:
    """Serialize a global explanation to a JSON-ready dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "global",
        "combination": list(explanation.combination.attributes),
        "per_cluster": [_single_to_dict(e) for e in explanation.per_cluster],
        "metadata": _jsonable_metadata(explanation.metadata),
    }


def explanation_from_dict(payload: dict[str, Any]) -> GlobalExplanation:
    """Rebuild a global explanation from :func:`explanation_to_dict` output."""
    if payload.get("kind") != "global":
        raise ExplanationFormatError(
            f"expected kind='global', got {payload.get('kind')!r}"
        )
    if payload.get("format_version") != FORMAT_VERSION:
        raise ExplanationFormatError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    singles = tuple(_single_from_dict(p) for p in payload["per_cluster"])
    return GlobalExplanation(
        per_cluster=singles,
        combination=AttributeCombination(tuple(payload["combination"])),
        metadata=payload.get("metadata", {}),
    )


def multi_explanation_to_dict(explanation: MultiGlobalExplanation) -> dict[str, Any]:
    """Serialize an Appendix-B multi-explanation."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "multi",
        "combination": [list(s) for s in explanation.combination.attribute_sets],
        "per_cluster": [
            [_single_to_dict(e) for e in cluster_expls]
            for cluster_expls in explanation.per_cluster
        ],
        "metadata": _jsonable_metadata(explanation.metadata),
    }


def multi_explanation_from_dict(payload: dict[str, Any]) -> MultiGlobalExplanation:
    if payload.get("kind") != "multi":
        raise ExplanationFormatError(
            f"expected kind='multi', got {payload.get('kind')!r}"
        )
    per_cluster = tuple(
        tuple(_single_from_dict(p) for p in cluster_payloads)
        for cluster_payloads in payload["per_cluster"]
    )
    return MultiGlobalExplanation(
        per_cluster=per_cluster,
        combination=MultiAttributeCombination(
            tuple(tuple(s) for s in payload["combination"])
        ),
        metadata=payload.get("metadata", {}),
    )


def dumps(explanation: "GlobalExplanation | MultiGlobalExplanation", **kwargs: Any) -> str:
    """Serialize an explanation to a JSON string."""
    if isinstance(explanation, GlobalExplanation):
        payload = explanation_to_dict(explanation)
    elif isinstance(explanation, MultiGlobalExplanation):
        payload = multi_explanation_to_dict(explanation)
    else:
        raise TypeError(f"cannot serialize {type(explanation).__name__}")
    return json.dumps(payload, **kwargs)


def loads(text: str) -> "GlobalExplanation | MultiGlobalExplanation":
    """Parse an explanation from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExplanationFormatError(f"invalid JSON: {exc}") from exc
    kind = payload.get("kind")
    if kind == "global":
        return explanation_from_dict(payload)
    if kind == "multi":
        return multi_explanation_from_dict(payload)
    raise ExplanationFormatError(f"unknown explanation kind {kind!r}")


def save(explanation: "GlobalExplanation | MultiGlobalExplanation", path: str) -> None:
    """Write an explanation to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(explanation, indent=2))


def load(path: str) -> "GlobalExplanation | MultiGlobalExplanation":
    """Read an explanation from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())
