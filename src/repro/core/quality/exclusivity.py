"""Exclusivity — an additional low-sensitivity quality function (future work #4).

Section 8 suggests extending DPClustX "to different score functions that
emphasize different facets of explainability".  This module contributes one
such facet with the same formal guarantees as the paper's scores:

``Exc_p(D, f, c, A) = sum_{a in dom(A)} max(2 * cnt_{A=a}(D_c) - cnt_{A=a}(D), 0)``

i.e. the amount of *majority mass*: how many cluster tuples sit in bins where
the cluster holds the strict majority of the dataset.  It rewards attributes
whose values are not merely shifted (interestingness) or predictive
(sufficiency) but *dominated* by the cluster — the bins a human would point
at and say "these are basically all cluster-c patients".

Formal properties (proved in the docstrings below, property-tested in
``tests/test_exclusivity.py``):

* **Range** ``[0, |D_c|]`` — matching ``Int_p`` / ``Suf_p`` so the scores are
  directly comparable and mixable (the Section 4.2 design requirement).
* **Sensitivity <= 1** — adding one tuple changes exactly one bin ``a``:
  if the tuple joins ``D_c``, the bin's term ``max(2 c_a - d_a, 0)`` moves by
  at most ``|2(c_a+1) - (d_a+1) - (2 c_a - d_a)| = 1``; if it joins outside
  ``D_c``, by at most ``|-(1)| = 1``; clamping at 0 only shrinks changes.
  Hence ``Exc_p`` plugs into Algorithm 1's Gumbel noise unchanged.
"""

from __future__ import annotations

import numpy as np

from ..counts import CountsProvider


def exclusivity_low_sens(counts: CountsProvider, c: int, name: str) -> float:
    """``Exc_p``: cluster mass in bins where the cluster holds the majority."""
    h = np.asarray(counts.full(name), dtype=np.float64)
    h_c = np.asarray(counts.cluster(name, c), dtype=np.float64)
    return float(np.maximum(2.0 * h_c - h, 0.0).sum())


def exclusivity_range(counts: CountsProvider, c: int, name: str) -> float:
    """The range upper bound ``|D_c|`` (attained when D_c's values are unique)."""
    return counts.cluster_size(name, c)


def mixed_score(
    counts: CountsProvider,
    c: int,
    name: str,
    gamma_int: float,
    gamma_suf: float,
    gamma_exc: float,
) -> float:
    """A 3-way convex mix of Int_p, Suf_p and Exc_p.

    By Lemma A.3, a convex combination of sensitivity-1 functions has
    sensitivity <= 1, so this is a drop-in Stage-1 score.
    """
    total = gamma_int + gamma_suf + gamma_exc
    if total <= 0 or min(gamma_int, gamma_suf, gamma_exc) < 0:
        raise ValueError("gammas must be non-negative and not all zero")
    from .interestingness import interestingness_low_sens
    from .sufficiency import sufficiency_low_sens

    score = 0.0
    if gamma_int:
        score += gamma_int * interestingness_low_sens(counts, c, name)
    if gamma_suf:
        score += gamma_suf * sufficiency_low_sens(counts, c, name)
    if gamma_exc:
        score += gamma_exc * exclusivity_low_sens(counts, c, name)
    return score / total
