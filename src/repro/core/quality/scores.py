"""Combined quality scores: ``Score_gamma`` (Def. 4.11) and ``GlScore_lambda``
(Def. 4.13), plus their sensitive counterparts used by TabEE-style baselines.

Both low-sensitivity scores are convex combinations of sensitivity-1
functions, hence have sensitivity <= 1 (Lemma A.3; Propositions 4.12, 4.14).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..counts import CountsProvider
from .diversity import (
    diversity_range,
    global_diversity_low_sens,
    global_diversity_sensitive,
    pair_diversity_low_sens,
)
from .interestingness import (
    global_interestingness_low_sens,
    global_interestingness_tvd,
    interestingness_low_sens,
    interestingness_tvd,
)
from .sufficiency import (
    cluster_sufficiency_normalized,
    global_sufficiency_low_sens,
    global_sufficiency_sensitive,
    sufficiency_low_sens,
)

SCORE_SENSITIVITY = 1.0
"""Upper bound on the sensitivity of Score_gamma and GlScore_lambda."""


@dataclass(frozen=True)
class Weights:
    """The ``lambda = (lambda_Int, lambda_Suf, lambda_Div)`` hyperparameters.

    Non-negative and summing to 1 (Definition 4.13); the paper's default is
    the equal split 1/3 each (Section 4.4).  ``gamma()`` derives the marginal
    single-cluster weights of Algorithm 2, Line 1.
    """

    lambda_int: float = 1.0 / 3.0
    lambda_suf: float = 1.0 / 3.0
    lambda_div: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        vals = (self.lambda_int, self.lambda_suf, self.lambda_div)
        if any(v < 0 for v in vals):
            raise ValueError("weights must be non-negative")
        if not np.isclose(sum(vals), 1.0, atol=1e-9):
            raise ValueError(f"weights must sum to 1, got {sum(vals)}")

    def gamma(self) -> tuple[float, float]:
        """``(gamma_Int, gamma_Suf)`` — Algorithm 2, Line 1.

        When both marginal weights vanish (pure-diversity lambda) we fall
        back to an even split so Stage-1 still ranks candidates.
        """
        denom = self.lambda_int + self.lambda_suf
        if denom <= 0:
            return 0.5, 0.5
        return self.lambda_int / denom, self.lambda_suf / denom

    @classmethod
    def equal(cls) -> "Weights":
        return cls()

    @classmethod
    def without(cls, zeroed: str) -> "Weights":
        """Table 1 configurations: one weight zero, the rest 1/2 each."""
        if zeroed == "int":
            return cls(0.0, 0.5, 0.5)
        if zeroed == "suf":
            return cls(0.5, 0.0, 0.5)
        if zeroed == "div":
            return cls(0.5, 0.5, 0.0)
        raise ValueError(f"unknown weight name {zeroed!r}")


def single_cluster_score(
    counts: CountsProvider,
    c: int,
    name: str,
    gamma_int: float,
    gamma_suf: float,
) -> float:
    """``Score_gamma`` (Definition 4.11): sensitivity <= 1, range [0, |D_c|]."""
    score = 0.0
    if gamma_int:
        score += gamma_int * interestingness_low_sens(counts, c, name)
    if gamma_suf:
        score += gamma_suf * sufficiency_low_sens(counts, c, name)
    return score


def single_cluster_scores_matrix(
    counts: CountsProvider,
    gamma_int: float,
    gamma_suf: float,
    names: "tuple[str, ...] | None" = None,
) -> np.ndarray:
    """``Score_gamma`` for every (cluster, attribute) pair — Algorithm 1's
    inner loop, returned as a ``(|C|, |A|)`` matrix.

    Served by the batched scoring engine (one NumPy expression per quality
    function instead of ``|C| * |A|`` scalar calls); the scalar oracle
    remains available as :func:`single_cluster_scores_matrix_reference`.
    """
    from ..engine import scoring_engine

    return scoring_engine(counts).score_matrix(gamma_int, gamma_suf, names)


def single_cluster_scores_matrix_reference(
    counts: CountsProvider,
    gamma_int: float,
    gamma_suf: float,
    names: "tuple[str, ...] | None" = None,
) -> np.ndarray:
    """Scalar-loop reference for :func:`single_cluster_scores_matrix`.

    Kept as the test oracle the batched kernels are pinned against (and for
    exotic providers that cannot be stacked)."""
    names = names if names is not None else counts.names
    out = np.empty((counts.n_clusters, len(names)))
    for c in range(counts.n_clusters):
        for j, a in enumerate(names):
            out[c, j] = single_cluster_score(counts, c, a, gamma_int, gamma_suf)
    return out


def global_score(
    counts: CountsProvider,
    attributes: "tuple[str, ...] | list[str]",
    weights: Weights,
) -> float:
    """``GlScore_lambda`` (Definition 4.13): sensitivity <= 1."""
    score = 0.0
    if weights.lambda_int:
        score += weights.lambda_int * global_interestingness_low_sens(counts, attributes)
    if weights.lambda_suf:
        score += weights.lambda_suf * global_sufficiency_low_sens(counts, attributes)
    if weights.lambda_div:
        score += weights.lambda_div * global_diversity_low_sens(counts, attributes)
    return score


def global_score_range(cluster_sizes: np.ndarray, weights: Weights) -> float:
    """``R_GlScore`` of Proposition 4.14 (used by tests and utility bounds)."""
    sizes = np.asarray(cluster_sizes, dtype=np.float64)
    avg = float(sizes.mean()) if sizes.size else 0.0
    return (weights.lambda_int + weights.lambda_suf) * avg + (
        weights.lambda_div * diversity_range(sizes)
    )


# --------------------------------------------------------------------------- #
# sensitive counterparts (TabEE-style; evaluation and DP-TabEE baseline)
# --------------------------------------------------------------------------- #

SENSITIVE_SCORE_SENSITIVITY = 1.0
"""DP-safe upper bound for the [0, 1]-ranged sensitive scores.

Propositions 4.1 / 4.5 prove the sensitivity is *at least* 1/2; any function
with range [0, 1] has sensitivity at most 1, so calibrating DP-TabEE's noise
to 1 is valid (and the large noise-to-range ratio is exactly the failure mode
the paper demonstrates).
"""


def sensitive_single_cluster_score(
    counts: CountsProvider,
    c: int,
    name: str,
    gamma_int: float,
    gamma_suf: float,
) -> float:
    """TabEE-style per-cluster score in [0, 1]: TVD + normalized sufficiency."""
    score = 0.0
    if gamma_int:
        score += gamma_int * interestingness_tvd(counts, c, name)
    if gamma_suf:
        score += gamma_suf * cluster_sufficiency_normalized(counts, c, name)
    return score


def sensitive_global_score(
    counts: CountsProvider,
    attributes: "tuple[str, ...] | list[str]",
    weights: Weights,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """The sensitive ``Quality`` of Section 6.1 in [0, 1].

    ``lambda_Int * Int + lambda_Suf * Suf + lambda_Div * Div`` with the
    normalized permutation diversity (footnote 6).
    """
    score = 0.0
    if weights.lambda_int:
        score += weights.lambda_int * global_interestingness_tvd(counts, attributes)
    if weights.lambda_suf:
        score += weights.lambda_suf * global_sufficiency_sensitive(counts, attributes)
    if weights.lambda_div:
        score += weights.lambda_div * global_diversity_sensitive(
            counts, attributes, rng, normalized=True
        )
    return score


def enumerate_combinations(
    candidate_sets: "list[list[str]]",
) -> "itertools.product":
    """All attribute combinations drawing one candidate per cluster (Line 5)."""
    return itertools.product(*candidate_sets)
