"""Sufficiency: the tuple-averaged ``Suf`` of [8, 10] and the
low-sensitivity ``Suf_p`` of Definition 4.6.

``Suf_p(D, f, c, A) = sum_{a in dom_{D_c}(A)} cnt_{A=a}(D_c)^2 / cnt_{A=a}(D)``

has sensitivity 1 and range ``[0, |D_c|]`` (Proposition 4.7(2)), and relates
to the sensitive global sufficiency by
``|D| * Suf(D, f, AC) = sum_c Suf_p(D, f, c, AC(c))`` (Proposition 4.7(1)).
"""

from __future__ import annotations

import numpy as np

from ..counts import CountsProvider


def sufficiency_low_sens(counts: CountsProvider, c: int, name: str) -> float:
    """``Suf_p`` (Definition 4.6); maximal when cluster values are exclusive."""
    h = np.asarray(counts.full(name), dtype=np.float64)
    h_c = np.asarray(counts.cluster(name, c), dtype=np.float64)
    mask = h_c > 0
    if not np.any(mask):
        return 0.0
    denom = np.maximum(h[mask], h_c[mask])  # exact counts: h >= h_c always;
    # noisy providers may violate that, so clamp to keep the ratio <= count.
    return float(np.sum(h_c[mask] * h_c[mask] / np.maximum(denom, 1e-12)))


def global_sufficiency_low_sens(
    counts: CountsProvider, attributes: "tuple[str, ...] | list[str]"
) -> float:
    """``Suf_p(D, f, AC) = (1/|C|) * sum_c Suf_p(D, f, c, AC(c))`` (Def. 4.13)."""
    k = counts.n_clusters
    if len(attributes) != k:
        raise ValueError("need one attribute per cluster")
    return sum(sufficiency_low_sens(counts, c, a) for c, a in enumerate(attributes)) / float(k)


def global_sufficiency_sensitive(
    counts: CountsProvider, attributes: "tuple[str, ...] | list[str]"
) -> float:
    """Sensitive ``Suf(D, f, AC)`` in [0, 1] via Proposition 4.7(1).

    Equals the tuple-average of local sufficiencies ``ms_AC(t)`` (Eqs. 2-3);
    computed as ``(1/|D|) * sum_c Suf_p`` which is exactly the identity the
    proposition proves.  With noisy counts the per-attribute noisy total
    stands in for ``|D|``.
    """
    k = counts.n_clusters
    if len(attributes) != k:
        raise ValueError("need one attribute per cluster")
    acc = 0.0
    for c, a in enumerate(attributes):
        n = counts.total(a)
        if n > 0:
            acc += sufficiency_low_sens(counts, c, a) / n
    return acc


def cluster_sufficiency_normalized(
    counts: CountsProvider, c: int, name: str
) -> float:
    """``Suf_p / |D_c|`` in [0, 1] — the per-cluster average local sufficiency.

    Used by the TabEE baseline's single-cluster ranking so that the
    interestingness (TVD, range [0,1]) and sufficiency terms are comparable,
    mirroring how the low-sensitivity variants share the range [0, |D_c|]
    (Section 4.2, third motivation).
    """
    n_c = counts.cluster_size(name, c)
    if n_c <= 0:
        return 0.0
    return sufficiency_low_sens(counts, c, name) / n_c
