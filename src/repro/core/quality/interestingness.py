"""Interestingness: sensitive TVD form (Eq. 1) and the low-sensitivity
``Int_p`` of Definition 4.3.

``Int_p(D, f, c, A) = (1/2) * sum_a |cnt_{A=a}(D_c) - (|D_c|/|D|) cnt_{A=a}(D)|
                    = |D_c| * TVD(pi_A(D), pi_A(D_c))``

has sensitivity 1 and range ``[0, |D_c|]`` (Proposition 4.4) and preserves
the per-cluster TVD ranking of attributes.
"""

from __future__ import annotations

import numpy as np

from ..counts import CountsProvider
from .distances import jsd_counts, tvd_counts


def interestingness_tvd(counts: CountsProvider, c: int, name: str) -> float:
    """Sensitive interestingness: ``TVD(pi_A(D), pi_A(D_c))`` (Eq. 1).

    Range [0, 1]; sensitivity at least 1/2 (Proposition 4.1) — *not* used
    inside DP selection, only for evaluation and the DP-TabEE baseline.
    """
    return tvd_counts(counts.full(name), counts.cluster(name, c))


def interestingness_jsd(counts: CountsProvider, c: int, name: str) -> float:
    """Sensitive Jensen-Shannon interestingness (Appendix A, Prop. A.5)."""
    from .distances import normalize_counts

    p = normalize_counts(counts.full(name))
    q = normalize_counts(counts.cluster(name, c))
    if p.sum() == 0 or q.sum() == 0:
        return 0.0
    return jsd_counts(counts.full(name), counts.cluster(name, c))


def interestingness_low_sens(counts: CountsProvider, c: int, name: str) -> float:
    """``Int_p`` (Definition 4.3): sensitivity-1, range ``[0, |D_c|]``."""
    h = np.asarray(counts.full(name), dtype=np.float64)
    h_c = np.asarray(counts.cluster(name, c), dtype=np.float64)
    n = counts.total(name)
    n_c = counts.cluster_size(name, c)
    if n <= 0:
        return 0.0
    return 0.5 * float(np.abs(h_c - (n_c / n) * h).sum())


def global_interestingness_low_sens(
    counts: CountsProvider, attributes: "tuple[str, ...] | list[str]"
) -> float:
    """``Int_p(D, f, AC) = (1/|C|) * sum_c Int_p(D, f, c, AC(c))`` (Def. 4.13)."""
    k = counts.n_clusters
    if len(attributes) != k:
        raise ValueError("need one attribute per cluster")
    return sum(
        interestingness_low_sens(counts, c, a) for c, a in enumerate(attributes)
    ) / float(k)


def global_interestingness_tvd(
    counts: CountsProvider, attributes: "tuple[str, ...] | list[str]"
) -> float:
    """Sensitive global interestingness: average per-cluster TVD (Section 4.1)."""
    k = counts.n_clusters
    if len(attributes) != k:
        raise ValueError("need one attribute per cluster")
    return sum(interestingness_tvd(counts, c, a) for c, a in enumerate(attributes)) / float(k)
