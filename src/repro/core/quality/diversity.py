"""Diversity: the low-sensitivity pairwise/global measures of Definitions
4.8-4.9 and the sensitive permutation-based ``Div`` of [8] (Appendix A.3).

Low-sensitivity pair diversity:

``d(D, f, c, c', A_c, A_c') = min{|D_c|, |D_c'|} * (1 if A_c != A_c' else
TVD(pi_A(D_c), pi_A(D_c')))``

Global: ``Div_p = average of d over all distinct cluster pairs`` — sensitivity
<= 1 (Proposition 4.10).
"""

from __future__ import annotations

import functools
import itertools
import math

import numpy as np

from ...privacy.rng import ensure_rng
from ..counts import CountsProvider
from .distances import normalize_counts, tvd_probs


def pair_diversity_low_sens(
    counts: CountsProvider, c: int, c2: int, attr_c: str, attr_c2: str
) -> float:
    """``d`` (Definition 4.8) for one ordered-insensitive cluster pair."""
    n_c = counts.cluster_size(attr_c, c)
    n_c2 = counts.cluster_size(attr_c2, c2)
    weight = min(n_c, n_c2)
    if attr_c != attr_c2:
        return float(weight)
    p = np.asarray(counts.cluster(attr_c, c), dtype=np.float64) / max(n_c, 1.0)
    q = np.asarray(counts.cluster(attr_c, c2), dtype=np.float64) / max(n_c2, 1.0)
    return float(weight) * 0.5 * float(np.abs(p - q).sum())


def global_diversity_low_sens(
    counts: CountsProvider, attributes: "tuple[str, ...] | list[str]"
) -> float:
    """``Div_p`` (Definition 4.9): average of all pairwise diversities."""
    k = counts.n_clusters
    if len(attributes) != k:
        raise ValueError("need one attribute per cluster")
    if k < 2:
        return 0.0
    pairs = list(itertools.combinations(range(k), 2))
    acc = sum(
        pair_diversity_low_sens(counts, c, c2, attributes[c], attributes[c2])
        for c, c2 in pairs
    )
    return acc / len(pairs)


def diversity_range(cluster_sizes: np.ndarray) -> float:
    """``R_Div`` of Proposition 4.10: the weighted average of cluster sizes.

    ``R_Div = (1 / C(|C|,2)) * sum_i (|C| - i) * |D_{c_i}|`` with sizes sorted
    ascending (1-indexed ``i`` in the paper; here the smallest cluster gets
    weight ``|C| - 1``).
    """
    sizes = np.sort(np.asarray(cluster_sizes, dtype=np.float64))
    k = sizes.size
    if k < 2:
        return 0.0
    weights = np.arange(k - 1, -1, -1, dtype=np.float64)
    return float((weights * sizes).sum() / math.comb(k, 2))


# --------------------------------------------------------------------------- #
# sensitive, permutation-based diversity of [8] (Appendix A.3)
# --------------------------------------------------------------------------- #

_EXACT_PERMUTATION_LIMIT = 6
_MC_SAMPLES = 300


def _cluster_tvd_matrix(
    counts: CountsProvider, clusters: "tuple[int, ...]", name: str
) -> np.ndarray:
    """Pairwise TVDs between cluster value distributions on one attribute."""
    dists = [normalize_counts(counts.cluster(name, c)) for c in clusters]
    g = len(clusters)
    out = np.zeros((g, g))
    for i in range(g):
        for j in range(i + 1, g):
            out[i, j] = out[j, i] = tvd_probs(dists[i], dists[j])
    return out


def _perm_div(tvd: np.ndarray, perm: "tuple[int, ...]") -> float:
    """``PermDiv_A(p)``: summand i is ``min_{j<i} TVD(p(i), p(j))``, 1 for i=0."""
    total = 1.0  # the first element contributes the maximal value 1
    for i in range(1, len(perm)):
        total += min(tvd[perm[i], perm[j]] for j in range(i))
    return total


@functools.lru_cache(maxsize=8)
def _all_perms(g: int) -> np.ndarray:
    """All permutations of ``range(g)`` as a ``(g!, g)`` index matrix."""
    return np.array(list(itertools.permutations(range(g))), dtype=np.intp)


def _perm_div_batch(tvd: np.ndarray, perms: np.ndarray) -> float:
    """Mean ``PermDiv`` over a ``(P, g)`` permutation matrix, vectorised.

    One gather builds the ``(P, g, g)`` permuted-TVD tensor; the prefix-min
    of row ``i`` over columns ``< i`` is then a handful of axis-mins instead
    of ``P * g^2 / 2`` scalar comparisons.
    """
    g = perms.shape[1]
    gathered = tvd[perms[:, :, None], perms[:, None, :]]
    acc = np.full(perms.shape[0], 1.0)  # the first pick contributes 1
    for i in range(1, g):
        acc += gathered[:, i, :i].min(axis=1)
    return float(acc.sum() / perms.shape[0])


def _avg_perm_div(
    tvd: np.ndarray, rng: np.random.Generator, n_samples: int = _MC_SAMPLES
) -> float:
    """Average PermDiv over permutations: exact for small groups, MC above."""
    g = tvd.shape[0]
    if g == 1:
        return 1.0
    if g == 2:
        # Both orderings score 1 + TVD, and mean(x, x) == x exactly.
        return 1.0 + float(tvd[0, 1])
    if g <= _EXACT_PERMUTATION_LIMIT:
        return _perm_div_batch(tvd, _all_perms(g))
    perms = np.stack([rng.permutation(g) for _ in range(n_samples)])
    return _perm_div_batch(tvd, perms)


def global_diversity_sensitive(
    counts: CountsProvider,
    attributes: "tuple[str, ...] | list[str]",
    rng: np.random.Generator | int | None = 0,
    normalized: bool = True,
) -> float:
    """The sensitive ``Div`` of [8] (Appendix A.3).

    Groups clusters by their assigned attribute (``ExpBy``), averages
    ``PermDiv`` over the group's permutations, and sums across attributes.
    ``normalized=True`` divides by ``|C|`` to land in [0, 1] (footnote 6) —
    the form used by the evaluation ``Quality`` metric.  Groups larger than
    6 are averaged by Monte-Carlo with a pinned default seed, keeping the
    evaluation deterministic.
    """
    k = counts.n_clusters
    if len(attributes) != k:
        raise ValueError("need one attribute per cluster")
    gen = ensure_rng(rng)
    by_attr: dict[str, list[int]] = {}
    for c, a in enumerate(attributes):
        by_attr.setdefault(a, []).append(c)
    total = 0.0
    for name, clusters in by_attr.items():
        tvd = _cluster_tvd_matrix(counts, tuple(clusters), name)
        total += _avg_perm_div(tvd, gen)
    if normalized:
        total /= k
    return total
