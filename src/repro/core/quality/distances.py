"""Distribution distances over histograms: TVD and Jensen-Shannon.

Equation (1) defines the total variation distance between the value
distributions of ``pi_A(D)`` and ``pi_A(D_c)``; Appendix A additionally
analyses the Jensen-Shannon distance [41].  Both are shown to be too
sensitive for direct DP use (Propositions 4.1, A.5) but remain the basis of
the *evaluation* metrics of Section 6.1.
"""

from __future__ import annotations

import numpy as np


def normalize_counts(counts: np.ndarray) -> np.ndarray:
    """Counts -> probability vector; the empty histogram maps to all-zeros."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return np.zeros_like(counts)
    return counts / total


def tvd_probs(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance ``(1/2) * ||p - q||_1`` between distributions."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must share a domain")
    return 0.5 * float(np.abs(p - q).sum())


def tvd_counts(h1: np.ndarray, h2: np.ndarray) -> float:
    """TVD between the distributions induced by two count vectors (Eq. 1).

    Either histogram being empty yields 0 (the convention the sensitive
    interestingness adopts for empty clusters; such candidates carry no
    signal either way).
    """
    p = normalize_counts(h1)
    q = normalize_counts(h2)
    if p.sum() == 0 or q.sum() == 0:
        return 0.0
    return tvd_probs(p, q)


def _entropy(p: np.ndarray) -> float:
    """Shannon entropy in bits (base 2), with the 0 log 0 = 0 convention.

    Base 2 gives the Jensen-Shannon divergence the range [0, 1] claimed by
    Proposition A.5 (natural logs would cap it at ln 2).
    """
    mask = p > 0
    return -float(np.sum(p[mask] * np.log2(p[mask])))


def jensen_shannon_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """JSD(p, q) = H((p+q)/2) - H(p)/2 - H(q)/2 (Definition A.4), in bits."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must share a domain")
    mix = 0.5 * (p + q)
    return max(_entropy(mix) - 0.5 * _entropy(p) - 0.5 * _entropy(q), 0.0)


def jensen_shannon_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``d_JS`` — the square root of the Jensen-Shannon divergence."""
    return float(np.sqrt(jensen_shannon_divergence(p, q)))


def jsd_counts(h1: np.ndarray, h2: np.ndarray) -> float:
    """Jensen-Shannon distance between distributions of two count vectors."""
    p = normalize_counts(h1)
    q = normalize_counts(h2)
    if p.sum() == 0 or q.sum() == 0:
        return 0.0
    return jensen_shannon_distance(p, q)
