"""Quality functions for HBEs: sensitive originals and DP-ready variants."""

from .exclusivity import exclusivity_low_sens, exclusivity_range, mixed_score
from .distances import (
    jensen_shannon_distance,
    jensen_shannon_divergence,
    jsd_counts,
    normalize_counts,
    tvd_counts,
    tvd_probs,
)
from .diversity import (
    diversity_range,
    global_diversity_low_sens,
    global_diversity_sensitive,
    pair_diversity_low_sens,
)
from .interestingness import (
    global_interestingness_low_sens,
    global_interestingness_tvd,
    interestingness_jsd,
    interestingness_low_sens,
    interestingness_tvd,
)
from .scores import (
    SCORE_SENSITIVITY,
    SENSITIVE_SCORE_SENSITIVITY,
    Weights,
    enumerate_combinations,
    global_score,
    global_score_range,
    sensitive_global_score,
    sensitive_single_cluster_score,
    single_cluster_score,
    single_cluster_scores_matrix,
    single_cluster_scores_matrix_reference,
)
from .sufficiency import (
    cluster_sufficiency_normalized,
    global_sufficiency_low_sens,
    global_sufficiency_sensitive,
    sufficiency_low_sens,
)

__all__ = [
    "exclusivity_low_sens",
    "exclusivity_range",
    "mixed_score",
    "jensen_shannon_distance",
    "jensen_shannon_divergence",
    "jsd_counts",
    "normalize_counts",
    "tvd_counts",
    "tvd_probs",
    "diversity_range",
    "global_diversity_low_sens",
    "global_diversity_sensitive",
    "pair_diversity_low_sens",
    "global_interestingness_low_sens",
    "global_interestingness_tvd",
    "interestingness_jsd",
    "interestingness_low_sens",
    "interestingness_tvd",
    "SCORE_SENSITIVITY",
    "SENSITIVE_SCORE_SENSITIVITY",
    "Weights",
    "enumerate_combinations",
    "global_score",
    "global_score_range",
    "sensitive_global_score",
    "sensitive_single_cluster_score",
    "single_cluster_score",
    "single_cluster_scores_matrix",
    "single_cluster_scores_matrix_reference",
    "cluster_sufficiency_normalized",
    "global_sufficiency_low_sens",
    "global_sufficiency_sensitive",
    "sufficiency_low_sens",
]
