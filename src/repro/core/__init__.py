"""DPClustX core: HBE structures, quality functions and Algorithms 1-2."""

from . import diagnostics, io, svg
from .counts import ClusteredCounts, CountsProvider, NoisyCounts
from .diagnostics import reliability_report, render_report
from .dpclustx import (
    DPClustX,
    SelectionResult,
    combination_score_tensor,
    combination_score_tensor_reference,
)
from .engine import CountsStack, ScoringEngine, scoring_engine
from .pairs import ProductCounts, explain_with_pairs
from .svg import render_global_svg, render_svg, save_svg
from .hbe import (
    AttributeCombination,
    GlobalExplanation,
    MultiAttributeCombination,
    MultiGlobalExplanation,
    SingleClusterExplanation,
)
from .multi import MultiDPClustX, multi_global_score
from .quality import Weights
from .select_candidates import CandidateSelection, select_candidates
from .textual import describe, describe_single

__all__ = [
    "diagnostics",
    "io",
    "svg",
    "reliability_report",
    "render_report",
    "render_global_svg",
    "render_svg",
    "save_svg",
    "ProductCounts",
    "explain_with_pairs",
    "ClusteredCounts",
    "CountsProvider",
    "NoisyCounts",
    "DPClustX",
    "SelectionResult",
    "combination_score_tensor",
    "combination_score_tensor_reference",
    "CountsStack",
    "ScoringEngine",
    "scoring_engine",
    "AttributeCombination",
    "GlobalExplanation",
    "MultiAttributeCombination",
    "MultiGlobalExplanation",
    "SingleClusterExplanation",
    "MultiDPClustX",
    "multi_global_score",
    "Weights",
    "CandidateSelection",
    "select_candidates",
    "describe",
    "describe_single",
]
