"""Histogram-based explanation (HBE) data structures — Definitions 2.2 & 2.4.

A *single-cluster HBE candidate* is ``(c, A, h_A(D \\ D_c), h_A(D_c))``; a
*global HBE candidate* holds one per cluster.  An *attribute combination*
``AC : C -> A`` names the attribute explaining each cluster — the object the
selection mechanisms actually search over (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..dataset.schema import Attribute


@dataclass(frozen=True)
class AttributeCombination:
    """``AC : C -> A`` as a tuple of attribute names indexed by cluster label."""

    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("an attribute combination needs at least one cluster")

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, str]) -> "AttributeCombination":
        if set(mapping) != set(range(len(mapping))):
            raise ValueError("mapping must cover cluster labels 0..|C|-1")
        return cls(tuple(mapping[c] for c in range(len(mapping))))

    @property
    def n_clusters(self) -> int:
        return len(self.attributes)

    def __getitem__(self, c: int) -> str:
        return self.attributes[c]

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def distinct_attributes(self) -> tuple[str, ...]:
        """``A'`` — attributes appearing at least once (Algorithm 2, Line 8)."""
        seen: dict[str, None] = {}
        for a in self.attributes:
            seen.setdefault(a, None)
        return tuple(seen)

    def explained_by(self, attribute: str) -> tuple[int, ...]:
        """``ExpBy(AC, A)`` — cluster labels assigned to ``attribute``."""
        return tuple(c for c, a in enumerate(self.attributes) if a == attribute)


@dataclass(frozen=True)
class SingleClusterExplanation:
    """Definition 2.2: ``e_c = (c, A, h_A(D \\ D_c), h_A(D_c))``.

    Histogram vectors are aligned with ``attribute.domain`` and may be noisy
    (floats) when produced under DP.
    """

    cluster: int
    attribute: Attribute
    hist_rest: np.ndarray
    hist_cluster: np.ndarray

    def __post_init__(self) -> None:
        m = self.attribute.domain_size
        if self.hist_rest.shape != (m,) or self.hist_cluster.shape != (m,):
            raise ValueError(
                f"histograms for {self.attribute.name!r} must have length {m}"
            )

    def normalized(self) -> tuple[np.ndarray, np.ndarray]:
        """Frequency (proportion) histograms for visualisation (Section 2)."""

        def norm(h: np.ndarray) -> np.ndarray:
            s = float(h.sum())
            return h / s if s > 0 else np.zeros_like(h, dtype=np.float64)

        return norm(self.hist_rest.astype(np.float64)), norm(
            self.hist_cluster.astype(np.float64)
        )

    def render(self, width: int = 40, cluster_name: str | None = None) -> str:
        """ASCII rendering of the paired histogram (Figure 2a style)."""
        rest, clus = self.normalized()
        label = cluster_name or f"Cluster {self.cluster + 1}"
        lines = [f"'{self.attribute.name}' — {label} vs Rest (frequency %)"]
        peak = max(float(rest.max(initial=0.0)), float(clus.max(initial=0.0)), 1e-12)
        for a, value in enumerate(self.attribute.domain):
            bar_c = "#" * int(round(width * clus[a] / peak))
            bar_r = "." * int(round(width * rest[a] / peak))
            lines.append(f"  {value:>16s} | {100*clus[a]:5.1f}% {bar_c}")
            lines.append(f"  {'':>16s} | {100*rest[a]:5.1f}% {bar_r}")
        lines.append(f"  ({'#'} = {label}, {'.'} = Rest)")
        return "\n".join(lines)


@dataclass(frozen=True)
class GlobalExplanation:
    """Definition 2.4: one single-cluster explanation per cluster.

    ``metadata`` records provenance (budgets, mechanism, selection scores) so
    downstream consumers can audit how the explanation was produced.
    """

    per_cluster: tuple[SingleClusterExplanation, ...]
    combination: AttributeCombination
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.per_cluster) != self.combination.n_clusters:
            raise ValueError("one explanation per cluster is required")
        for c, e in enumerate(self.per_cluster):
            if e.cluster != c:
                raise ValueError("explanations must be ordered by cluster label")
            if e.attribute.name != self.combination[c]:
                raise ValueError("explanation attribute disagrees with combination")

    @property
    def n_clusters(self) -> int:
        return len(self.per_cluster)

    def __iter__(self) -> Iterator[SingleClusterExplanation]:
        return iter(self.per_cluster)

    def __getitem__(self, c: int) -> SingleClusterExplanation:
        return self.per_cluster[c]

    def render(self, width: int = 40) -> str:
        """ASCII rendering of the full explanation."""
        parts = [e.render(width) for e in self.per_cluster]
        return "\n\n".join(parts)


@dataclass(frozen=True)
class MultiAttributeCombination:
    """Appendix B: ``AC : C -> {S ⊆ A, |S| = ell}`` (ell attributes per cluster)."""

    attribute_sets: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not self.attribute_sets:
            raise ValueError("need at least one cluster")
        sizes = {len(s) for s in self.attribute_sets}
        if len(sizes) != 1:
            raise ValueError("all clusters must receive the same number of attributes")
        for s in self.attribute_sets:
            if len(set(s)) != len(s):
                raise ValueError("attribute sets must not repeat attributes")

    @property
    def ell(self) -> int:
        return len(self.attribute_sets[0])

    @property
    def n_clusters(self) -> int:
        return len(self.attribute_sets)

    def __getitem__(self, c: int) -> tuple[str, ...]:
        return self.attribute_sets[c]

    def candidates(self) -> tuple[tuple[int, str], ...]:
        """``Cand(AC) = {(c, A) | c in C, A in AC(c)}`` (Appendix B)."""
        return tuple(
            (c, a) for c, attrs in enumerate(self.attribute_sets) for a in attrs
        )

    def distinct_attributes(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for attrs in self.attribute_sets:
            for a in attrs:
                seen.setdefault(a, None)
        return tuple(seen)


@dataclass(frozen=True)
class MultiGlobalExplanation:
    """Appendix B output: ``ell`` single-cluster explanations per cluster."""

    per_cluster: tuple[tuple[SingleClusterExplanation, ...], ...]
    combination: MultiAttributeCombination
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        return len(self.per_cluster)

    def __getitem__(self, c: int) -> tuple[SingleClusterExplanation, ...]:
        return self.per_cluster[c]
