"""Algorithm 2 — the DPClustX framework (Section 5.2).

Pipeline (Figure 3): Stage-1 candidate sets via Algorithm 1; Stage-2 selects
one attribute combination out of the ``k^|C|`` candidates with the
exponential mechanism over ``GlScore_lambda``; noisy histograms are generated
*only* for the selected attributes.  The whole run is
``(eps_CandSet + eps_TopComb + eps_Hist)``-DP (Theorem 5.3), which the
optional :class:`~repro.privacy.budget.PrivacyAccountant` verifies at runtime.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from ..clustering.base import ClusteringFunction
from ..dataset.table import Dataset
from ..privacy.budget import ExplanationBudget, PrivacyAccountant
from ..privacy.exponential import ExponentialMechanism
from ..privacy.histograms import GeometricHistogram, HistogramMechanism
from ..privacy.rng import ensure_rng
from .counts import ClusteredCounts, CountsProvider
from .engine import scoring_engine
from .hbe import AttributeCombination, GlobalExplanation, SingleClusterExplanation
from .quality.diversity import pair_diversity_low_sens
from .quality.interestingness import interestingness_low_sens
from .quality.scores import SCORE_SENSITIVITY, Weights
from .quality.sufficiency import sufficiency_low_sens
from .select_candidates import CandidateSelection, select_candidates

_MAX_COMBINATIONS = 50_000_000
"""Guard against enumerating more global candidates than memory allows."""


def combination_score_tensor(
    counts: CountsProvider,
    candidate_sets: "tuple[tuple[str, ...], ...]",
    weights: Weights,
) -> np.ndarray:
    """``GlScore_lambda`` for *every* candidate combination, as a tensor.

    Served by the batched scoring engine: the global score decomposes into
    per-cluster terms (interestingness, sufficiency) plus pairwise diversity
    terms, so the full ``k_1 x ... x k_|C|`` score tensor is assembled from
    ``|C|`` vectors and ``C(|C|, 2)`` small matrices broadcast into place —
    the same ``O(k^|C|)`` evaluation count as the paper's complexity
    analysis, with every leaf score computed as an array kernel rather than
    a per-(cluster, attribute) Python call.
    """
    engine = scoring_engine(counts)
    return engine.combination_score_tensor(
        candidate_sets, weights, max_combinations=_MAX_COMBINATIONS
    )


def combination_score_tensor_reference(
    counts: CountsProvider,
    candidate_sets: "tuple[tuple[str, ...], ...]",
    weights: Weights,
) -> np.ndarray:
    """Scalar-score reference for :func:`combination_score_tensor` (oracle)."""
    n_clusters = counts.n_clusters
    if len(candidate_sets) != n_clusters:
        raise ValueError("need one candidate set per cluster")
    shape = tuple(len(s) for s in candidate_sets)
    total = math.prod(shape)
    if total > _MAX_COMBINATIONS:
        raise ValueError(
            f"{total} candidate combinations exceed the enumeration guard "
            f"({_MAX_COMBINATIONS}); reduce k or |C|"
        )
    tensor = np.zeros(shape, dtype=np.float64)

    # Additive per-cluster part: (lInt * Int_p + lSuf * Suf_p) / |C|.
    for c, attrs in enumerate(candidate_sets):
        vec = np.empty(len(attrs))
        for j, a in enumerate(attrs):
            v = 0.0
            if weights.lambda_int:
                v += weights.lambda_int * interestingness_low_sens(counts, c, a)
            if weights.lambda_suf:
                v += weights.lambda_suf * sufficiency_low_sens(counts, c, a)
            vec[j] = v / n_clusters
        view = [None] * n_clusters
        view[c] = slice(None)
        tensor += vec[tuple(view)]

    # Pairwise diversity part: lDiv * d(c, c') / C(|C|, 2).
    if weights.lambda_div and n_clusters >= 2:
        n_pairs = math.comb(n_clusters, 2)
        for c, c2 in itertools.combinations(range(n_clusters), 2):
            mat = np.empty((len(candidate_sets[c]), len(candidate_sets[c2])))
            for j, a in enumerate(candidate_sets[c]):
                for j2, a2 in enumerate(candidate_sets[c2]):
                    mat[j, j2] = pair_diversity_low_sens(counts, c, c2, a, a2)
            view = [None] * n_clusters
            view[c] = slice(None)
            view[c2] = slice(None)
            # mat is indexed (axis c, axis c2); place accordingly.
            expand = mat[tuple(view[i] for i in range(n_clusters))]
            tensor += weights.lambda_div * expand / n_pairs
    return tensor


@dataclass(frozen=True)
class SelectionResult:
    """Stage-1 + Stage-2 outcome before histogram generation."""

    combination: AttributeCombination
    candidates: CandidateSelection


@dataclass(frozen=True)
class DPClustX:
    """The DPClustX explainer (Figure 3).

    Parameters
    ----------
    n_candidates:
        ``k`` — candidate attributes per cluster from Stage-1 (default 3, the
        paper's ablation-supported choice, Figure 7).
    weights:
        ``lambda`` hyperparameters (default equal thirds, Section 4.4).
    budget:
        The three-way privacy budget (defaults 0.1 / 0.1 / 0.1, Section 6.1).
    histogram_mechanism:
        Prototype ``M_hist``; its epsilon is re-derived per Algorithm 2's
        allocation.  Defaults to the Geometric mechanism (Section 6.1).
    """

    n_candidates: int = 3
    weights: Weights = field(default_factory=Weights)
    budget: ExplanationBudget = field(default_factory=ExplanationBudget)
    histogram_mechanism: HistogramMechanism = field(
        default_factory=lambda: GeometricHistogram(1.0)
    )

    # ------------------------------------------------------------------ #
    # attribute selection (Stages 1-2)
    # ------------------------------------------------------------------ #

    def select_combination(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        names: tuple[str, ...] | None = None,
    ) -> SelectionResult:
        """Run Lines 1-6 of Algorithm 2: pick the attribute combination."""
        gen = ensure_rng(rng)
        gamma = self.weights.gamma()  # Line 1
        candidates = select_candidates(  # Line 3
            counts,
            gamma,
            self.budget.eps_cand_set,
            self.n_candidates,
            gen,
            accountant,
            names=names,
        )
        # Lines 5-6: EM over the candidate combinations with GlScore.
        tensor = combination_score_tensor(
            counts, candidates.candidate_sets, self.weights
        )
        em = ExponentialMechanism(self.budget.eps_top_comb, SCORE_SENSITIVITY)
        if accountant is not None:
            accountant.spend(
                self.budget.eps_top_comb, "stage2: combination (exponential mech.)"
            )
        flat_index = em.select_index(tensor.reshape(-1), gen)
        picks = np.unravel_index(flat_index, tensor.shape)
        combination = AttributeCombination(
            tuple(
                candidates.candidate_sets[c][int(j)] for c, j in enumerate(picks)
            )
        )
        return SelectionResult(combination, candidates)

    # ------------------------------------------------------------------ #
    # full pipeline (Algorithm 2)
    # ------------------------------------------------------------------ #

    def explain(
        self,
        dataset: Dataset,
        clustering: ClusteringFunction,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        counts: ClusteredCounts | None = None,
    ) -> GlobalExplanation:
        """Run Algorithm 2 end to end and return the global explanation."""
        gen = ensure_rng(rng)
        if counts is None:
            counts = ClusteredCounts(dataset, clustering)
        selection = self.select_combination(counts, gen, accountant)
        return self.release_histograms(
            counts,
            selection.combination,
            gen,
            accountant=accountant,
            metadata={"candidate_sets": selection.candidates.candidate_sets},
        )

    def release_histograms(
        self,
        counts: ClusteredCounts,
        combination: AttributeCombination,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        metadata: "dict[str, object] | None" = None,
    ) -> GlobalExplanation:
        """Lines 8-19 of Algorithm 2: release noisy histograms for a chosen
        combination and assemble the :class:`GlobalExplanation`.

        Split out of :meth:`explain` so batched front ends (the sweep
        layer's ``explain_batched``, the explanation service) can run
        Stage-1/2 selection for many seeds in one scoring pass and then
        continue each seed's generator here — the stream consumption is
        identical to the serial ``explain`` call.  Charges ``eps_hist``
        against ``accountant`` exactly as before; extra ``metadata``
        entries (e.g. the candidate sets) are merged into the output's
        provenance record.
        """
        gen = ensure_rng(rng)

        # Lines 8-9: budget allocation for histograms.
        distinct = combination.distinct_attributes()
        eps_hist_all = self.budget.eps_hist / (2.0 * len(distinct))
        eps_hist_cluster = self.budget.eps_hist / 2.0

        # Lines 10-12: full-dataset histograms (sequential composition).
        # Charged before sampling: once noise is drawn the privacy is spent
        # whether or not the ledger admitted it.
        full_mech = self.histogram_mechanism.with_epsilon(eps_hist_all)
        if accountant is not None:
            accountant.spend(
                eps_hist_all * len(distinct), "histograms: full dataset"
            )
        noisy_full: dict[str, np.ndarray] = {}
        for a in distinct:
            noisy_full[a] = full_mech.release(counts.full(a), gen)

        # Lines 14-19: per-cluster histograms (parallel composition) and
        # out-of-cluster histograms by post-processing (Line 17).  When all
        # selected attributes share one domain width (the common case) the
        # |C| releases collapse into a single ``release_rows`` call over the
        # stacked (|C|, m) count matrix — stream-identical to the loop, and
        # still parallel composition since clusters are disjoint.  Ragged
        # widths or mechanisms without ``release_rows`` keep the loop.
        cluster_mech = self.histogram_mechanism.with_epsilon(eps_hist_cluster)
        rows = [counts.cluster(combination[c], c) for c in range(counts.n_clusters)]
        if accountant is not None:
            accountant.parallel(
                [eps_hist_cluster] * counts.n_clusters,
                "histograms: clusters (parallel)",
            )
        widths = {row.shape[0] for row in rows}
        if len(widths) == 1 and hasattr(cluster_mech, "release_rows"):
            noisy_rows = cluster_mech.release_rows(np.stack(rows), gen)
        else:
            noisy_rows = [cluster_mech.release(row, gen) for row in rows]
        schema = counts.dataset.schema
        explanations: list[SingleClusterExplanation] = []
        for c in range(counts.n_clusters):
            a_c = combination[c]
            noisy_c = noisy_rows[c]
            noisy_rest = np.maximum(noisy_full[a_c] - noisy_c, 0.0)
            explanations.append(
                SingleClusterExplanation(
                    cluster=c,
                    attribute=schema.attribute(a_c),
                    hist_rest=noisy_rest,
                    hist_cluster=noisy_c,
                )
            )
        provenance: dict[str, object] = {
            "framework": "DPClustX",
            "budget": self.budget,
            "n_candidates": self.n_candidates,
            "weights": self.weights,
        }
        provenance.update(metadata or {})
        provenance["epsilon_total"] = self.budget.total
        return GlobalExplanation(
            per_cluster=tuple(explanations),
            combination=combination,
            metadata=provenance,
        )
