"""Appendix B — generating ``ell`` explanations per cluster.

The attribute combination becomes ``AC : C -> {S ⊆ A : |S| = ell}``; the
global score generalises with ``Cand(AC) = {(c, A) : A in AC(c)}``:

* ``Int_ell`` / ``Suf_ell``: averages of the single-candidate scores over the
  ``|C| * ell`` candidates;
* ``Div_ell``: average pairwise diversity over all distinct candidate pairs.

Stage-1 is unchanged; Stage-2 runs the exponential mechanism over the
``C(k, ell)^|C|`` set-valued combinations (the paper flags this blow-up as
the cost of the extension), and noisy histograms are generated for the
``|C| * ell`` selected attributes — within a cluster the ``ell`` cluster
histograms compose sequentially, across clusters in parallel.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from ..clustering.base import ClusteringFunction
from ..dataset.table import Dataset
from ..privacy.budget import ExplanationBudget, PrivacyAccountant
from ..privacy.exponential import ExponentialMechanism
from ..privacy.histograms import GeometricHistogram, HistogramMechanism
from ..privacy.rng import ensure_rng
from .counts import ClusteredCounts, CountsProvider
from .engine import scoring_engine
from .hbe import (
    MultiAttributeCombination,
    MultiGlobalExplanation,
    SingleClusterExplanation,
)
from .quality.diversity import pair_diversity_low_sens
from .quality.interestingness import interestingness_low_sens
from .quality.scores import SCORE_SENSITIVITY, Weights
from .quality.sufficiency import sufficiency_low_sens
from .select_candidates import select_candidates

_MAX_COMBINATIONS = 2_000_000


def multi_global_score(
    counts: CountsProvider,
    combination: MultiAttributeCombination,
    weights: Weights,
) -> float:
    """``GlScore_lambda`` extended to set-valued combinations (Appendix B).

    Remains a convex combination of sensitivity-1 functions, hence has
    sensitivity <= 1 (the appendix's analogue of Proposition 4.14).
    """
    cands = combination.candidates()
    if not cands:
        raise ValueError("empty combination")
    score = 0.0
    if weights.lambda_int:
        score += weights.lambda_int * (
            sum(interestingness_low_sens(counts, c, a) for c, a in cands) / len(cands)
        )
    if weights.lambda_suf:
        score += weights.lambda_suf * (
            sum(sufficiency_low_sens(counts, c, a) for c, a in cands) / len(cands)
        )
    if weights.lambda_div and len(cands) >= 2:
        pairs = list(itertools.combinations(range(len(cands)), 2))
        acc = 0.0
        for i, j in pairs:
            c, a = cands[i]
            c2, a2 = cands[j]
            acc += pair_diversity_low_sens(counts, c, c2, a, a2)
        score += weights.lambda_div * acc / len(pairs)
    return score


@dataclass(frozen=True)
class MultiDPClustX:
    """DPClustX emitting ``ell`` histogram pairs per cluster (Appendix B)."""

    ell: int = 2
    n_candidates: int = 3
    weights: Weights = field(default_factory=Weights)
    budget: ExplanationBudget = field(default_factory=ExplanationBudget)
    histogram_mechanism: HistogramMechanism = field(
        default_factory=lambda: GeometricHistogram(1.0)
    )

    def __post_init__(self) -> None:
        if self.ell < 1:
            raise ValueError("ell must be >= 1")
        if self.n_candidates < self.ell:
            raise ValueError("need k >= ell candidates per cluster")

    def select_combination(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
    ) -> MultiAttributeCombination:
        """Stage-1 (unchanged Algorithm 1) + EM over C(k, ell)^|C| combinations."""
        gen = ensure_rng(rng)
        gamma = self.weights.gamma()
        candidates = select_candidates(
            counts,
            gamma,
            self.budget.eps_cand_set,
            self.n_candidates,
            gen,
            accountant,
        )
        per_cluster_sets = [
            list(itertools.combinations(s, self.ell))
            for s in candidates.candidate_sets
        ]
        total = math.prod(len(s) for s in per_cluster_sets)
        if total > _MAX_COMBINATIONS:
            raise ValueError(
                f"{total} set-valued combinations exceed the enumeration guard; "
                "reduce k, ell or |C| (Appendix B discusses this blow-up)"
            )
        # Batched Appendix-B GlScore over all C(k, ell)^|C| combinations:
        # assembled from per-cluster subset sums and pairwise diversity
        # blocks instead of one scalar multi_global_score call per combo.
        tensor = scoring_engine(counts).multi_combination_score_tensor(
            per_cluster_sets, self.weights
        )
        em = ExponentialMechanism(self.budget.eps_top_comb, SCORE_SENSITIVITY)
        if accountant is not None:
            accountant.spend(self.budget.eps_top_comb, "stage2: multi combination")
        flat_index = em.select_index(tensor.reshape(-1), gen)
        picks = np.unravel_index(flat_index, tensor.shape)
        chosen = MultiAttributeCombination(
            tuple(per_cluster_sets[c][int(s)] for c, s in enumerate(picks))
        )
        return chosen

    def explain(
        self,
        dataset: Dataset,
        clustering: ClusteringFunction,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        counts: ClusteredCounts | None = None,
    ) -> MultiGlobalExplanation:
        """Full Appendix-B pipeline: selection + noisy histograms."""
        gen = ensure_rng(rng)
        if counts is None:
            counts = ClusteredCounts(dataset, clustering)
        combination = self.select_combination(counts, gen, accountant)

        distinct = combination.distinct_attributes()
        eps_hist_all = self.budget.eps_hist / (2.0 * len(distinct))
        # Within a cluster the ell histograms compose sequentially.
        eps_hist_cluster = self.budget.eps_hist / (2.0 * self.ell)

        full_mech = self.histogram_mechanism.with_epsilon(eps_hist_all)
        if accountant is not None:
            accountant.spend(eps_hist_all * len(distinct), "histograms: full dataset")
        noisy_full = {a: full_mech.release(counts.full(a), gen) for a in distinct}

        cluster_mech = self.histogram_mechanism.with_epsilon(eps_hist_cluster)
        if accountant is not None:
            accountant.parallel(
                [eps_hist_cluster * self.ell] * counts.n_clusters,
                "histograms: clusters (parallel across, sequential within)",
            )
        per_cluster: list[tuple[SingleClusterExplanation, ...]] = []
        for c in range(counts.n_clusters):
            cluster_expls = []
            for a in combination[c]:
                noisy_c = cluster_mech.release(counts.cluster(a, c), gen)
                noisy_rest = np.maximum(noisy_full[a] - noisy_c, 0.0)
                cluster_expls.append(
                    SingleClusterExplanation(
                        cluster=c,
                        attribute=dataset.schema.attribute(a),
                        hist_rest=noisy_rest,
                        hist_cluster=noisy_c,
                    )
                )
            per_cluster.append(tuple(cluster_expls))
        return MultiGlobalExplanation(
            per_cluster=tuple(per_cluster),
            combination=combination,
            metadata={
                "framework": "MultiDPClustX",
                "ell": self.ell,
                "budget": self.budget,
                "epsilon_total": self.budget.total,
            },
        )
