"""Pickle-free :class:`CountsStack` handoff over POSIX shared memory.

The process-pool sweep layer used to ship each worker the *recipe* for its
counts — dataset name, row count, clustering method — and every worker then
re-generated the dataset and re-fitted the clustering behind its own
``lru_cache``.  That makes fan-out cost linear in ``|D|`` per worker and
duplicates the whole table once per process.

This module ships the *result* instead: the stack's bucketed tensors (a few
``(|A_b|, |C|, m)`` float64 blocks whose size depends on the schema and
cluster count, **not** on the row count) are packed into one
``multiprocessing.shared_memory`` segment, and workers attach zero-copy
read-only views.  The picklable :class:`SharedStackHandle` that crosses the
process boundary is a few hundred bytes regardless of dataset size, so
fan-out cost is flat in ``|D|``.

Lifecycle contract (the part POSIX makes easy to get wrong):

* the **owner** (``share_stack``) creates the segment and must eventually
  call :meth:`SharedStack.close` + :meth:`SharedStack.unlink` (or use it as
  a context manager) — ``run_grid`` does this in a ``finally``; the owner
  keeps the stdlib ``SharedMemory`` object, so its ``resource_tracker``
  registration remains a crash safety net until the explicit unlink;
* each **worker** (``attach_counts``) maps the segment with a raw
  ``shm_open`` + ``mmap`` that never touches the resource tracker (Python
  < 3.13 has no ``track=False``, and tracker registrations are a plain set
  shared with the parent — a worker registering and unregistering would
  erase the *owner's* entry) and must call :meth:`StackCounts.close` when
  done;
* after the owner unlinks, the name is gone: late attaches raise
  ``FileNotFoundError`` rather than silently reading freed memory.
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from .stacks import CountsStack, DomainBucket, _bucket_layout

_ALIGN = 64  # cache-line alignment for every packed array


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _packing(
    names: Sequence[str], domain_sizes: Sequence[int], n_clusters: int
) -> tuple[tuple, int]:
    """Deterministic (field -> (offset, shape)) layout of a stack's arrays.

    Derived purely from ``(names, domain_sizes, n_clusters)`` — the same
    inputs :func:`_bucket_layout` consumes — so the owner and every worker
    compute identical offsets without shipping them.
    """
    layout, _, _ = _bucket_layout(tuple(names), tuple(domain_sizes))
    fields: list[tuple[str, tuple[int, ...]]] = [
        ("totals", (len(names),)),
        ("sizes", (len(names), n_clusters)),
    ]
    for b, (width, cols) in enumerate(layout):
        fields.append((f"by_cluster/{b}", (len(cols), n_clusters, width)))
        fields.append((f"full/{b}", (len(cols), width)))
    packed = []
    offset = 0
    for field, shape in fields:
        offset = _align(offset)
        packed.append((field, offset, shape))
        offset += int(np.prod(shape)) * np.dtype(np.float64).itemsize
    return tuple(packed), max(offset, 1)


@dataclass(frozen=True)
class SharedStackHandle:
    """Picklable descriptor of a shared stack segment (size-independent).

    Everything a worker needs to rebuild the :class:`CountsStack` — the
    bucket layout, locator and index maps are recomputed from
    ``(names, domain_sizes)`` via the cached :func:`_bucket_layout`, and the
    array offsets from :func:`_packing` — so the handle itself stays a few
    hundred bytes no matter how large the dataset behind the counts was.
    """

    segment: str
    names: tuple[str, ...]
    domain_sizes: tuple[int, ...]
    n_clusters: int
    nbytes: int


def _segment_views(shm, handle: SharedStackHandle) -> dict[str, np.ndarray]:
    packed, nbytes = _packing(handle.names, handle.domain_sizes, handle.n_clusters)
    if shm.size < nbytes:
        raise ValueError(
            f"segment {handle.segment!r} is {shm.size} bytes, "
            f"layout needs {nbytes}"
        )
    return {
        field: np.ndarray(shape, dtype=np.float64, buffer=shm.buf, offset=off)
        for field, off, shape in packed
    }


def _stack_from_views(
    views: dict[str, np.ndarray], handle: SharedStackHandle, writeable: bool
) -> CountsStack:
    layout, locator, index = _bucket_layout(handle.names, handle.domain_sizes)
    buckets = []
    for b, (width, cols) in enumerate(layout):
        by_cluster = views[f"by_cluster/{b}"]
        full = views[f"full/{b}"]
        if not writeable:
            by_cluster = by_cluster.view()
            by_cluster.flags.writeable = False
            full = full.view()
            full.flags.writeable = False
        buckets.append(
            DomainBucket(
                indices=np.asarray(cols, dtype=np.intp),
                by_cluster=by_cluster,
                full=full,
                domain_sizes=np.array(
                    [handle.domain_sizes[j] for j in cols], dtype=np.intp
                ),
            )
        )
    totals = views["totals"]
    sizes = views["sizes"]
    if not writeable:
        totals = totals.view()
        totals.flags.writeable = False
        sizes = sizes.view()
        sizes.flags.writeable = False
    return CountsStack(
        names=handle.names,
        n_clusters=handle.n_clusters,
        totals=totals,
        sizes=sizes,
        buckets=tuple(buckets),
        index=index,
        locator=locator,
    )


class SharedStack:
    """Owner side of one shared stack segment (create, hand out, unlink)."""

    def __init__(self, stack: CountsStack):
        # Recover true per-attribute domain sizes in stack name order.
        sizes_by_name = {}
        for bucket in stack.buckets:
            for r, j in enumerate(bucket.indices):
                sizes_by_name[stack.names[j]] = int(bucket.domain_sizes[r])
        domain_sizes = tuple(sizes_by_name[n] for n in stack.names)
        packed, nbytes = _packing(stack.names, domain_sizes, stack.n_clusters)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.handle = SharedStackHandle(
            segment=self._shm.name,
            names=stack.names,
            domain_sizes=domain_sizes,
            n_clusters=stack.n_clusters,
            nbytes=nbytes,
        )
        views = _segment_views(self._shm, self.handle)
        views["totals"][:] = stack.totals
        views["sizes"][:] = stack.sizes
        for b, bucket in enumerate(stack.buckets):
            views[f"by_cluster/{b}"][:] = bucket.by_cluster
            views[f"full/{b}"][:] = bucket.full
        self._views = views
        self._closed = False

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def stack(self) -> CountsStack:
        """The owner's own zero-copy view of the shared tensors."""
        return _stack_from_views(self._views, self.handle, writeable=False)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if not self._closed:
            self._closed = True
            self._views = {}
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment; attaches after this raise FileNotFoundError."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked — idempotent
            pass

    def __enter__(self) -> "SharedStack":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def share_stack(stack: CountsStack) -> SharedStack:
    """Copy a stack's tensors into one fresh shared-memory segment."""
    return SharedStack(stack)


class _RawSegment:
    """A tracker-free read/write mapping of an existing shared segment.

    ``SharedMemory(name=...)`` on Python < 3.13 unconditionally registers
    the segment with the resource tracker.  The tracker's registry is a
    plain *set* shared between the owner and every spawned worker, so a
    worker registering on attach and unregistering on close would erase the
    owner's entry (and unregistering on attach races other workers).  This
    maps the segment with the same ``shm_open`` + ``mmap`` calls the stdlib
    uses, minus any tracker interaction — ownership stays entirely with the
    creator's ``SharedMemory`` object.
    """

    def __init__(self, name: str):
        import _posixshmem  # stdlib backing module of shared_memory

        fd = _posixshmem.shm_open(f"/{name}", os.O_RDWR, 0o600)
        try:
            size = os.fstat(fd).st_size
            self._mmap = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        self.name = name
        self.size = size
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        if self.buf is not None:
            self.buf.release()
            self.buf = None
            self._mmap.close()


class StackCounts:
    """A read-only :class:`CountsProvider` served from an attached stack.

    The worker-side counterpart of ``ClusteredCounts``: every protocol
    method — per-attribute matrices, totals, cluster sizes, the cached
    ``by_cluster_stack`` — is answered from the shared tensors, so a worker
    never touches the dataset, the labels, or the clustering that produced
    them.  Counts come back float64 (the stack's dtype); they are exact
    integer values well inside float64's 2**53 integer range, so every
    downstream score and release is bit-identical to the int64 path.

    ``dataset`` optionally carries a schema-bearing dataset descriptor
    (anything exposing ``.schema``, ``__len__`` and ``fingerprint()``): the
    histogram-release path reads ``counts.dataset.schema`` for attribute
    domains, so a shard worker that serves full explanations — not just
    Stage-1 scoring — attaches with the descriptor its registration frame
    shipped alongside the handle.
    """

    def __init__(self, stack: CountsStack, shm=None, dataset=None):
        self._stack = stack
        self._shm = shm
        self.dataset = dataset
        self._closed = False

    @property
    def names(self) -> tuple[str, ...]:
        return self._stack.names

    @property
    def n_clusters(self) -> int:
        return self._stack.n_clusters

    @property
    def n(self) -> int:
        return int(self._stack.totals[0]) if len(self._stack.names) else 0

    def domain_size(self, name: str) -> int:
        b, r = self._stack.locator[name]
        return int(self._stack.buckets[b].domain_sizes[r])

    def materialise(self) -> None:
        """No-op: the stack was materialised by the sharing process."""

    def by_cluster(self, name: str) -> np.ndarray:
        mat, _ = self._stack.attribute_counts(name)
        return mat

    def full(self, name: str) -> np.ndarray:
        _, full = self._stack.attribute_counts(name)
        return full

    def cluster(self, name: str, c: int) -> np.ndarray:
        return self.by_cluster(name)[c]

    def total(self, name: str) -> float:
        return float(self._stack.totals[self._stack.index[name]])

    def cluster_size(self, name: str, c: int) -> float:
        return float(self._stack.sizes[self._stack.index[name], c])

    def totals_vector(self, names: Sequence[str]) -> np.ndarray:
        return np.asarray(self._stack.totals[self._stack.columns(names)], dtype=np.float64)

    def sizes_matrix(self, names: Sequence[str]) -> np.ndarray:
        return np.asarray(self._stack.sizes[self._stack.columns(names)], dtype=np.float64)

    def by_cluster_stack(self) -> CountsStack:
        return self._stack

    def close(self) -> None:
        """Detach from the shared segment (idempotent)."""
        if not self._closed:
            self._closed = True
            self._stack = None
            if self._shm is not None:
                self._shm.close()
                self._shm = None

    def __enter__(self) -> "StackCounts":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_counts(handle: SharedStackHandle, dataset=None) -> StackCounts:
    """Attach to a shared stack segment as a read-only counts provider.

    ``dataset`` (optional) is the schema-bearing descriptor forwarded to
    :class:`StackCounts` for consumers that release histograms.  Raises
    ``FileNotFoundError`` once the owner has unlinked the segment.
    """
    shm = _RawSegment(handle.segment)
    views = _segment_views(shm, handle)
    stack = _stack_from_views(views, handle, writeable=False)
    return StackCounts(stack, shm, dataset=dataset)
