"""Array-level quality kernels over a :class:`CountsStack`.

Each kernel evaluates one quality function of Section 4 (or its sensitive
Section-6.1 counterpart) for *every* ``(cluster, attribute)`` pair at once,
returning a ``(|C|, |A|)`` matrix whose columns follow ``stack.names``.  The
scalar functions in :mod:`repro.core.quality` remain the reference semantics;
the property tests in ``tests/test_engine.py`` pin the kernels to them to
1e-12 over random schemas, cluster counts, and empty clusters.

Conventions shared with the scalar layer:

* ``|D| <= 0`` zeroes the low-sensitivity interestingness;
* empty histograms normalise to the all-zero vector (TVD convention of
  :func:`~repro.core.quality.distances.tvd_counts`);
* noisy providers may report ``h_A(D) < h_A(D_c)``; sufficiency clamps the
  denominator to ``max(h, h_c, 1e-12)`` exactly like the scalar code.
"""

from __future__ import annotations

import numpy as np

from .stacks import CountsStack

_EPS = 1e-12


def interestingness_low_sens_matrix(stack: CountsStack) -> np.ndarray:
    """``Int_p`` (Definition 4.3) for every (cluster, attribute) pair.

    ``Int_p = (1/2) * sum_a |cnt_{A=a}(D_c) - (|D_c|/|D|) cnt_{A=a}(D)|``.
    """
    out = np.zeros((stack.n_clusters, stack.n_attributes))
    for bucket in stack.buckets:
        n = stack.totals[bucket.indices]
        n_c = stack.sizes[bucket.indices]
        safe_n = np.where(n > 0, n, 1.0)
        ratio = n_c / safe_n[:, None]
        diff = bucket.by_cluster - ratio[:, :, None] * bucket.full[:, None, :]
        vals = 0.5 * np.abs(diff).sum(axis=2)
        vals = np.where(n[:, None] > 0, vals, 0.0)
        out[:, bucket.indices] = vals.T
    return out


def sufficiency_low_sens_matrix(stack: CountsStack) -> np.ndarray:
    """``Suf_p`` (Definition 4.6) for every (cluster, attribute) pair.

    ``Suf_p = sum_{a : cnt(D_c) > 0} cnt_{A=a}(D_c)^2 / max(cnt_{A=a}(D),
    cnt_{A=a}(D_c))`` — terms with a zero cluster count contribute nothing,
    so the masked scalar sum equals the dense sum below.
    """
    out = np.zeros((stack.n_clusters, stack.n_attributes))
    for bucket in stack.buckets:
        h_c = bucket.by_cluster
        denom = np.maximum(np.maximum(bucket.full[:, None, :], h_c), _EPS)
        # The h_c > 0 mask matters beyond skipping zeros: unclamped noisy
        # releases can hold *negative* counts, which the scalar oracle
        # excludes from the sum entirely.
        vals = np.where(h_c > 0, h_c * h_c / denom, 0.0).sum(axis=2)
        out[:, bucket.indices] = vals.T
    return out


def exclusivity_low_sens_matrix(stack: CountsStack) -> np.ndarray:
    """``Exc_p`` (majority mass) for every (cluster, attribute) pair."""
    out = np.zeros((stack.n_clusters, stack.n_attributes))
    for bucket in stack.buckets:
        vals = np.maximum(
            2.0 * bucket.by_cluster - bucket.full[:, None, :], 0.0
        ).sum(axis=2)
        out[:, bucket.indices] = vals.T
    return out


def interestingness_tvd_matrix(stack: CountsStack) -> np.ndarray:
    """Sensitive ``TVD(pi_A(D), pi_A(D_c))`` (Eq. 1) for every pair.

    Either histogram being empty yields 0, matching ``tvd_counts``.
    """
    out = np.zeros((stack.n_clusters, stack.n_attributes))
    for bucket in stack.buckets:
        full_sums = bucket.full.sum(axis=1)
        cluster_sums = bucket.by_cluster.sum(axis=2)
        p = bucket.full / np.where(full_sums > 0, full_sums, 1.0)[:, None]
        q = bucket.by_cluster / np.where(cluster_sums > 0, cluster_sums, 1.0)[
            :, :, None
        ]
        tvd = 0.5 * np.abs(q - p[:, None, :]).sum(axis=2)
        tvd = np.where((full_sums[:, None] > 0) & (cluster_sums > 0), tvd, 0.0)
        out[:, bucket.indices] = tvd.T
    return out


def sufficiency_normalized_matrix(
    stack: CountsStack, sufficiency: np.ndarray | None = None
) -> np.ndarray:
    """``Suf_p / |D_c|`` in [0, 1] for every pair (empty clusters score 0)."""
    if sufficiency is None:
        sufficiency = sufficiency_low_sens_matrix(stack)
    sizes = stack.sizes.T
    return np.where(sizes > 0, sufficiency / np.where(sizes > 0, sizes, 1.0), 0.0)


def pair_tvd_tensor(stack: CountsStack) -> np.ndarray:
    """Definition 4.8's cluster-vs-cluster TVD for *all* pairs at once.

    Returns an ``(|A|, |C|, |C|)`` tensor ``T[a, c, c']`` equal to
    :func:`pair_tvd_vector` evaluated for every cluster pair — one broadcast
    per domain bucket instead of ``C(|C|, 2)`` kernel invocations.
    """
    n_clusters = stack.n_clusters
    out = np.empty((stack.n_attributes, n_clusters, n_clusters))
    for bucket in stack.buckets:
        n = np.maximum(stack.sizes[bucket.indices], 1.0)
        p = bucket.by_cluster / n[:, :, None]
        out[bucket.indices] = 0.5 * np.abs(
            p[:, :, None, :] - p[:, None, :, :]
        ).sum(axis=3)
    return out


def pair_tvd_vector(stack: CountsStack, c: int, c2: int) -> np.ndarray:
    """Per-attribute ``TVD(pi_A(D_c), pi_A(D_c'))`` with Definition 4.8's
    ``max(|D_c|, 1)`` normalisation, as an ``(|A|,)`` vector."""
    out = np.empty(stack.n_attributes)
    for bucket in stack.buckets:
        n1 = np.maximum(stack.sizes[bucket.indices, c], 1.0)
        n2 = np.maximum(stack.sizes[bucket.indices, c2], 1.0)
        p = bucket.by_cluster[:, c, :] / n1[:, None]
        q = bucket.by_cluster[:, c2, :] / n2[:, None]
        out[bucket.indices] = 0.5 * np.abs(p - q).sum(axis=1)
    return out


def diversity_block(
    stack: CountsStack,
    c: int,
    c2: int,
    cols_c: np.ndarray,
    cols_c2: np.ndarray,
    pair_tvd: np.ndarray | None = None,
) -> np.ndarray:
    """``d(D, f, c, c', A, A')`` (Definition 4.8) for a whole candidate block.

    ``cols_c`` / ``cols_c2`` are stack column indices of the two clusters'
    candidate attributes; the result is the ``(k_c, k_c')`` matrix whose
    ``[j, j']`` entry is the pair diversity of ``(cols_c[j], cols_c2[j'])``.
    Off-diagonal (distinct-attribute) entries are the ``min(|D_c|, |D_c'|)``
    weights alone; equal-attribute entries scale the weight by the
    cluster-vs-cluster TVD.
    """
    if pair_tvd is None:
        pair_tvd = pair_tvd_vector(stack, c, c2)
    w = np.minimum(
        stack.sizes[cols_c, c][:, None], stack.sizes[cols_c2, c2][None, :]
    )
    eq = cols_c[:, None] == cols_c2[None, :]
    return np.where(eq, w * pair_tvd[cols_c][:, None], w)


def cluster_tvd_square(stack: CountsStack, name: str) -> np.ndarray:
    """All-pairs ``TVD`` between cluster distributions on one attribute.

    Uses the ``normalize_counts`` convention (empty cluster -> zero vector),
    matching ``QualityEvaluator._tvd_matrix`` and ``_cluster_tvd_matrix``.
    """
    h, _ = stack.attribute_counts(name)
    sums = h.sum(axis=1)
    p = h / np.where(sums > 0, sums, 1.0)[:, None]
    return 0.5 * np.abs(p[:, None, :] - p[None, :, :]).sum(axis=2)


def tvd_rows(full: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Batched :func:`~repro.core.quality.distances.tvd_counts` of one full
    histogram against a ``(|C|, m)`` matrix of cluster histograms."""
    full = np.asarray(full, dtype=np.float64)
    rows = np.asarray(rows, dtype=np.float64)
    fs = full.sum()
    rs = rows.sum(axis=1)
    if fs <= 0:
        return np.zeros(rows.shape[0])
    p = full / fs
    q = rows / np.where(rs > 0, rs, 1.0)[:, None]
    tvd = 0.5 * np.abs(q - p[None, :]).sum(axis=1)
    return np.where(rs > 0, tvd, 0.0)
