"""Array-level quality kernels over a :class:`CountsStack`.

Each kernel evaluates one quality function of Section 4 (or its sensitive
Section-6.1 counterpart) for *every* ``(cluster, attribute)`` pair at once,
returning a ``(|C|, |A|)`` matrix whose columns follow ``stack.names``.  The
scalar functions in :mod:`repro.core.quality` remain the reference semantics;
the property tests in ``tests/test_engine.py`` pin the kernels to them to
1e-12 over random schemas, cluster counts, and empty clusters.

Conventions shared with the scalar layer:

* ``|D| <= 0`` zeroes the low-sensitivity interestingness;
* empty histograms normalise to the all-zero vector (TVD convention of
  :func:`~repro.core.quality.distances.tvd_counts`);
* noisy providers may report ``h_A(D) < h_A(D_c)``; sufficiency clamps the
  denominator to ``max(h, h_c, 1e-12)`` exactly like the scalar code.
"""

from __future__ import annotations

import threading

import numpy as np

from . import accel
from .stacks import CountsStack

_EPS = 1e-12


class ScratchPool:
    """Reusable float64 scratch buffers for the fused kernels.

    The fused single-sweep kernels need two ``(|A_b|, |C|, m)`` temporaries
    per bucket; allocating them on every call dominates the cost for small
    stacks.  The pool hands out per-``(tag, shape)`` buffers that persist
    across calls.  Buffers are stored per *thread* (the explanation service
    scores on a thread pool), so concurrent engine calls never share a
    scratch array; contents are never meaningful across calls.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def take(self, tag: str, shape: tuple[int, ...]) -> np.ndarray:
        bufs = getattr(self._local, "bufs", None)
        if bufs is None:
            bufs = {}
            self._local.bufs = bufs
        key = (tag, shape)
        buf = bufs.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=np.float64)
            bufs[key] = buf
        return buf


_SCRATCH = ScratchPool()


def _fused_score_bucket_numpy(
    bucket, n: np.ndarray, n_c: np.ndarray, gamma_int: float, gamma_suf: float,
    scratch: ScratchPool,
) -> np.ndarray:
    """``gamma_int * Int_p + gamma_suf * Suf_p`` for one bucket, one sweep.

    Arithmetic mirrors :func:`interestingness_low_sens_matrix` and
    :func:`sufficiency_low_sens_matrix` operation-for-operation (same ops,
    same order), so the fused result is bit-identical to composing the two
    unfused matrices — only the temporaries change, and those come from the
    scratch pool instead of fresh allocations.
    """
    h_c = bucket.by_cluster
    shape = h_c.shape
    t = scratch.take("a", shape)
    vals: np.ndarray | None = None
    if gamma_int:
        safe_n = np.where(n > 0, n, 1.0)
        ratio = n_c / safe_n[:, None]
        np.multiply(ratio[:, :, None], bucket.full[:, None, :], out=t)
        np.subtract(h_c, t, out=t)
        np.abs(t, out=t)
        int_vals = 0.5 * t.sum(axis=2)
        int_vals = np.where(n[:, None] > 0, int_vals, 0.0)
        vals = gamma_int * int_vals
    if gamma_suf:
        t2 = scratch.take("b", shape)
        np.maximum(bucket.full[:, None, :], h_c, out=t)
        np.maximum(t, _EPS, out=t)
        np.multiply(h_c, h_c, out=t2)
        np.divide(t2, t, out=t2)
        np.multiply(t2, h_c > 0, out=t2)
        suf_vals = t2.sum(axis=2)
        vals = gamma_suf * suf_vals if vals is None else vals + gamma_suf * suf_vals
    if vals is None:
        vals = np.zeros(shape[:2])
    return vals


def fused_score_matrix(
    stack: CountsStack,
    gamma_int: float,
    gamma_suf: float,
    scratch: ScratchPool | None = None,
) -> np.ndarray:
    """``Score_gamma`` (Definition 4.11) for every pair in one bucket sweep.

    Equivalent to ``gamma_int * interestingness_low_sens_matrix(stack) +
    gamma_suf * sufficiency_low_sens_matrix(stack)`` but walks each bucket's
    tensors once while they are hot in cache, with scratch reuse instead of
    per-term temporaries.  Dispatches to the numba backend when
    :func:`repro.core.engine.accel.numba_kernels` is live.
    """
    score, _ = fused_stage_pass(stack, gamma_int, gamma_suf, scratch=scratch)
    return score


def fused_stage_pass(
    stack: CountsStack,
    gamma_int: float,
    gamma_suf: float,
    want_score: bool = True,
    want_pair_tvd: bool = False,
    scratch: ScratchPool | None = None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Stage-1 score matrix and Stage-2 pair-TVD tensor in a single sweep.

    The unfused path walks the bucket tensors once for ``Int_p``, once for
    ``Suf_p`` and once for the diversity TVDs; this computes whatever subset
    the caller asks for (``want_score`` / ``want_pair_tvd``) in one pass per
    bucket.  Returns ``(score, pair_tvd)`` with ``None`` for parts not
    requested; requested parts match the unfused kernels bit-for-bit on the
    numpy backend and to a few ULPs on numba.
    """
    if scratch is None:
        scratch = _SCRATCH
    nk = accel.numba_kernels()
    score = (
        np.zeros((stack.n_clusters, stack.n_attributes)) if want_score else None
    )
    pair = (
        np.empty((stack.n_attributes, stack.n_clusters, stack.n_clusters))
        if want_pair_tvd
        else None
    )
    for bucket in stack.buckets:
        if score is not None:
            n = stack.totals[bucket.indices]
            n_c = stack.sizes[bucket.indices]
            if nk is not None:
                vals = scratch.take("nb_score", bucket.by_cluster.shape[:2])
                nk["fused_score_bucket"](
                    np.ascontiguousarray(bucket.by_cluster),
                    np.ascontiguousarray(bucket.full),
                    np.ascontiguousarray(n),
                    np.ascontiguousarray(n_c),
                    float(gamma_int),
                    float(gamma_suf),
                    vals,
                )
            else:
                vals = _fused_score_bucket_numpy(
                    bucket, n, n_c, gamma_int, gamma_suf, scratch
                )
            score[:, bucket.indices] = vals.T
        if pair is not None:
            sizes = stack.sizes[bucket.indices]
            if nk is not None:
                block = np.empty(
                    (len(bucket.indices), stack.n_clusters, stack.n_clusters)
                )
                nk["pair_tvd_bucket"](
                    np.ascontiguousarray(bucket.by_cluster),
                    np.ascontiguousarray(sizes),
                    block,
                )
                pair[bucket.indices] = block
            else:
                nn = np.maximum(sizes, 1.0)
                p = bucket.by_cluster / nn[:, :, None]
                pair[bucket.indices] = 0.5 * np.abs(
                    p[:, :, None, :] - p[:, None, :, :]
                ).sum(axis=3)
    return score, pair


def interestingness_low_sens_matrix(stack: CountsStack) -> np.ndarray:
    """``Int_p`` (Definition 4.3) for every (cluster, attribute) pair.

    ``Int_p = (1/2) * sum_a |cnt_{A=a}(D_c) - (|D_c|/|D|) cnt_{A=a}(D)|``.
    """
    out = np.zeros((stack.n_clusters, stack.n_attributes))
    for bucket in stack.buckets:
        n = stack.totals[bucket.indices]
        n_c = stack.sizes[bucket.indices]
        safe_n = np.where(n > 0, n, 1.0)
        ratio = n_c / safe_n[:, None]
        diff = bucket.by_cluster - ratio[:, :, None] * bucket.full[:, None, :]
        vals = 0.5 * np.abs(diff).sum(axis=2)
        vals = np.where(n[:, None] > 0, vals, 0.0)
        out[:, bucket.indices] = vals.T
    return out


def sufficiency_low_sens_matrix(stack: CountsStack) -> np.ndarray:
    """``Suf_p`` (Definition 4.6) for every (cluster, attribute) pair.

    ``Suf_p = sum_{a : cnt(D_c) > 0} cnt_{A=a}(D_c)^2 / max(cnt_{A=a}(D),
    cnt_{A=a}(D_c))`` — terms with a zero cluster count contribute nothing,
    so the masked scalar sum equals the dense sum below.
    """
    out = np.zeros((stack.n_clusters, stack.n_attributes))
    for bucket in stack.buckets:
        h_c = bucket.by_cluster
        denom = np.maximum(np.maximum(bucket.full[:, None, :], h_c), _EPS)
        # The h_c > 0 mask matters beyond skipping zeros: unclamped noisy
        # releases can hold *negative* counts, which the scalar oracle
        # excludes from the sum entirely.
        vals = np.where(h_c > 0, h_c * h_c / denom, 0.0).sum(axis=2)
        out[:, bucket.indices] = vals.T
    return out


def exclusivity_low_sens_matrix(stack: CountsStack) -> np.ndarray:
    """``Exc_p`` (majority mass) for every (cluster, attribute) pair."""
    out = np.zeros((stack.n_clusters, stack.n_attributes))
    for bucket in stack.buckets:
        vals = np.maximum(
            2.0 * bucket.by_cluster - bucket.full[:, None, :], 0.0
        ).sum(axis=2)
        out[:, bucket.indices] = vals.T
    return out


def interestingness_tvd_matrix(stack: CountsStack) -> np.ndarray:
    """Sensitive ``TVD(pi_A(D), pi_A(D_c))`` (Eq. 1) for every pair.

    Either histogram being empty yields 0, matching ``tvd_counts``.
    """
    out = np.zeros((stack.n_clusters, stack.n_attributes))
    for bucket in stack.buckets:
        full_sums = bucket.full.sum(axis=1)
        cluster_sums = bucket.by_cluster.sum(axis=2)
        p = bucket.full / np.where(full_sums > 0, full_sums, 1.0)[:, None]
        q = bucket.by_cluster / np.where(cluster_sums > 0, cluster_sums, 1.0)[
            :, :, None
        ]
        tvd = 0.5 * np.abs(q - p[:, None, :]).sum(axis=2)
        tvd = np.where((full_sums[:, None] > 0) & (cluster_sums > 0), tvd, 0.0)
        out[:, bucket.indices] = tvd.T
    return out


def sufficiency_normalized_matrix(
    stack: CountsStack, sufficiency: np.ndarray | None = None
) -> np.ndarray:
    """``Suf_p / |D_c|`` in [0, 1] for every pair (empty clusters score 0)."""
    if sufficiency is None:
        sufficiency = sufficiency_low_sens_matrix(stack)
    sizes = stack.sizes.T
    return np.where(sizes > 0, sufficiency / np.where(sizes > 0, sizes, 1.0), 0.0)


def pair_tvd_tensor(stack: CountsStack) -> np.ndarray:
    """Definition 4.8's cluster-vs-cluster TVD for *all* pairs at once.

    Returns an ``(|A|, |C|, |C|)`` tensor ``T[a, c, c']`` equal to
    :func:`pair_tvd_vector` evaluated for every cluster pair — one broadcast
    per domain bucket instead of ``C(|C|, 2)`` kernel invocations.
    """
    n_clusters = stack.n_clusters
    out = np.empty((stack.n_attributes, n_clusters, n_clusters))
    for bucket in stack.buckets:
        n = np.maximum(stack.sizes[bucket.indices], 1.0)
        p = bucket.by_cluster / n[:, :, None]
        out[bucket.indices] = 0.5 * np.abs(
            p[:, :, None, :] - p[:, None, :, :]
        ).sum(axis=3)
    return out


def pair_tvd_vector(stack: CountsStack, c: int, c2: int) -> np.ndarray:
    """Per-attribute ``TVD(pi_A(D_c), pi_A(D_c'))`` with Definition 4.8's
    ``max(|D_c|, 1)`` normalisation, as an ``(|A|,)`` vector."""
    out = np.empty(stack.n_attributes)
    for bucket in stack.buckets:
        n1 = np.maximum(stack.sizes[bucket.indices, c], 1.0)
        n2 = np.maximum(stack.sizes[bucket.indices, c2], 1.0)
        p = bucket.by_cluster[:, c, :] / n1[:, None]
        q = bucket.by_cluster[:, c2, :] / n2[:, None]
        out[bucket.indices] = 0.5 * np.abs(p - q).sum(axis=1)
    return out


def diversity_block(
    stack: CountsStack,
    c: int,
    c2: int,
    cols_c: np.ndarray,
    cols_c2: np.ndarray,
    pair_tvd: np.ndarray | None = None,
) -> np.ndarray:
    """``d(D, f, c, c', A, A')`` (Definition 4.8) for a whole candidate block.

    ``cols_c`` / ``cols_c2`` are stack column indices of the two clusters'
    candidate attributes; the result is the ``(k_c, k_c')`` matrix whose
    ``[j, j']`` entry is the pair diversity of ``(cols_c[j], cols_c2[j'])``.
    Off-diagonal (distinct-attribute) entries are the ``min(|D_c|, |D_c'|)``
    weights alone; equal-attribute entries scale the weight by the
    cluster-vs-cluster TVD.
    """
    if pair_tvd is None:
        pair_tvd = pair_tvd_vector(stack, c, c2)
    w = np.minimum(
        stack.sizes[cols_c, c][:, None], stack.sizes[cols_c2, c2][None, :]
    )
    eq = cols_c[:, None] == cols_c2[None, :]
    return np.where(eq, w * pair_tvd[cols_c][:, None], w)


def cluster_tvd_square(stack: CountsStack, name: str) -> np.ndarray:
    """All-pairs ``TVD`` between cluster distributions on one attribute.

    Uses the ``normalize_counts`` convention (empty cluster -> zero vector),
    matching ``QualityEvaluator._tvd_matrix`` and ``_cluster_tvd_matrix``.
    """
    h, _ = stack.attribute_counts(name)
    sums = h.sum(axis=1)
    p = h / np.where(sums > 0, sums, 1.0)[:, None]
    return 0.5 * np.abs(p[:, None, :] - p[None, :, :]).sum(axis=2)


def tvd_rows(full: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Batched :func:`~repro.core.quality.distances.tvd_counts` of one full
    histogram against a ``(|C|, m)`` matrix of cluster histograms."""
    full = np.asarray(full, dtype=np.float64)
    rows = np.asarray(rows, dtype=np.float64)
    fs = full.sum()
    rs = rows.sum(axis=1)
    if fs <= 0:
        return np.zeros(rows.shape[0])
    p = full / fs
    q = rows / np.where(rs > 0, rs, 1.0)[:, None]
    tvd = 0.5 * np.abs(q - p[None, :]).sum(axis=1)
    return np.where(rs > 0, tvd, 0.0)
