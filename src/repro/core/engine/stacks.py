"""Stacked count tensors — the data layer of the batched scoring engine.

Every quality function of Section 4 is a function of the per-attribute count
matrices ``h_A(D_c)`` and vectors ``h_A(D)``.  The scalar API fetches them one
``(cluster, attribute)`` pair at a time; :class:`CountsStack` materialises
them *once* as dense tensors so the kernels in
:mod:`repro.core.engine.kernels` can evaluate all ``O(|C| * |A|)`` pairs in a
handful of NumPy expressions.

Attributes have heterogeneous domain sizes, so a single rectangular tensor
would waste memory padding every attribute to ``max |dom(A)|`` (ruinous for
the Cartesian-product pseudo-attributes of :mod:`repro.core.pairs`).  The
stack therefore groups attributes into :class:`DomainBucket`\\ s, one per
power-of-two domain-size class: attributes are zero-padded up to the class
width (every kernel is invariant to trailing zero bins), bounding both the
padding waste (< 2x) and the bucket count (log of the largest domain), so
kernels run a handful of vectorised passes regardless of schema shape.
"""

from __future__ import annotations

import functools
import types
import weakref
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


@functools.lru_cache(maxsize=32)
def _bucket_layout(
    names: tuple[str, ...], domain_sizes: tuple[int, ...]
) -> tuple:
    """Bucket structure of a stack, cached per (names, domain sizes).

    The layout — power-of-two width classes, member columns, locator and
    index maps — depends only on the schema, so repeated stack builds over
    the same attribute set (e.g. one noisy release per seed in a sweep)
    reuse it instead of regrouping attributes every time.  The maps are
    shared by every stack of the schema, so they are returned as read-only
    mapping proxies.
    """
    by_class: dict[int, list[int]] = {}
    for j, m in enumerate(domain_sizes):
        by_class.setdefault(1 << max(m - 1, 0).bit_length(), []).append(j)
    buckets = tuple(
        (width, tuple(cols)) for width, cols in sorted(by_class.items())
    )
    locator = types.MappingProxyType(
        {
            names[j]: (b, r)
            for b, (_, cols) in enumerate(buckets)
            for r, j in enumerate(cols)
        }
    )
    index = types.MappingProxyType({n: j for j, n in enumerate(names)})
    return buckets, locator, index


@dataclass(frozen=True)
class DomainBucket:
    """All attributes of one domain-size class, stacked densely.

    Rows are zero-padded from the attribute's true domain size up to the
    class width ``m`` — harmless for every kernel, since empty bins
    contribute nothing to any quality function.
    """

    indices: np.ndarray
    """Positions of the bucket's attributes inside ``CountsStack.names``."""

    by_cluster: np.ndarray
    """``(|A_b|, |C|, m)`` float64 tensor of per-cluster counts."""

    full: np.ndarray
    """``(|A_b|, m)`` float64 matrix of full-data counts."""

    domain_sizes: np.ndarray
    """``(|A_b|,)`` true (unpadded) domain size of each row."""

    @property
    def width(self) -> int:
        return int(self.by_cluster.shape[2])


@dataclass(frozen=True)
class CountsStack:
    """Dense, immutable snapshot of a :class:`~repro.core.counts.CountsProvider`.

    ``totals[j]`` is ``|D|`` (or its per-attribute noisy proxy) for attribute
    ``names[j]``; ``sizes[j, c]`` is ``|D_c|`` (or its proxy).  ``locate``
    maps an attribute name to its ``(bucket, row)`` coordinates.
    """

    names: tuple[str, ...]
    n_clusters: int
    totals: np.ndarray
    sizes: np.ndarray
    buckets: tuple[DomainBucket, ...]
    index: Mapping[str, int]
    locator: Mapping[str, tuple[int, int]]

    @property
    def n_attributes(self) -> int:
        return len(self.names)

    def columns(self, names: Sequence[str]) -> np.ndarray:
        """Column indices of ``names`` inside the stack's attribute order."""
        try:
            index = self.index
            return np.array([index[n] for n in names], dtype=np.intp)
        except KeyError as exc:  # pragma: no cover - defensive
            raise KeyError(f"attribute {exc.args[0]!r} not in stack") from exc

    def attribute_counts(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(h_A(D_c) matrix, h_A(D) vector)`` for one attribute, unpadded."""
        b, r = self.locator[name]
        bucket = self.buckets[b]
        m = int(bucket.domain_sizes[r])
        return bucket.by_cluster[r, :, :m], bucket.full[r, :m]

    @classmethod
    def from_provider(cls, counts, names: Sequence[str] | None = None) -> "CountsStack":
        """Materialise the stack from any counts provider.

        Uses the provider's ``by_cluster`` fast path when available and falls
        back to per-cluster ``cluster(name, c)`` calls otherwise, so any
        object satisfying the original :class:`CountsProvider` protocol can
        be stacked.
        """
        names = tuple(names) if names is not None else tuple(counts.names)
        n_clusters = int(counts.n_clusters)
        sizes_tuple = tuple(int(counts.domain_size(n)) for n in names)
        layout, locator, index = _bucket_layout(names, sizes_tuple)

        # Vectorised totals/sizes when the provider offers them (all in-tree
        # providers do); the scalar fallback keeps exotic providers working.
        if hasattr(counts, "totals_vector") and hasattr(counts, "sizes_matrix"):
            totals = np.asarray(counts.totals_vector(names), dtype=np.float64)
            sizes = np.asarray(counts.sizes_matrix(names), dtype=np.float64)
        else:
            totals = np.array(
                [float(counts.total(n)) for n in names], dtype=np.float64
            )
            sizes = np.array(
                [
                    [float(counts.cluster_size(n, c)) for c in range(n_clusters)]
                    for n in names
                ],
                dtype=np.float64,
            )

        has_matrix = hasattr(counts, "by_cluster")
        buckets: list[DomainBucket] = []
        for width, cols in layout:
            tensor = np.zeros((len(cols), n_clusters, width), dtype=np.float64)
            full = np.zeros((len(cols), width), dtype=np.float64)
            for r, j in enumerate(cols):
                name = names[j]
                m = sizes_tuple[j]
                if has_matrix:
                    tensor[r, :, :m] = np.asarray(
                        counts.by_cluster(name), dtype=np.float64
                    )
                else:
                    for c in range(n_clusters):
                        tensor[r, c, :m] = np.asarray(
                            counts.cluster(name, c), dtype=np.float64
                        )
                full[r, :m] = np.asarray(counts.full(name), dtype=np.float64)
            buckets.append(
                DomainBucket(
                    indices=np.asarray(cols, dtype=np.intp),
                    by_cluster=tensor,
                    full=full,
                    domain_sizes=np.array(
                        [sizes_tuple[j] for j in cols], dtype=np.intp
                    ),
                )
            )
        return cls(
            names=names,
            n_clusters=n_clusters,
            totals=totals,
            sizes=sizes,
            buckets=tuple(buckets),
            index=index,
            locator=locator,
        )


# Fallback-stack memo for providers without by_cluster_stack(): weakly keyed
# on provider identity, holding {names subset -> stack}.  Stacks are
# snapshots, so the memo assumes a provider's counts never change once
# stacked — true for every in-tree provider (counts are built once and
# read-only thereafter).
_FALLBACK_STACKS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def get_stack(counts, names: Sequence[str] | None = None) -> CountsStack:
    """The provider's cached full stack, or its memoised subset stack.

    Providers exposing ``by_cluster_stack()`` (all in-tree providers do) keep
    one lazily-built stack for their whole attribute set.  Other providers —
    and ``names`` subsets — are served from a per-provider weak memo, so
    repeated engine builds over the same provider stack it once instead of
    re-walking every attribute; unhashable or unweakrefable providers simply
    skip the memo.
    """
    if names is None and hasattr(counts, "by_cluster_stack"):
        return counts.by_cluster_stack()
    key = tuple(names) if names is not None else None
    try:
        per = _FALLBACK_STACKS.get(counts)
    except TypeError:  # unhashable provider
        return CountsStack.from_provider(counts, names)
    if per is None:
        per = {}
        try:
            _FALLBACK_STACKS[counts] = per
        except TypeError:  # unweakrefable provider
            return CountsStack.from_provider(counts, names)
    stack = per.get(key)
    if stack is None:
        stack = CountsStack.from_provider(counts, names)
        per[key] = stack
    return stack
