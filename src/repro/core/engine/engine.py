"""The batched scoring engine — one shared evaluator per counts provider.

:class:`ScoringEngine` wraps a counts provider, materialises its
:class:`~repro.core.engine.stacks.CountsStack` once, and serves every score
the selection pipeline needs from cached ``(|C|, |A|)`` matrices:

* Stage-1 (Algorithm 1): :meth:`score_matrix` — the full ``Score_gamma``
  matrix in one shot;
* Stage-2 (Algorithm 2, Lines 5-6): :meth:`combination_score_tensor` — the
  ``k_1 x ... x k_|C|`` tensor of ``GlScore_lambda`` values assembled from
  per-cluster vectors and pairwise diversity blocks;
* Appendix B: :meth:`multi_combination_score_tensor` — the set-valued
  analogue over ``C(k, ell)^|C|`` combinations;
* baselines/evaluation: :meth:`sensitive_score_matrix`,
  :meth:`cluster_tvd_square` (TabEE, DP-TabEE, DP-Naive via
  ``QualityEvaluator``).

Use :func:`scoring_engine` to obtain the memoised engine of a provider; all
consumers of the same counts then share one stack and one set of cached
matrices.
"""

from __future__ import annotations

import itertools
import math
import weakref
from typing import Sequence

import numpy as np

from . import kernels
from .stacks import CountsStack, get_stack


class ScoringEngine:
    """Vectorised quality evaluation over one counts provider."""

    def __init__(self, counts, names: Sequence[str] | None = None):
        # Hold the provider weakly: scoring_engine() keys its memo table on
        # the provider, so a strong reference here would keep every entry
        # (provider + dataset + stack) alive forever.
        try:
            self._counts_ref = weakref.ref(counts)
        except TypeError:
            self._counts_ref = lambda: counts
        self._stack = get_stack(counts, names)
        self._matrices: dict = {}
        self._tvd_square: dict[str, np.ndarray] = {}
        # Scratch buffers for the fused kernels, reused across calls; the
        # pool is thread-local inside so service worker threads never race.
        self._scratch = kernels.ScratchPool()

    # -- structure --------------------------------------------------------- #

    @property
    def counts(self):
        """The provider this engine was built from (None once collected)."""
        return self._counts_ref()

    @property
    def stack(self) -> CountsStack:
        return self._stack

    @property
    def names(self) -> tuple[str, ...]:
        return self._stack.names

    @property
    def n_clusters(self) -> int:
        return self._stack.n_clusters

    def columns(self, names: Sequence[str]) -> np.ndarray:
        return self._stack.columns(names)

    # -- cached base matrices (columns follow self.names) ------------------- #

    def _matrix(self, key: str, build) -> np.ndarray:
        cached = self._matrices.get(key)
        if cached is None:
            cached = build(self._stack)
            self._matrices[key] = cached
        return cached

    def interestingness_matrix(self) -> np.ndarray:
        """``Int_p`` (Definition 4.3) as a ``(|C|, |A|)`` matrix."""
        return self._matrix("int", kernels.interestingness_low_sens_matrix)

    def sufficiency_matrix(self) -> np.ndarray:
        """``Suf_p`` (Definition 4.6) as a ``(|C|, |A|)`` matrix."""
        return self._matrix("suf", kernels.sufficiency_low_sens_matrix)

    def exclusivity_matrix(self) -> np.ndarray:
        """``Exc_p`` (majority mass) as a ``(|C|, |A|)`` matrix."""
        return self._matrix("exc", kernels.exclusivity_low_sens_matrix)

    def interestingness_tvd_matrix(self) -> np.ndarray:
        """Sensitive TVD interestingness (Eq. 1) as a ``(|C|, |A|)`` matrix."""
        return self._matrix("int_tvd", kernels.interestingness_tvd_matrix)

    def sufficiency_normalized_matrix(self) -> np.ndarray:
        """``Suf_p / |D_c|`` in [0, 1] as a ``(|C|, |A|)`` matrix."""
        cached = self._matrices.get("suf_norm")
        if cached is None:
            cached = kernels.sufficiency_normalized_matrix(
                self._stack, self.sufficiency_matrix()
            )
            self._matrices["suf_norm"] = cached
        return cached

    # -- Stage-1 score matrices -------------------------------------------- #

    def _fused_stage(
        self, gamma_int: float, gamma_suf: float, want_pair_tvd: bool = False
    ) -> np.ndarray:
        """The cached fused ``Score_gamma`` matrix for one gamma pair.

        Fills the per-``(gamma_int, gamma_suf)`` score cache and, when asked,
        the ``pair_tvd`` cache from one :func:`kernels.fused_stage_pass`
        bucket sweep, so Stage-1 scoring and Stage-2 diversity walk the
        stacked tensors once between them.  Cached arrays are frozen
        read-only: they are returned to callers without copying.
        """
        key = ("score", float(gamma_int), float(gamma_suf))
        need_score = key not in self._matrices
        need_pair = want_pair_tvd and "pair_tvd" not in self._matrices
        if need_score or need_pair:
            score, pair = kernels.fused_stage_pass(
                self._stack,
                gamma_int,
                gamma_suf,
                want_score=need_score,
                want_pair_tvd=need_pair,
                scratch=self._scratch,
            )
            if need_score:
                score.flags.writeable = False
                self._matrices[key] = score
            if need_pair:
                pair.flags.writeable = False
                self._matrices["pair_tvd"] = pair
        return self._matrices[key]

    def score_matrix(
        self,
        gamma_int: float,
        gamma_suf: float,
        names: Sequence[str] | None = None,
    ) -> np.ndarray:
        """``Score_gamma`` (Definition 4.11) for every (cluster, attribute).

        Returns a ``(|C|, |names|)`` matrix with columns in ``names`` order
        (all stack attributes when omitted).  Served by the fused
        single-sweep kernel, memoised per gamma pair; the full-width result
        is a shared read-only array.
        """
        out = self._fused_stage(gamma_int, gamma_suf)
        if names is not None and tuple(names) != self._stack.names:
            out = out[:, self.columns(names)]
        return out

    def sensitive_score_matrix(
        self,
        gamma_int: float,
        gamma_suf: float,
        names: Sequence[str] | None = None,
    ) -> np.ndarray:
        """TabEE-style per-cluster score in [0, 1] for every pair."""
        out = np.zeros((self.n_clusters, self._stack.n_attributes))
        if gamma_int:
            out = out + gamma_int * self.interestingness_tvd_matrix()
        if gamma_suf:
            out = out + gamma_suf * self.sufficiency_normalized_matrix()
        if names is not None and tuple(names) != self._stack.names:
            out = out[:, self.columns(names)]
        return out

    # -- diversity --------------------------------------------------------- #

    def pair_tvd_tensor(self) -> np.ndarray:
        """``(|A|, |C|, |C|)`` tensor of all cluster-pair TVDs (Def. 4.8)."""
        return self._matrix("pair_tvd", kernels.pair_tvd_tensor)

    def pair_tvd(self, c: int, c2: int) -> np.ndarray:
        """Per-attribute cluster-vs-cluster TVD vector (Definition 4.8)."""
        return self.pair_tvd_tensor()[:, c, c2]

    def diversity_block(
        self,
        c: int,
        c2: int,
        attrs_c: Sequence[str],
        attrs_c2: Sequence[str],
    ) -> np.ndarray:
        """``(k_c, k_c')`` pair-diversity block between two candidate sets."""
        return kernels.diversity_block(
            self._stack,
            c,
            c2,
            self.columns(attrs_c),
            self.columns(attrs_c2),
            self.pair_tvd(c, c2),
        )

    def cluster_tvd_square(self, name: str) -> np.ndarray:
        """All-pairs normalised TVD between clusters on one attribute."""
        cached = self._tvd_square.get(name)
        if cached is None:
            cached = kernels.cluster_tvd_square(self._stack, name)
            self._tvd_square[name] = cached
        return cached

    # -- Stage-2: the GlScore tensor --------------------------------------- #

    def combination_score_tensor(
        self,
        candidate_sets: Sequence[Sequence[str]],
        weights,
        max_combinations: int | None = None,
    ) -> np.ndarray:
        """``GlScore_lambda`` for every candidate combination, batched.

        The global score decomposes into per-cluster terms (interestingness,
        sufficiency) plus pairwise diversity terms, so the full
        ``k_1 x ... x k_|C|`` tensor is assembled from ``|C|`` vectors and
        ``C(|C|, 2)`` blocks — the same ``O(k^|C|)`` evaluation count as the
        paper's complexity analysis, with no per-(cluster, attribute) Python
        calls.
        """
        n_clusters = self.n_clusters
        if len(candidate_sets) != n_clusters:
            raise ValueError("need one candidate set per cluster")
        shape = tuple(len(s) for s in candidate_sets)
        total = math.prod(shape)
        if max_combinations is not None and total > max_combinations:
            raise ValueError(
                f"{total} candidate combinations exceed the enumeration guard "
                f"({max_combinations}); reduce k or |C|"
            )
        cols = [self.columns(s) for s in candidate_sets]
        tensor = np.zeros(shape, dtype=np.float64)

        # Additive per-cluster part: (lInt * Int_p + lSuf * Suf_p) / |C|.
        # One fused sweep also fills the pair-TVD cache the diversity part
        # reads below, so Stage-1 + Stage-2 walk the bucket tensors once.
        base = self._fused_stage(
            weights.lambda_int,
            weights.lambda_suf,
            want_pair_tvd=bool(weights.lambda_div) and n_clusters >= 2,
        )
        for c in range(n_clusters):
            shp = [1] * n_clusters
            shp[c] = shape[c]
            tensor += (base[c, cols[c]] / n_clusters).reshape(shp)

        # Pairwise diversity part: lDiv * d(c, c') / C(|C|, 2).
        if weights.lambda_div and n_clusters >= 2:
            scale = weights.lambda_div / math.comb(n_clusters, 2)
            uniform = len(set(shape)) == 1
            if uniform:
                # One broadcast computes every (c, c') diversity block:
                # D[c, j, c', j'] = d(D, f, c, c', sets[c][j], sets[c'][j']).
                m = np.stack(cols)
                cidx = np.arange(n_clusters)
                s = self._stack.sizes[m, cidx[:, None]]
                w = np.minimum(s[:, :, None, None], s[None, None, :, :])
                tvd = self.pair_tvd_tensor()[
                    m[:, :, None, None],
                    cidx[:, None, None, None],
                    cidx[None, None, :, None],
                ]
                eq = m[:, :, None, None] == m[None, None, :, :]
                blocks = scale * np.where(eq, w * tvd, w)
            for c, c2 in itertools.combinations(range(n_clusters), 2):
                if uniform:
                    block = blocks[c, :, c2, :]
                else:
                    block = scale * kernels.diversity_block(
                        self._stack, c, c2, cols[c], cols[c2], self.pair_tvd(c, c2)
                    )
                shp = [1] * n_clusters
                shp[c] = shape[c]
                shp[c2] = shape[c2]
                tensor += block.reshape(shp)
        return tensor

    # -- Appendix B: set-valued combinations ------------------------------- #

    def multi_combination_score_tensor(
        self,
        per_cluster_sets: Sequence[Sequence[Sequence[str]]],
        weights,
    ) -> np.ndarray:
        """Appendix B's ``GlScore`` over set-valued combinations, batched.

        ``per_cluster_sets[c]`` lists the candidate ``ell``-subsets of
        cluster ``c``; entry ``[s_1, ..., s_|C|]`` of the returned tensor is
        ``multi_global_score`` of the combination drawing subset ``s_c`` from
        each cluster.  All subsets must share one cardinality ``ell``.
        """
        n_clusters = self.n_clusters
        if len(per_cluster_sets) != n_clusters:
            raise ValueError("need one subset list per cluster")
        members = []
        ell = None
        for subsets in per_cluster_sets:
            if not subsets:
                raise ValueError("empty candidate subset list")
            idx = np.array(
                [[self._stack.index[a] for a in s] for s in subsets], dtype=np.intp
            )
            if ell is None:
                ell = idx.shape[1]
            elif idx.shape[1] != ell:
                raise ValueError("all subsets must share one cardinality ell")
            members.append(idx)
        n_cands = n_clusters * ell
        shape = tuple(m.shape[0] for m in members)
        tensor = np.zeros(shape, dtype=np.float64)

        # Per-cluster Int/Suf subset sums, averaged over all |C|*ell candidates.
        base = self._fused_stage(
            weights.lambda_int,
            weights.lambda_suf,
            want_pair_tvd=bool(weights.lambda_div) and n_clusters >= 2,
        )
        for c in range(n_clusters):
            shp = [1] * n_clusters
            shp[c] = shape[c]
            tensor += (base[c, members[c]].sum(axis=1) / n_cands).reshape(shp)

        if weights.lambda_div and n_cands >= 2:
            n_pairs = math.comb(n_cands, 2)
            sizes = self._stack.sizes
            scale = weights.lambda_div / n_pairs

            # Within-cluster pairs: distinct attributes of one cluster, so
            # d = min(|D_c|, |D_c|) per-attribute weights with no TVD factor.
            for c in range(n_clusters):
                d_cc = np.minimum(sizes[:, c][:, None], sizes[:, c][None, :])
                m = members[c]
                ordered = d_cc[m[:, :, None], m[:, None, :]].sum(axis=(1, 2))
                diag = d_cc[m, m].sum(axis=1)
                shp = [1] * n_clusters
                shp[c] = shape[c]
                tensor += (scale * 0.5 * (ordered - diag)).reshape(shp)

            # Cross-cluster pairs: weight matrix with TVD on the diagonal.
            for c, c2 in itertools.combinations(range(n_clusters), 2):
                d = np.minimum(sizes[:, c][:, None], sizes[:, c2][None, :])
                diag = np.arange(sizes.shape[0])
                d[diag, diag] = d[diag, diag] * self.pair_tvd(c, c2)
                block = d[
                    members[c][:, None, :, None], members[c2][None, :, None, :]
                ].sum(axis=(2, 3))
                shp = [1] * n_clusters
                shp[c] = shape[c]
                shp[c2] = shape[c2]
                tensor += (scale * block).reshape(shp)
        return tensor


_ENGINES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def scoring_engine(counts) -> ScoringEngine:
    """The memoised :class:`ScoringEngine` of a counts provider.

    Keyed weakly on provider identity: every consumer of the same counts
    (Stage-1, Stage-2, baselines, evaluation) shares one stack and one set
    of cached score matrices, and the cache dies with the provider.
    """
    try:
        engine = _ENGINES.get(counts)
    except TypeError:  # unhashable/unweakrefable provider: no memoisation
        return ScoringEngine(counts)
    if engine is None:
        engine = ScoringEngine(counts)
        try:
            _ENGINES[counts] = engine
        except TypeError:
            pass
    return engine
