"""Optional numba acceleration for the fused kernels (``REPRO_NUMBA``).

The fused single-sweep kernels in :mod:`repro.core.engine.kernels` have two
interchangeable backends:

* **numpy** (default, always available) — vectorised ufunc passes over each
  domain bucket with preallocated scratch buffers;
* **numba** — opt-in tight loops compiled with ``@njit``, enabled by setting
  ``REPRO_NUMBA=1`` in the environment *and* having numba importable.

The flag is re-read on every call so tests can flip it with
``monkeypatch.setenv``; the compiled kernel table is built at most once per
process.  When the flag is set but numba is missing, the engine silently
stays on the numpy backend — :func:`backend` reports which one is live, and
CI asserts the fallback is the one actually exercised on numba-free
installs.

Numerics: both backends implement the same clamp/mask conventions as the
unfused kernels, but the loop backend sums sequentially while numpy uses
pairwise summation, so results may differ by a few ULPs.  Both stay within
the 1e-12 oracle tolerance of ``tests/test_engine.py``; bit-identical
streaming guarantees are only claimed for the default numpy backend.
"""

from __future__ import annotations

import functools
import os

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})


def flag_requested() -> bool:
    """Whether ``REPRO_NUMBA`` asks for the numba backend (re-read each call)."""
    return os.environ.get("REPRO_NUMBA", "").strip().lower() in _TRUE_VALUES


@functools.lru_cache(maxsize=1)
def _load_numba_kernels():
    """Compile the njit kernel table once, or None if numba is unavailable."""
    try:
        import numba
    except ImportError:
        return None

    @numba.njit(cache=False)
    def fused_score_bucket(h_c, full, n, n_c, gamma_int, gamma_suf, out):
        # out[a, c] = gamma_int * Int_p + gamma_suf * Suf_p for one bucket.
        n_attrs, n_clusters, width = h_c.shape
        for a in range(n_attrs):
            na = n[a]
            safe = na if na > 0.0 else 1.0
            for c in range(n_clusters):
                ratio = n_c[a, c] / safe
                acc_int = 0.0
                acc_suf = 0.0
                for v in range(width):
                    f = full[a, v]
                    h = h_c[a, c, v]
                    acc_int += abs(h - ratio * f)
                    if h > 0.0:
                        denom = f if f > h else h
                        if denom < 1e-12:
                            denom = 1e-12
                        acc_suf += h * h / denom
                val = gamma_suf * acc_suf
                if na > 0.0:
                    val += gamma_int * 0.5 * acc_int
                out[a, c] = val

    @numba.njit(cache=False)
    def pair_tvd_bucket(h_c, sizes, out):
        # out[a, c, c2] = Definition 4.8's TVD for one bucket.
        n_attrs, n_clusters, width = h_c.shape
        for a in range(n_attrs):
            for c in range(n_clusters):
                nc = sizes[a, c]
                if nc < 1.0:
                    nc = 1.0
                for c2 in range(n_clusters):
                    n2 = sizes[a, c2]
                    if n2 < 1.0:
                        n2 = 1.0
                    acc = 0.0
                    for v in range(width):
                        acc += abs(h_c[a, c, v] / nc - h_c[a, c2, v] / n2)
                    out[a, c, c2] = 0.5 * acc

    return {
        "fused_score_bucket": fused_score_bucket,
        "pair_tvd_bucket": pair_tvd_bucket,
    }


def numba_kernels():
    """The compiled kernel table when the flag is on and numba exists, else None."""
    if not flag_requested():
        return None
    return _load_numba_kernels()


def backend() -> str:
    """``"numba"`` when accelerated kernels are live, ``"numpy"`` otherwise."""
    return "numba" if numba_kernels() is not None else "numpy"
