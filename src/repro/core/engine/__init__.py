"""Batched scoring engine: stacked counts + array-level quality kernels.

The engine is the vectorised middle layer between the group-by counts
(:mod:`repro.core.counts`) and the selection pipeline / baselines.  See
``ARCHITECTURE.md`` for the counts -> kernels -> engine -> explainer
layering.
"""

from . import accel, kernels
from .engine import ScoringEngine, scoring_engine
from .shm import SharedStack, SharedStackHandle, StackCounts, attach_counts, share_stack
from .stacks import CountsStack, DomainBucket, get_stack

__all__ = [
    "accel",
    "kernels",
    "ScoringEngine",
    "scoring_engine",
    "CountsStack",
    "DomainBucket",
    "get_stack",
    "SharedStack",
    "SharedStackHandle",
    "StackCounts",
    "attach_counts",
    "share_stack",
]
