"""Two-dimensional (attribute-pair) explanations — the paper's future work #2.

Section 8: "One possible way to extend DPClustX to higher-dimensional
histograms is by considering the Cartesian product of the domains.  However
... it comes at the cost of increased complexity, and may result in
histograms where all counts are small, making it challenging to accurately
compute them under DP."

We implement exactly that extension: :class:`ProductCounts` wraps a base
counts provider and exposes every requested attribute *pair* as a pseudo-
attribute whose domain is the Cartesian product.  Because it satisfies the
:class:`~repro.core.counts.CountsProvider` protocol, the unmodified
Algorithms 1-2 run over pairs — quality functions, sensitivities (still 1:
one tuple still lands in exactly one product-domain cell) and privacy
analysis all carry over.  The small-counts caveat the paper predicts is
observable in the benches: product cells hold fractions of the 1-D counts,
so histogram noise hurts more.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

import numpy as np

from ..dataset.schema import Attribute
from .counts import ClusteredCounts

PAIR_SEPARATOR = "*"


def pair_name(a: str, b: str) -> str:
    """Canonical pseudo-attribute name for the pair ``(a, b)``."""
    return f"{a}{PAIR_SEPARATOR}{b}"


def split_pair_name(name: str) -> tuple[str, str]:
    """Inverse of :func:`pair_name`."""
    if PAIR_SEPARATOR not in name:
        raise ValueError(f"{name!r} is not a pair pseudo-attribute")
    a, b = name.split(PAIR_SEPARATOR, 1)
    return a, b


def product_attribute(first: Attribute, second: Attribute) -> Attribute:
    """The product-domain attribute with labels ``"u | v"``."""
    domain = tuple(
        f"{u} | {v}" for u in first.domain for v in second.domain
    )
    return Attribute(pair_name(first.name, second.name), domain)


class ProductCounts:
    """Counts provider over attribute pairs (Cartesian-product domains).

    Parameters
    ----------
    base:
        The exact 1-D counts of the dataset under the clustering.
    pairs:
        The attribute pairs to expose.  Defaults to all unordered pairs of
        the base attributes — note this squares the candidate pool, which is
        the complexity cost the paper warns about.
    include_singletons:
        Also expose the original 1-D attributes, letting the selection
        mechanisms choose between 1-D and 2-D explanations on merit.
    """

    def __init__(
        self,
        base: ClusteredCounts,
        pairs: Iterable[tuple[str, str]] | None = None,
        include_singletons: bool = True,
    ):
        self._base = base
        if pairs is None:
            pairs = itertools.combinations(base.names, 2)
        self._pairs: dict[str, tuple[str, str]] = {}
        for a, b in pairs:
            if a == b:
                raise ValueError(f"pair ({a!r}, {a!r}) repeats an attribute")
            for name in (a, b):
                if name not in base.names:
                    raise ValueError(f"unknown attribute {name!r}")
            self._pairs[pair_name(a, b)] = (a, b)
        self._include_singletons = include_singletons
        self._names = (
            tuple(base.names) + tuple(self._pairs)
            if include_singletons
            else tuple(self._pairs)
        )
        self._by_cluster_cache: dict[str, np.ndarray] = {}
        self._full_cache: dict[str, np.ndarray] = {}
        self._stack = None

    # -- protocol ----------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def n_clusters(self) -> int:
        return self._base.n_clusters

    @property
    def base(self) -> ClusteredCounts:
        return self._base

    def is_pair(self, name: str) -> bool:
        return name in self._pairs

    def pair_members(self, name: str) -> tuple[str, str]:
        return self._pairs[name]

    def domain_size(self, name: str) -> int:
        if name in self._pairs:
            a, b = self._pairs[name]
            return self._base.domain_size(a) * self._base.domain_size(b)
        return self._base.domain_size(name)

    def attribute(self, name: str) -> Attribute:
        """The (pseudo-)attribute for rendering released histograms."""
        schema = self._base.dataset.schema
        if name in self._pairs:
            a, b = self._pairs[name]
            return product_attribute(schema.attribute(a), schema.attribute(b))
        return schema.attribute(name)

    def by_cluster(self, name: str) -> np.ndarray:
        if name not in self._pairs:
            return self._base.by_cluster(name)
        cached = self._by_cluster_cache.get(name)
        if cached is None:
            a, b = self._pairs[name]
            m_a = self._base.domain_size(a)
            m_b = self._base.domain_size(b)
            codes_a = np.asarray(self._base.dataset.column(a))
            codes_b = np.asarray(self._base.dataset.column(b))
            joint = codes_a * m_b + codes_b
            labels = self._base.labels
            flat = labels * (m_a * m_b) + joint
            cached = (
                np.bincount(flat, minlength=self.n_clusters * m_a * m_b)
                .reshape(self.n_clusters, m_a * m_b)
                .astype(np.int64)
            )
            self._by_cluster_cache[name] = cached
        return cached

    def full(self, name: str) -> np.ndarray:
        if name not in self._pairs:
            return self._base.full(name)
        cached = self._full_cache.get(name)
        if cached is None:
            cached = self.by_cluster(name).sum(axis=0)
            self._full_cache[name] = cached
        return cached

    def cluster(self, name: str, c: int) -> np.ndarray:
        return self.by_cluster(name)[c]

    def total(self, name: str) -> float:
        return float(self._base.n)

    def cluster_size(self, name: str, c: int) -> float:
        return self._base.cluster_size(name, c)

    def by_cluster_stack(self):
        """Dense stack over the full (singleton + pair) pseudo-attribute pool.

        Bucketing by domain size keeps the Cartesian-product domains from
        forcing a single max-padded tensor."""
        if self._stack is None:
            from .engine.stacks import CountsStack

            self._stack = CountsStack.from_provider(self)
        return self._stack


def explain_with_pairs(
    explainer,
    counts: ProductCounts,
    rng=None,
    accountant=None,
):
    """Run Algorithm 2 over a pair-extended candidate pool.

    ``explainer`` is a :class:`~repro.core.dpclustx.DPClustX`; Stages 1-2 run
    unchanged over the pseudo-attribute pool (the sensitivity analysis is
    identical), and noisy histograms are released over the product domains
    with the same eps_Hist allocation.  Returns a
    :class:`~repro.core.hbe.GlobalExplanation` whose attributes may be
    product pseudo-attributes (rendered with "u | v" labelled bins).
    """
    from ..privacy.rng import ensure_rng
    from .hbe import GlobalExplanation, SingleClusterExplanation

    gen = ensure_rng(rng)
    selection = explainer.select_combination(counts, gen, accountant)
    combination = selection.combination

    distinct = combination.distinct_attributes()
    eps_hist_all = explainer.budget.eps_hist / (2.0 * len(distinct))
    eps_hist_cluster = explainer.budget.eps_hist / 2.0
    full_mech = explainer.histogram_mechanism.with_epsilon(eps_hist_all)
    cluster_mech = explainer.histogram_mechanism.with_epsilon(eps_hist_cluster)

    # Charge each composition block before its noise is sampled.
    if accountant is not None:
        accountant.spend(eps_hist_all * len(distinct), "pair histograms: full")
    noisy_full = {a: full_mech.release(counts.full(a), gen) for a in distinct}
    if accountant is not None:
        accountant.parallel(
            [eps_hist_cluster] * counts.n_clusters, "pair histograms: clusters"
        )
    explanations = []
    for c in range(counts.n_clusters):
        a_c = combination[c]
        noisy_c = cluster_mech.release(counts.cluster(a_c, c), gen)
        explanations.append(
            SingleClusterExplanation(
                cluster=c,
                attribute=counts.attribute(a_c),
                hist_rest=np.maximum(noisy_full[a_c] - noisy_c, 0.0),
                hist_cluster=noisy_c,
            )
        )
    return GlobalExplanation(
        per_cluster=tuple(explanations),
        combination=combination,
        metadata={
            "framework": "DPClustX+pairs",
            "budget": explainer.budget,
            "epsilon_total": explainer.budget.total,
            "pair_pool": tuple(n for n in counts.names if counts.is_pair(n)),
        },
    )


def top_pairs_by_interestingness(
    counts: ClusteredCounts, limit: int
) -> list[tuple[str, str]]:
    """Cheap *non-private* pre-filter of pairs by 1-D interestingness sums.

    All-pairs pseudo-attribute pools grow as |A|^2; a practical deployment
    restricts the pool to pairs of individually-promising attributes.  The
    returned list pairs up the ``ceil(sqrt(2*limit)) + 1`` attributes with
    the highest total low-sensitivity interestingness.  NOTE: selecting the
    pool from the data leaks information; to stay DP, callers should either
    use a data-independent pool or budget a Stage-0 selection (we expose this
    helper for the non-private ablation in the benches).
    """
    from .engine import scoring_engine

    per_attr = scoring_engine(counts).interestingness_matrix().sum(axis=0)
    scores = dict(zip(counts.names, per_attr))
    ranked = sorted(scores, key=lambda a: -scores[a])
    head = ranked[: max(int(np.ceil(np.sqrt(2 * limit))) + 1, 2)]
    pairs = list(itertools.combinations(head, 2))[:limit]
    return pairs
