"""Rule-based textual descriptions of histogram explanations (Figure 2b).

The paper attaches an LLM-generated description to each histogram pair "for
simplicity" — the description is presentational, not part of the mechanism.
We generate the same kind of statement deterministically: find the domain
split that maximises the cumulative-mass contrast between the cluster and the
rest, and phrase both sides of it.  Operating on the *released* noisy
histograms, this is pure post-processing and costs no privacy.
"""

from __future__ import annotations

import numpy as np

from .hbe import GlobalExplanation, SingleClusterExplanation


def best_split(cluster_freq: np.ndarray, rest_freq: np.ndarray) -> tuple[int, float]:
    """Index ``s`` maximising ``|F_cluster(s) - F_rest(s)|`` over prefixes.

    Returns ``(split, contrast)`` where the prefix is ``domain[:split + 1]``.
    This is the (discrete) Kolmogorov-Smirnov statistic of the two released
    distributions, pointing at the most contrastive threshold.
    """
    cum_c = np.cumsum(cluster_freq)
    cum_r = np.cumsum(rest_freq)
    gaps = np.abs(cum_c - cum_r)
    if gaps.size <= 1:
        return 0, 0.0
    split = int(np.argmax(gaps[:-1]))  # the final prefix has zero contrast
    return split, float(gaps[split])


def _pct(x: float) -> str:
    return f"{100.0 * x:.0f}%"


def describe_single(
    explanation: SingleClusterExplanation, cluster_name: str | None = None
) -> str:
    """One-paragraph description in the style of Figure 2b."""
    rest, cluster = explanation.normalized()
    name = explanation.attribute.name
    label = cluster_name or f"Cluster {explanation.cluster + 1}"
    if cluster.sum() == 0 or rest.sum() == 0:
        return (
            f"The '{name}' histogram for {label} is empty after noise; "
            "no distributional statement can be made."
        )
    split, contrast = best_split(cluster, rest)
    domain = explanation.attribute.domain
    low_side = domain[split]
    cum_c = float(np.cumsum(cluster)[split])
    cum_r = float(np.cumsum(rest)[split])
    if contrast < 0.05:
        return (
            f"The '{name}' column values are similar inside and outside "
            f"{label} (maximum cumulative gap {_pct(contrast)})."
        )
    if cum_r > cum_c:
        return (
            f"The '{name}' column values differ significantly. Values outside "
            f"{label} are concentrated at or below {low_side!r} "
            f"({_pct(cum_r)} of the rest), while {label} contains mainly "
            f"higher values ({_pct(1.0 - cum_c)} above {low_side!r})."
        )
    return (
        f"The '{name}' column values differ significantly. {label} is "
        f"concentrated at or below {low_side!r} ({_pct(cum_c)} of the "
        f"cluster), while values outside peak higher "
        f"({_pct(1.0 - cum_r)} above {low_side!r})."
    )


def describe(explanation: GlobalExplanation) -> str:
    """Concatenated per-cluster descriptions of a global explanation."""
    return "\n".join(describe_single(e) for e in explanation.per_cluster)
