"""Algorithm 1 — Select-Candidates: private per-cluster top-k attributes.

For each cluster the single-cluster score (Definition 4.11) of every
attribute is perturbed once with ``Gumbel(sigma)``, ``sigma = 2k /
eps_Topk`` where ``eps_Topk = eps_CandSet / |C|``; the k noisy-best
attributes form the cluster's candidate set ``S_c``.  The procedure is the
One-shot Top-k mechanism [15] applied per cluster, and satisfies
``eps_CandSet``-DP overall (Proposition 5.1) — parallel composition does
*not* apply because each score reads the full dataset, not just the cluster
(Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..privacy.budget import PrivacyAccountant, check_epsilon
from ..privacy.rng import ensure_rng
from ..privacy.topk import OneShotTopK
from .counts import CountsProvider
from .engine import scoring_engine
from .quality.scores import SCORE_SENSITIVITY

ScoreFn = Callable[[CountsProvider, int, str], float]
"""A single-cluster quality score ``(counts, cluster, attribute) -> float``.

Custom scores (Section 8's future work #4) plug into Algorithm 1 through the
``score_fn`` parameter; the caller must supply a valid sensitivity upper
bound via ``score_sensitivity`` for the DP guarantee to hold.
"""


def stage1_mechanism(
    eps_cand_set: float,
    n_clusters: int,
    k: int,
    score_sensitivity: float = SCORE_SENSITIVITY,
) -> OneShotTopK:
    """Lines 1-2 of Algorithm 1: ``eps_Topk = eps_CandSet / |C|``.

    The single source of the Stage-1 budget split — both the serial
    :func:`select_candidates` loop and the batched sweep layer
    (:mod:`repro.evaluation.sweeps`) derive their One-shot Top-k mechanism
    here, so the noise calibration cannot drift between the two paths.
    """
    return OneShotTopK(eps_cand_set / n_clusters, k, score_sensitivity)


@dataclass(frozen=True)
class CandidateSelection:
    """Output of Algorithm 1: the per-cluster candidate sets ``S_c``.

    ``candidate_sets[c]`` lists attribute names in descending noisy-score
    order; ``noisy_scores[c]`` holds the matching noisy scores (released
    alongside by post-processing of the same mechanism output).
    """

    candidate_sets: tuple[tuple[str, ...], ...]
    noisy_scores: tuple[tuple[float, ...], ...]

    @property
    def n_clusters(self) -> int:
        return len(self.candidate_sets)

    @property
    def k(self) -> int:
        return len(self.candidate_sets[0]) if self.candidate_sets else 0


def select_candidates(
    counts: CountsProvider,
    gamma: tuple[float, float],
    eps_cand_set: float,
    k: int,
    rng: np.random.Generator | int | None = None,
    accountant: PrivacyAccountant | None = None,
    names: tuple[str, ...] | None = None,
    score_sensitivity: float = SCORE_SENSITIVITY,
    score_fn: ScoreFn | None = None,
) -> CandidateSelection:
    """Run Algorithm 1 and return the candidate sets ``S_{c_1}, ..., S_{c_|C|}``.

    Parameters
    ----------
    counts:
        Group-by counts of the sensitive dataset under the clustering.
    gamma:
        ``(gamma_Int, gamma_Suf)`` — non-negative, summing to 1.
    eps_cand_set:
        Stage-1 privacy budget ``eps_CandSet``.
    k:
        Candidate-set cardinality.
    names:
        Attribute pool ``A`` (defaults to every attribute of the dataset).
    score_sensitivity:
        Sensitivity bound used to scale the Gumbel noise; 1 for
        ``Score_gamma`` (Proposition 4.12).
    score_fn:
        Optional custom single-cluster score replacing ``Score_gamma``
        (future work #4); ``gamma`` is ignored when provided, and
        ``score_sensitivity`` must upper-bound the custom score's
        sensitivity.
    """
    check_epsilon(eps_cand_set, name="eps_cand_set")
    gamma_int, gamma_suf = gamma
    if gamma_int < 0 or gamma_suf < 0 or not np.isclose(gamma_int + gamma_suf, 1.0):
        raise ValueError("gamma must be non-negative and sum to 1")
    names = names if names is not None else counts.names
    if k < 1 or k > len(names):
        raise ValueError(f"k must be in [1, |A|] = [1, {len(names)}], got {k}")

    gen = ensure_rng(rng)
    n_clusters = counts.n_clusters
    mechanism = stage1_mechanism(  # Lines 1-2: sigma = 2k / (eps / |C|)
        eps_cand_set, n_clusters, k, score_sensitivity
    )

    if score_fn is None:
        # Line 5 (true part), batched: the full (|C|, |A|) Score_gamma matrix
        # in one engine call instead of |C| * |A| scalar evaluations.
        score_matrix = scoring_engine(counts).score_matrix(
            gamma_int, gamma_suf, names
        )
    else:
        score_matrix = None

    # Charge before any noise is sampled: a BudgetError past this point
    # would mean privacy already burned that the ledger never saw.
    if accountant is not None:
        accountant.spend(eps_cand_set, "stage1: candidate sets (one-shot top-k)")

    sets: list[tuple[str, ...]] = []
    released_scores: list[tuple[float, ...]] = []
    for c in range(n_clusters):  # Line 3
        if score_matrix is not None:
            scores = score_matrix[c]
        else:
            scores = np.array([score_fn(counts, c, a) for a in names])
        noisy = mechanism.noisy_scores(scores, gen)  # Line 5 (noise)
        order = np.argsort(-noisy, kind="stable")  # Line 7
        top = order[:k]  # Lines 8-9
        sets.append(tuple(names[i] for i in top))
        released_scores.append(tuple(float(noisy[i]) for i in top))
    return CandidateSelection(tuple(sets), tuple(released_scores))  # Line 11
