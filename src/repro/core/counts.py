"""Count providers: the group-by machinery behind every quality function.

All quality functions of Section 4 are functions of ``cnt_{A=a}(D)`` and
``cnt_{A=a}(D_c)``.  :class:`ClusteredCounts` materialises those counts from a
dataset and a clustering function (two group-by queries per attribute, as the
complexity analysis in Section 5.2 counts them).  :class:`NoisyCounts` serves
the same interface from pre-released noisy histograms — this is what the
DP-Naive baseline post-processes — with ``|D|`` / ``|D_c|`` proxied by the
per-attribute noisy totals.
"""

from __future__ import annotations

import hashlib

from typing import Mapping, Protocol, Sequence

import numpy as np

from ..dataset.table import Dataset
from ..clustering.base import ClusteringFunction


class CountsProvider(Protocol):
    """Structural interface consumed by the quality functions."""

    @property
    def names(self) -> tuple[str, ...]: ...

    @property
    def n_clusters(self) -> int: ...

    def domain_size(self, name: str) -> int: ...

    def full(self, name: str) -> np.ndarray:
        """``h_A(D)`` — counts over ``dom(A)`` for the whole dataset."""
        ...

    def cluster(self, name: str, c: int) -> np.ndarray:
        """``h_A(D_c)`` — counts over ``dom(A)`` for cluster ``c``."""
        ...

    def by_cluster(self, name: str) -> np.ndarray:
        """The ``(n_clusters, |dom(A)|)`` matrix stacking every cluster."""
        ...

    def total(self, name: str) -> float:
        """``|D|`` (or its noisy proxy for the given attribute)."""
        ...

    def cluster_size(self, name: str, c: int) -> float:
        """``|D_c|`` (or its noisy proxy for the given attribute)."""
        ...

    def by_cluster_stack(self):
        """The cached :class:`~repro.core.engine.stacks.CountsStack` over all
        attributes — the dense tensor view the batched scoring engine runs
        on.  Providers lacking it are stacked attribute-by-attribute via
        :func:`~repro.core.engine.stacks.get_stack`."""
        ...


class ClusteredCounts:
    """Exact counts from a dataset + clustering function, lazily cached.

    Parameters
    ----------
    dataset:
        The sensitive dataset ``D``.
    clustering:
        Either a :class:`~repro.clustering.base.ClusteringFunction` or a
        pre-computed integer label array of length ``|D|``.
    n_clusters:
        Required when ``clustering`` is a label array.
    """

    def __init__(
        self,
        dataset: Dataset,
        clustering: "ClusteringFunction | np.ndarray",
        n_clusters: int | None = None,
    ):
        self._dataset = dataset
        if isinstance(clustering, np.ndarray):
            if n_clusters is None:
                raise ValueError("n_clusters is required with a label array")
            labels = clustering.astype(np.int64)
            self._n_clusters = int(n_clusters)
        else:
            labels = clustering.assign(dataset)
            self._n_clusters = clustering.n_clusters
        if len(labels) != len(dataset):
            raise ValueError("label array length must equal |D|")
        if len(labels) and (labels.min() < 0 or labels.max() >= self._n_clusters):
            raise ValueError("labels out of range")
        self._labels = labels
        self._sizes = np.bincount(labels, minlength=self._n_clusters).astype(np.int64)
        self._by_cluster: dict[str, np.ndarray] = {}
        self._full: dict[str, np.ndarray] = {}
        self._stack = None
        self._signature: str | None = None

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def labels(self) -> np.ndarray:
        return self._labels

    @property
    def names(self) -> tuple[str, ...]:
        return self._dataset.schema.names

    @property
    def n_clusters(self) -> int:
        return self._n_clusters

    @property
    def n(self) -> int:
        return len(self._dataset)

    def domain_size(self, name: str) -> int:
        return self._dataset.schema.attribute(name).domain_size

    def sizes(self) -> np.ndarray:
        """``(|D_c|)_c`` as an int vector."""
        return self._sizes.copy()

    def signature(self) -> str:
        """Stable hash of (dataset fingerprint, |C|, label assignment).

        The clustering half of the explanation service's cache key: two
        ``ClusteredCounts`` sign equally iff they were built over
        fingerprint-equal datasets with identical cluster counts and
        identical per-row labels, so relabeling (even a pure permutation of
        cluster ids) or rebinning the dataset changes the key.
        """
        if self._signature is None:
            h = hashlib.sha256()
            h.update(self._dataset.fingerprint().encode("ascii"))
            h.update(f"|C|={self._n_clusters}".encode("ascii"))
            h.update(np.ascontiguousarray(self._labels).tobytes())
            self._signature = h.hexdigest()
        return self._signature

    def by_cluster(self, name: str) -> np.ndarray:
        """The ``(n_clusters, |dom(A)|)`` matrix of per-cluster counts."""
        cached = self._by_cluster.get(name)
        if cached is None:
            m = self.domain_size(name)
            codes = np.asarray(self._dataset.column(name))
            flat = self._labels * m + codes
            cached = (
                np.bincount(flat, minlength=self._n_clusters * m)
                .reshape(self._n_clusters, m)
                .astype(np.int64)
            )
            self._by_cluster[name] = cached
        return cached

    def materialise(self) -> None:
        """Fused one-pass group-by over every not-yet-cached attribute.

        All attributes are encoded into one flat code vector with cumulative
        domain offsets, so a **single** ``np.bincount`` over
        ``labels * total_bins + offset_A + code`` yields every
        ``(|C|, m_A)`` by-cluster matrix at once — one pass over the
        ``n x |A|`` codes instead of ``|A|`` separate label-scaling +
        bincount passes.  Idempotent; :meth:`by_cluster_stack` calls it so
        the dense engine stack is fed directly from the fused histogram.
        """
        missing = [n for n in self.names if n not in self._by_cluster]
        if not missing:
            return
        sizes = np.array([self.domain_size(n) for n in missing], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        total_bins = int(offsets[-1])
        # (|A|, n) codes matrix + per-attribute offsets + scaled labels, all
        # broadcast into one flat index vector for the single bincount.
        codes = np.stack([np.asarray(self._dataset.column(n)) for n in missing])
        flat = codes
        flat += offsets[:-1, None]
        flat += self._labels * total_bins
        hist = np.bincount(
            flat.ravel(), minlength=self._n_clusters * total_bins
        ).reshape(self._n_clusters, total_bins)
        for j, name in enumerate(missing):
            self._by_cluster[name] = np.ascontiguousarray(
                hist[:, offsets[j] : offsets[j + 1]], dtype=np.int64
            )

    def full(self, name: str) -> np.ndarray:
        cached = self._full.get(name)
        if cached is None:
            cached = self.by_cluster(name).sum(axis=0)
            self._full[name] = cached
        return cached

    def cluster(self, name: str, c: int) -> np.ndarray:
        return self.by_cluster(name)[c]

    def total(self, name: str) -> float:
        return float(self.n)

    def cluster_size(self, name: str, c: int) -> float:
        return float(self._sizes[c])

    def totals_vector(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`total` over many attributes (stack fast path)."""
        return np.full(len(names), float(self.n), dtype=np.float64)

    def sizes_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`cluster_size`: the ``(|names|, |C|)`` matrix."""
        return np.broadcast_to(
            self._sizes.astype(np.float64), (len(names), self._n_clusters)
        ).copy()

    def by_cluster_stack(self):
        """Lazily-built dense stack feeding the batched scoring engine.

        The fused :meth:`materialise` pass runs first, so the stack is
        assembled from the single-bincount histogram rather than ``|A|``
        separate group-by passes over the ``n`` rows.
        """
        if self._stack is None:
            from .engine.stacks import CountsStack

            self.materialise()
            self._stack = CountsStack.from_provider(self)
        return self._stack


class NoisyCounts:
    """Counts served from released noisy histograms (post-processing only).

    ``full_hists[name]`` is the noisy full-data histogram; ``cluster_hists``
    maps a name to the ``(n_clusters, m)`` noisy per-cluster matrix.  Totals
    and cluster sizes are the corresponding noisy sums, clamped to a minimum
    of 1 to keep the quality formulas finite.
    """

    def __init__(
        self,
        names: Sequence[str],
        full_hists: Mapping[str, np.ndarray],
        cluster_hists: Mapping[str, np.ndarray],
        n_clusters: int,
    ):
        self._names = tuple(names)
        self._n_clusters = int(n_clusters)
        self._full = {n: np.asarray(full_hists[n], dtype=np.float64) for n in names}
        self._clusters = {
            n: np.asarray(cluster_hists[n], dtype=np.float64) for n in names
        }
        for n in names:
            mat = self._clusters[n]
            if mat.shape != (self._n_clusters, self._full[n].shape[0]):
                raise ValueError(f"shape mismatch for attribute {n!r}")
        self._stack = None

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def n_clusters(self) -> int:
        return self._n_clusters

    def domain_size(self, name: str) -> int:
        return int(self._full[name].shape[0])

    def full(self, name: str) -> np.ndarray:
        return self._full[name]

    def cluster(self, name: str, c: int) -> np.ndarray:
        return self._clusters[name][c]

    def by_cluster(self, name: str) -> np.ndarray:
        return self._clusters[name]

    def total(self, name: str) -> float:
        return max(float(self._full[name].sum()), 1.0)

    def cluster_size(self, name: str, c: int) -> float:
        # Clamped to 1 like ``total`` (the documented contract): a noisy
        # all-zero cluster release must not zero-divide downstream quality
        # formulas such as the normalised sufficiency.
        return max(float(self._clusters[name][c].sum()), 1.0)

    def totals_vector(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`total` over many attributes (stack fast path)."""
        return np.array(
            [max(float(self._full[n].sum()), 1.0) for n in names],
            dtype=np.float64,
        )

    def sizes_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`cluster_size`: one axis-sum per attribute."""
        return np.stack(
            [np.maximum(self._clusters[n].sum(axis=1), 1.0) for n in names]
        )

    def by_cluster_stack(self):
        """Lazily-built dense stack feeding the batched scoring engine."""
        if self._stack is None:
            from .engine.stacks import CountsStack

            self._stack = CountsStack.from_provider(self)
        return self._stack
