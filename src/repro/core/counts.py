"""Count providers: the group-by machinery behind every quality function.

All quality functions of Section 4 are functions of ``cnt_{A=a}(D)`` and
``cnt_{A=a}(D_c)``.  :class:`ClusteredCounts` materialises those counts from a
dataset and a clustering function (two group-by queries per attribute, as the
complexity analysis in Section 5.2 counts them).  :class:`NoisyCounts` serves
the same interface from pre-released noisy histograms — this is what the
DP-Naive baseline post-processes — with ``|D|`` / ``|D_c|`` proxied by the
per-attribute noisy totals.
"""

from __future__ import annotations

import hashlib

from typing import Iterable, Mapping, Protocol, Sequence

import numpy as np

from ..dataset.schema import Schema
from ..dataset.table import CODE_DTYPE, Dataset, FingerprintAccumulator, chunk_spans
from ..clustering.base import ClusteringFunction

# Default scratch bound for chunked materialisation: the transient
# (|A|, chunk) flat-code matrix is kept under ~64 MiB regardless of |D|,
# so a 10M-row dataset group-bys in bounded memory.
_CHUNK_SCRATCH_BYTES = 64 * 1024 * 1024


def _materialise_chunk_rows(n_attributes: int) -> int:
    """Rows per chunk keeping the (|A|, chunk) int64 scratch under budget."""
    per_row = max(n_attributes, 1) * np.dtype(CODE_DTYPE).itemsize
    return max(_CHUNK_SCRATCH_BYTES // per_row, 1024)


def _signature_digest(fingerprint: str, n_clusters: int, label_digest: bytes) -> str:
    """The (dataset, clustering) cache-key hash shared by all count builders.

    ``label_digest`` is the SHA-256 over the raw int64 label bytes — a
    sub-digest, so a streaming build that only ever sees label chunks
    produces the same signature as the in-RAM path.
    """
    h = hashlib.sha256()
    h.update(fingerprint.encode("ascii"))
    h.update(f"|C|={n_clusters}".encode("ascii"))
    h.update(label_digest)
    return h.hexdigest()


class CountsProvider(Protocol):
    """Structural interface consumed by the quality functions."""

    @property
    def names(self) -> tuple[str, ...]: ...

    @property
    def n_clusters(self) -> int: ...

    def domain_size(self, name: str) -> int: ...

    def full(self, name: str) -> np.ndarray:
        """``h_A(D)`` — counts over ``dom(A)`` for the whole dataset."""
        ...

    def cluster(self, name: str, c: int) -> np.ndarray:
        """``h_A(D_c)`` — counts over ``dom(A)`` for cluster ``c``."""
        ...

    def by_cluster(self, name: str) -> np.ndarray:
        """The ``(n_clusters, |dom(A)|)`` matrix stacking every cluster."""
        ...

    def total(self, name: str) -> float:
        """``|D|`` (or its noisy proxy for the given attribute)."""
        ...

    def cluster_size(self, name: str, c: int) -> float:
        """``|D_c|`` (or its noisy proxy for the given attribute)."""
        ...

    def by_cluster_stack(self):
        """The cached :class:`~repro.core.engine.stacks.CountsStack` over all
        attributes — the dense tensor view the batched scoring engine runs
        on.  Providers lacking it are stacked attribute-by-attribute via
        :func:`~repro.core.engine.stacks.get_stack`."""
        ...


class ClusteredCounts:
    """Exact counts from a dataset + clustering function, lazily cached.

    Parameters
    ----------
    dataset:
        The sensitive dataset ``D``.
    clustering:
        Either a :class:`~repro.clustering.base.ClusteringFunction` or a
        pre-computed integer label array of length ``|D|``.
    n_clusters:
        Required when ``clustering`` is a label array.
    """

    def __init__(
        self,
        dataset: Dataset,
        clustering: "ClusteringFunction | np.ndarray",
        n_clusters: int | None = None,
    ):
        self._dataset = dataset
        if isinstance(clustering, np.ndarray):
            if n_clusters is None:
                raise ValueError("n_clusters is required with a label array")
            labels = clustering.astype(np.int64)
            self._n_clusters = int(n_clusters)
        else:
            labels = clustering.assign(dataset)
            self._n_clusters = clustering.n_clusters
        if len(labels) != len(dataset):
            raise ValueError("label array length must equal |D|")
        if len(labels) and (labels.min() < 0 or labels.max() >= self._n_clusters):
            raise ValueError("labels out of range")
        self._labels = labels
        self._sizes = np.bincount(labels, minlength=self._n_clusters).astype(np.int64)
        self._by_cluster: dict[str, np.ndarray] = {}
        self._full: dict[str, np.ndarray] = {}
        self._stack = None
        self._signature: str | None = None

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def labels(self) -> np.ndarray:
        return self._labels

    @property
    def names(self) -> tuple[str, ...]:
        return self._dataset.schema.names

    @property
    def n_clusters(self) -> int:
        return self._n_clusters

    @property
    def n(self) -> int:
        return len(self._dataset)

    def domain_size(self, name: str) -> int:
        return self._dataset.schema.attribute(name).domain_size

    def sizes(self) -> np.ndarray:
        """``(|D_c|)_c`` as an int vector."""
        return self._sizes.copy()

    def signature(self) -> str:
        """Stable hash of (dataset fingerprint, |C|, label assignment).

        The clustering half of the explanation service's cache key: two
        ``ClusteredCounts`` sign equally iff they were built over
        fingerprint-equal datasets with identical cluster counts and
        identical per-row labels, so relabeling (even a pure permutation of
        cluster ids) or rebinning the dataset changes the key.
        """
        if self._signature is None:
            label_digest = hashlib.sha256(
                np.ascontiguousarray(self._labels).tobytes()
            ).digest()
            self._signature = _signature_digest(
                self._dataset.fingerprint(), self._n_clusters, label_digest
            )
        return self._signature

    def by_cluster(self, name: str) -> np.ndarray:
        """The ``(n_clusters, |dom(A)|)`` matrix of per-cluster counts."""
        cached = self._by_cluster.get(name)
        if cached is None:
            m = self.domain_size(name)
            codes = np.asarray(self._dataset.column(name))
            flat = self._labels * m + codes
            cached = (
                np.bincount(flat, minlength=self._n_clusters * m)
                .reshape(self._n_clusters, m)
                .astype(np.int64)
            )
            self._by_cluster[name] = cached
        return cached

    def materialise(self, chunk_rows: int | None = None) -> None:
        """Fused streaming group-by over every not-yet-cached attribute.

        All attributes are encoded into one flat code vector with cumulative
        domain offsets, so ``np.bincount`` over
        ``labels * total_bins + offset_A + code`` yields every
        ``(|C|, m_A)`` by-cluster matrix at once — one pass over the
        ``n x |A|`` codes instead of ``|A|`` separate label-scaling +
        bincount passes.  The pass runs over fixed-size row chunks
        (``chunk_rows`` rows; default bounds the transient (|A|, chunk)
        code matrix to ~64 MiB), accumulating the integer histogram chunk
        by chunk — bincount is an exact integer sum, so the result is
        bit-identical to the one-shot pass for every chunk size, while the
        peak scratch stays flat in ``|D|`` (the seed path stacked the full
        (|A|, n) code matrix: ~3.8 GiB at 10M rows x 47 attributes).
        Idempotent; :meth:`by_cluster_stack` calls it so the dense engine
        stack is fed directly from the fused histogram.
        """
        missing = [n for n in self.names if n not in self._by_cluster]
        if not missing:
            return
        sizes = np.array([self.domain_size(n) for n in missing], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        total_bins = int(offsets[-1])
        if chunk_rows is None:
            chunk_rows = _materialise_chunk_rows(len(missing))
        hist = np.zeros((self._n_clusters, total_bins), dtype=np.int64)
        flat_hist = hist.reshape(-1)
        n = len(self._dataset)
        for span in chunk_spans(n, chunk_rows):
            # (|A|, chunk) codes + per-attribute offsets + scaled labels,
            # broadcast into one flat index vector for the chunk's bincount.
            flat = np.stack(
                [np.asarray(self._dataset.column(a)[span]) for a in missing]
            )
            flat += offsets[:-1, None]
            flat += self._labels[span] * total_bins
            flat_hist += np.bincount(
                flat.ravel(), minlength=self._n_clusters * total_bins
            )
        for j, name in enumerate(missing):
            self._by_cluster[name] = np.ascontiguousarray(
                hist[:, offsets[j] : offsets[j + 1]], dtype=np.int64
            )

    def full(self, name: str) -> np.ndarray:
        cached = self._full.get(name)
        if cached is None:
            cached = self.by_cluster(name).sum(axis=0)
            self._full[name] = cached
        return cached

    def cluster(self, name: str, c: int) -> np.ndarray:
        return self.by_cluster(name)[c]

    def total(self, name: str) -> float:
        return float(self.n)

    def cluster_size(self, name: str, c: int) -> float:
        return float(self._sizes[c])

    def totals_vector(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`total` over many attributes (stack fast path)."""
        return np.full(len(names), float(self.n), dtype=np.float64)

    def sizes_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`cluster_size`: the ``(|names|, |C|)`` matrix."""
        return np.broadcast_to(
            self._sizes.astype(np.float64), (len(names), self._n_clusters)
        ).copy()

    def by_cluster_stack(self):
        """Lazily-built dense stack feeding the batched scoring engine.

        The fused :meth:`materialise` pass runs first, so the stack is
        assembled from the single-bincount histogram rather than ``|A|``
        separate group-by passes over the ``n`` rows.
        """
        if self._stack is None:
            from .engine.stacks import CountsStack

            self.materialise()
            self._stack = CountsStack.from_provider(self)
        return self._stack


class StreamingCountsBuilder:
    """One-pass accumulator turning ``(columns, labels)`` row chunks into counts.

    The big-data entry to the counts layer: feed row chunks from any column
    source — slices of an in-RAM :class:`~repro.dataset.table.Dataset`
    (``Dataset.iter_chunks``), memory-mapped columns, or a generator that
    synthesises chunks on the fly — and :meth:`finalise` returns a
    :class:`StreamedCounts` provider holding only the ``(|C|, total_bins)``
    fused histogram, per-cluster sizes, and streaming content hashes.  The
    raw table is never materialised, so peak memory is flat in ``|D|``.

    Exactness contract: the accumulated histogram is an integer sum of
    per-chunk ``np.bincount`` results, so the by-cluster matrices are
    bit-identical to ``ClusteredCounts(dataset, labels).materialise()`` over
    the concatenated rows for *any* chunking — and the streaming
    fingerprint/signature equal ``dataset.fingerprint()`` /
    ``ClusteredCounts.signature()`` of the same rows, so downstream cache
    and ledger keys agree no matter which path built the counts.
    """

    def __init__(self, schema: Schema, n_clusters: int):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self._schema = schema
        self._names = schema.names
        self._n_clusters = int(n_clusters)
        self._domain_sizes = np.array(
            [schema.attribute(n).domain_size for n in self._names], dtype=np.int64
        )
        self._offsets = np.concatenate(([0], np.cumsum(self._domain_sizes)))
        self._total_bins = int(self._offsets[-1])
        self._hist = np.zeros((self._n_clusters, self._total_bins), dtype=np.int64)
        self._flat_hist = self._hist.reshape(-1)
        self._sizes = np.zeros(self._n_clusters, dtype=np.int64)
        self._n = 0
        self._fingerprint_acc = FingerprintAccumulator(schema)
        self._label_hasher = hashlib.sha256()
        self._finalised = False

    @property
    def n_rows(self) -> int:
        return self._n

    def add_chunk(
        self, columns: Mapping[str, np.ndarray], labels: np.ndarray
    ) -> None:
        """Accumulate one row chunk (validated, hashed, bincounted)."""
        if self._finalised:
            raise RuntimeError("builder already finalised")
        labels = np.ascontiguousarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValueError("labels chunk must be one-dimensional")
        k = labels.shape[0]
        if k and (labels.min() < 0 or labels.max() >= self._n_clusters):
            raise ValueError("labels out of range")
        cols = []
        for j, name in enumerate(self._names):
            col = np.ascontiguousarray(columns[name], dtype=CODE_DTYPE)
            if col.shape != (k,):
                # Chunk lengths redacted: row-count-derived, can reach
                # envelopes.
                raise ValueError(
                    f"column {name!r} chunk length does not match the "
                    "labels chunk"
                )
            if k and (col.min() < 0 or col.max() >= self._domain_sizes[j]):
                raise ValueError(f"column {name!r} contains out-of-domain codes")
            cols.append(col)
        if not k:
            return
        self._fingerprint_acc.update(dict(zip(self._names, cols)))
        self._label_hasher.update(labels.tobytes())
        flat = np.stack(cols)
        flat += self._offsets[:-1, None]
        flat += labels * self._total_bins
        self._flat_hist += np.bincount(
            flat.ravel(), minlength=self._n_clusters * self._total_bins
        )
        self._sizes += np.bincount(labels, minlength=self._n_clusters)
        self._n += k

    def add_dataset(
        self,
        dataset: Dataset,
        labels: np.ndarray,
        chunk_rows: int | None = None,
    ) -> "StreamingCountsBuilder":
        """Feed a whole (possibly memory-mapped) dataset chunk by chunk."""
        if len(labels) != len(dataset):
            raise ValueError("label array length must equal |D|")
        if chunk_rows is None:
            chunk_rows = _materialise_chunk_rows(len(self._names))
        for span, cols in dataset.iter_chunks(chunk_rows):
            self.add_chunk(cols, labels[span])
        return self

    def finalise(self) -> "StreamedCounts":
        """Freeze the accumulated counts into a :class:`StreamedCounts`."""
        self._finalised = True
        fingerprint = self._fingerprint_acc.hexdigest()
        signature = _signature_digest(
            fingerprint, self._n_clusters, self._label_hasher.digest()
        )
        by_cluster = {}
        for j, name in enumerate(self._names):
            by_cluster[name] = np.ascontiguousarray(
                self._hist[:, self._offsets[j] : self._offsets[j + 1]]
            )
        return StreamedCounts(
            schema=self._schema,
            by_cluster=by_cluster,
            sizes=self._sizes,
            n_rows=self._n,
            fingerprint=fingerprint,
            signature=signature,
        )


class StreamedCounts:
    """Exact counts materialised by :class:`StreamingCountsBuilder`.

    Serves the full :class:`CountsProvider` interface (plus the vectorised
    ``totals_vector``/``sizes_matrix`` fast paths and the cached
    ``by_cluster_stack``) from the fused histogram alone — no dataset, no
    label array.  ``fingerprint()``/``signature()`` reproduce the values the
    equivalent in-RAM ``Dataset``/``ClusteredCounts`` would report, so the
    service's cache and ledger keys are source-agnostic.
    """

    def __init__(
        self,
        schema: Schema,
        by_cluster: Mapping[str, np.ndarray],
        sizes: np.ndarray,
        n_rows: int,
        fingerprint: str,
        signature: str,
    ):
        self._schema = schema
        self._by_cluster = dict(by_cluster)
        self._full: dict[str, np.ndarray] = {}
        self._sizes = np.asarray(sizes, dtype=np.int64)
        self._n = int(n_rows)
        self._fingerprint = fingerprint
        self._signature = signature
        self._stack = None

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def names(self) -> tuple[str, ...]:
        return self._schema.names

    @property
    def n_clusters(self) -> int:
        return int(self._sizes.shape[0])

    @property
    def n(self) -> int:
        return self._n

    def domain_size(self, name: str) -> int:
        return self._schema.attribute(name).domain_size

    def sizes(self) -> np.ndarray:
        return self._sizes.copy()

    def fingerprint(self) -> str:
        return self._fingerprint

    def signature(self) -> str:
        return self._signature

    def materialise(self) -> None:
        """No-op: streamed counts are materialised by construction."""

    def by_cluster(self, name: str) -> np.ndarray:
        return self._by_cluster[name]

    def full(self, name: str) -> np.ndarray:
        cached = self._full.get(name)
        if cached is None:
            cached = self._by_cluster[name].sum(axis=0)
            self._full[name] = cached
        return cached

    def cluster(self, name: str, c: int) -> np.ndarray:
        return self._by_cluster[name][c]

    def total(self, name: str) -> float:
        return float(self._n)

    def cluster_size(self, name: str, c: int) -> float:
        return float(self._sizes[c])

    def totals_vector(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`total` over many attributes (stack fast path)."""
        return np.full(len(names), float(self._n), dtype=np.float64)

    def sizes_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`cluster_size`: the ``(|names|, |C|)`` matrix."""
        return np.broadcast_to(
            self._sizes.astype(np.float64), (len(names), self.n_clusters)
        ).copy()

    def by_cluster_stack(self):
        """Lazily-built dense stack feeding the batched scoring engine."""
        if self._stack is None:
            from .engine.stacks import CountsStack

            self._stack = CountsStack.from_provider(self)
        return self._stack


def materialise_stream(
    schema: Schema,
    chunks: Iterable[tuple[Mapping[str, np.ndarray], np.ndarray]],
    n_clusters: int,
) -> StreamedCounts:
    """One-call streaming materialisation from any chunk iterator.

    ``chunks`` yields ``(columns mapping, labels)`` pairs — e.g. the output
    of :meth:`~repro.experiments.scale.ChunkedPlantedSource.chunks` or a
    reader over memory-mapped column files — and the result is the exact
    :class:`StreamedCounts` over their concatenation, built in bounded
    memory.
    """
    builder = StreamingCountsBuilder(schema, n_clusters)
    for columns, labels in chunks:
        builder.add_chunk(columns, labels)
    return builder.finalise()


class NoisyCounts:
    """Counts served from released noisy histograms (post-processing only).

    ``full_hists[name]`` is the noisy full-data histogram; ``cluster_hists``
    maps a name to the ``(n_clusters, m)`` noisy per-cluster matrix.  Totals
    and cluster sizes are the corresponding noisy sums, clamped to a minimum
    of 1 to keep the quality formulas finite.
    """

    def __init__(
        self,
        names: Sequence[str],
        full_hists: Mapping[str, np.ndarray],
        cluster_hists: Mapping[str, np.ndarray],
        n_clusters: int,
    ):
        self._names = tuple(names)
        self._n_clusters = int(n_clusters)
        self._full = {n: np.asarray(full_hists[n], dtype=np.float64) for n in names}
        self._clusters = {
            n: np.asarray(cluster_hists[n], dtype=np.float64) for n in names
        }
        for n in names:
            mat = self._clusters[n]
            if mat.shape != (self._n_clusters, self._full[n].shape[0]):
                raise ValueError(f"shape mismatch for attribute {n!r}")
        self._stack = None

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def n_clusters(self) -> int:
        return self._n_clusters

    def domain_size(self, name: str) -> int:
        return int(self._full[name].shape[0])

    def full(self, name: str) -> np.ndarray:
        return self._full[name]

    def cluster(self, name: str, c: int) -> np.ndarray:
        return self._clusters[name][c]

    def by_cluster(self, name: str) -> np.ndarray:
        return self._clusters[name]

    def total(self, name: str) -> float:
        return max(float(self._full[name].sum()), 1.0)

    def cluster_size(self, name: str, c: int) -> float:
        # Clamped to 1 like ``total`` (the documented contract): a noisy
        # all-zero cluster release must not zero-divide downstream quality
        # formulas such as the normalised sufficiency.
        return max(float(self._clusters[name][c].sum()), 1.0)

    def totals_vector(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`total` over many attributes (stack fast path)."""
        return np.array(
            [max(float(self._full[n].sum()), 1.0) for n in names],
            dtype=np.float64,
        )

    def sizes_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`cluster_size`: one axis-sum per attribute."""
        return np.stack(
            [np.maximum(self._clusters[n].sum(axis=1), 1.0) for n in names]
        )

    def by_cluster_stack(self):
        """Lazily-built dense stack feeding the batched scoring engine."""
        if self._stack is None:
            from .engine.stacks import CountsStack

            self._stack = CountsStack.from_provider(self)
        return self._stack
