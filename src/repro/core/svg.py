"""Dependency-free SVG rendering of histogram explanations (Figure 2a style).

Produces the paper's paired-bar visualisation — blue bars for the cluster,
red for the rest — as standalone SVG text.  Pure post-processing of released
histograms; no plotting libraries required.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

import numpy as np

from .hbe import GlobalExplanation, SingleClusterExplanation

CLUSTER_COLOR = "#4C72B0"  # blue, as in Figure 2a
REST_COLOR = "#C44E52"  # red


def _bar(x: float, y: float, w: float, h: float, color: str, title: str) -> str:
    return (
        f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
        f'fill="{color}"><title>{escape(title)}</title></rect>'
    )


def render_svg(
    explanation: SingleClusterExplanation,
    width: int = 640,
    height: int = 360,
    cluster_name: str | None = None,
) -> str:
    """Render one paired histogram as an SVG document string."""
    if width < 100 or height < 80:
        raise ValueError("canvas too small")
    rest, cluster = explanation.normalized()
    domain = explanation.attribute.domain
    m = len(domain)
    label = cluster_name or f"Cluster {explanation.cluster + 1}"

    margin_l, margin_r, margin_t, margin_b = 48, 12, 34, 84
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    peak = max(float(cluster.max(initial=0.0)), float(rest.max(initial=0.0)), 1e-9)
    group_w = plot_w / m
    bar_w = group_w * 0.38

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">'
        f"{escape(repr(explanation.attribute.name))} — {escape(label)} vs Rest</text>",
    ]
    # y axis: 0..peak as frequency (%)
    for frac in (0.0, 0.5, 1.0):
        y = margin_t + plot_h * (1 - frac)
        value = 100.0 * peak * frac
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{width - margin_r}" '
            f'y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{value:.0f}%</text>'
        )
    for i, value in enumerate(domain):
        gx = margin_l + i * group_w
        h_c = plot_h * float(cluster[i]) / peak
        h_r = plot_h * float(rest[i]) / peak
        parts.append(
            _bar(
                gx + group_w * 0.08,
                margin_t + plot_h - h_c,
                bar_w,
                h_c,
                CLUSTER_COLOR,
                f"{label} {value}: {100 * cluster[i]:.1f}%",
            )
        )
        parts.append(
            _bar(
                gx + group_w * 0.54,
                margin_t + plot_h - h_r,
                bar_w,
                h_r,
                REST_COLOR,
                f"Rest {value}: {100 * rest[i]:.1f}%",
            )
        )
        parts.append(
            f'<text x="{gx + group_w / 2:.1f}" y="{margin_t + plot_h + 12:.0f}" '
            f'text-anchor="end" font-family="sans-serif" font-size="9" '
            f'transform="rotate(-40 {gx + group_w / 2:.1f} '
            f'{margin_t + plot_h + 12:.0f})">{escape(value)}</text>'
        )
    # legend
    ly = height - 18
    parts.append(f'<rect x="{margin_l}" y="{ly - 9}" width="10" height="10" fill="{CLUSTER_COLOR}"/>')
    parts.append(
        f'<text x="{margin_l + 14}" y="{ly}" font-family="sans-serif" '
        f'font-size="11">{escape(label)}</text>'
    )
    parts.append(f'<rect x="{margin_l + 110}" y="{ly - 9}" width="10" height="10" fill="{REST_COLOR}"/>')
    parts.append(
        f'<text x="{margin_l + 124}" y="{ly}" font-family="sans-serif" '
        f'font-size="11">Rest</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def render_global_svg(
    explanation: GlobalExplanation, width: int = 640, height: int = 360
) -> str:
    """Stack all per-cluster panels into one vertical SVG document."""
    panels = [
        render_svg(e, width, height) for e in explanation.per_cluster
    ]
    total_h = height * len(panels)
    inner = []
    for i, panel in enumerate(panels):
        body = panel.split(">", 1)[1].rsplit("</svg>", 1)[0]
        inner.append(f'<g transform="translate(0 {i * height})">{body}</g>')
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{total_h}" viewBox="0 0 {width} {total_h}">'
        + "".join(inner)
        + "</svg>"
    )


def save_svg(
    explanation: "GlobalExplanation | SingleClusterExplanation", path: str
) -> None:
    """Write an explanation's SVG rendering to ``path``."""
    if isinstance(explanation, GlobalExplanation):
        text = render_global_svg(explanation)
    else:
        text = render_svg(explanation)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
