"""Relational schema with discrete, finite, data-independent attribute domains.

The paper (Section 2) models data as a single-table relation
``R(A_1, ..., A_d)`` where every attribute ``A_i`` has a discrete, finite and
*data-independent* domain ``dom(A_i)``.  This module implements that model:
an :class:`Attribute` is a named, ordered, finite domain of values, and a
:class:`Schema` is an ordered collection of attributes.

Values are stored in :class:`~repro.dataset.table.Dataset` columns as integer
*codes* (indices into the attribute's domain), which makes histogram
computation a ``numpy.bincount`` and keeps the whole pipeline vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


class SchemaError(ValueError):
    """Raised for malformed schemas or values outside an attribute domain."""


@dataclass(frozen=True)
class Attribute:
    """A named attribute with a finite, ordered domain of values.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    domain:
        The ordered tuple of admissible values.  Order matters for display
        (histograms are rendered in domain order) but not for semantics.
    """

    name: str
    domain: tuple[str, ...]
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if len(self.domain) == 0:
            raise SchemaError(f"attribute {self.name!r} must have a non-empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise SchemaError(f"attribute {self.name!r} has duplicate domain values")
        object.__setattr__(self, "_index", {v: i for i, v in enumerate(self.domain)})

    @property
    def domain_size(self) -> int:
        """Number of values in ``dom(A)``."""
        return len(self.domain)

    def code_of(self, value: str) -> int:
        """Return the integer code of ``value``; raise if outside the domain."""
        try:
            return self._index[value]
        except KeyError:
            raise SchemaError(
                f"value {value!r} is not in dom({self.name}) "
                f"(domain size {self.domain_size})"
            ) from None

    def value_of(self, code: int) -> str:
        """Return the domain value for an integer ``code``."""
        if not 0 <= code < self.domain_size:
            raise SchemaError(f"code {code} out of range for attribute {self.name!r}")
        return self.domain[code]

    def __len__(self) -> int:
        return self.domain_size


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Attribute` with unique names."""

    attributes: tuple[Attribute, ...]
    _by_name: Mapping[str, Attribute] = field(
        init=False, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError("schema attribute names must be unique")
        object.__setattr__(self, "_by_name", {a.name: a for a in self.attributes})

    @classmethod
    def from_domains(cls, domains: Mapping[str, Sequence[str]]) -> "Schema":
        """Build a schema from a ``{name: domain}`` mapping (insertion order)."""
        return cls(tuple(Attribute(n, tuple(d)) for n, d in domains.items()))

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(a.name for a in self.attributes)

    @property
    def width(self) -> int:
        """Number of attributes ``d``."""
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look an attribute up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r} in schema") from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return self.width

    def domain_sizes(self) -> dict[str, int]:
        """Return ``{name: |dom(A)|}`` for every attribute."""
        return {a.name: a.domain_size for a in self.attributes}

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a new schema restricted to ``names`` (kept in given order)."""
        return Schema(tuple(self.attribute(n) for n in names))

    def with_attributes(self, extra: Iterable[Attribute]) -> "Schema":
        """Return a new schema with ``extra`` attributes appended."""
        return Schema(self.attributes + tuple(extra))


def binned_domain(
    edges: Sequence[float], *, closed_last: bool = False, fmt: str = "g"
) -> tuple[str, ...]:
    """Render interval labels ``[e0, e1), [e1, e2), ...`` for binned numeric attributes.

    The paper bins numeric attributes into interval-labelled categorical
    domains (e.g. ``lab_proc`` in Figure 2a).  ``edges`` are the ``m + 1``
    boundaries of ``m`` bins; the final bin is ``[e_{m-1}, inf)`` unless
    ``closed_last`` is set, in which case it is ``[e_{m-1}, e_m)``.
    """
    if len(edges) < 2:
        raise SchemaError("need at least two edges to form a bin")
    labels = []
    for lo, hi in zip(edges[:-2], edges[1:-1]):
        labels.append(f"[{lo:{fmt}}, {hi:{fmt}})")
    if closed_last:
        labels.append(f"[{edges[-2]:{fmt}}, {edges[-1]:{fmt}})")
    else:
        labels.append(f"[{edges[-2]:{fmt}}, inf)")
    return tuple(labels)
