"""CSV on-ramp: load real tabular files into the finite-domain data model.

The paper's pipeline assumes attributes with discrete, finite,
data-independent domains (Section 2), produced by binning numeric columns
and mapping large categorical domains to broader categories (Appendix C).
``load_csv`` automates that preprocessing for arbitrary CSV files:

* numeric columns (every non-missing value parses as a float) are binned
  into ``numeric_bins`` quantile intervals;
* categorical columns keep their distinct values, capped at
  ``max_categories`` with the tail collapsed into ``OTHER_LABEL`` —
  mirroring Appendix C's treatment of `medical_specialty` etc.;
* missing entries map to ``MISSING_LABEL`` (its own domain value, so the
  histograms expose missingness rather than silently dropping rows).

Caveat: inferring domains from the data makes them *data-dependent*; for a
strict DP deployment the schema (bin edges, category lists) must be fixed
from public knowledge or a separate budget.  ``load_csv`` is the convenience
path for experimentation; ``load_csv_with_schema`` is the deployment path,
coding a file against a pre-agreed public schema.
"""

from __future__ import annotations

import csv
from typing import Iterable, Sequence

import numpy as np

from .binning import quantile_edges
from .schema import Attribute, Schema, SchemaError, binned_domain
from .table import Dataset

MISSING_LABEL = "<missing>"
OTHER_LABEL = "<other>"
_MISSING_TOKENS = {"", "na", "n/a", "nan", "null", "?", "none"}


def _is_missing(token: str) -> bool:
    return token.strip().lower() in _MISSING_TOKENS


def _try_float(token: str) -> float | None:
    try:
        return float(token)
    except ValueError:
        return None


def read_rows(path: str, delimiter: str = ",") -> tuple[list[str], list[list[str]]]:
    """Read a headered CSV into (column names, raw string rows)."""
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path!r} is empty") from None
        rows = [row for row in reader if row]
    if len(set(header)) != len(header):
        raise SchemaError("duplicate column names in CSV header")
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise SchemaError(f"row {i + 2} has {len(row)} fields, expected {len(header)}")
    return header, rows


def _infer_numeric(values: list[str]) -> "list[float | None] | None":
    """Floats per entry (None for missing) if the column is numeric, else None."""
    out: list[float | None] = []
    seen_number = False
    for v in values:
        if _is_missing(v):
            out.append(None)
            continue
        f = _try_float(v)
        if f is None:
            return None
        seen_number = True
        out.append(f)
    return out if seen_number else None


def _encode_numeric(
    name: str, floats: "list[float | None]", numeric_bins: int
) -> tuple[Attribute, np.ndarray]:
    present = np.array([f for f in floats if f is not None], dtype=float)
    edges = quantile_edges(present, numeric_bins)
    domain = binned_domain(edges, closed_last=True, fmt="g")
    has_missing = any(f is None for f in floats)
    if has_missing:
        domain = domain + (MISSING_LABEL,)
    attr = Attribute(name, domain)
    interior = np.asarray(edges[1:-1], dtype=float)
    codes = np.empty(len(floats), dtype=np.int64)
    n_bins = len(edges) - 1
    for i, f in enumerate(floats):
        if f is None:
            codes[i] = n_bins  # the missing bin
        else:
            codes[i] = min(int(np.searchsorted(interior, f, side="right")), n_bins - 1)
    return attr, codes


def _encode_categorical(
    name: str, values: list[str], max_categories: int
) -> tuple[Attribute, np.ndarray]:
    cleaned = [MISSING_LABEL if _is_missing(v) else v.strip() for v in values]
    counts: dict[str, int] = {}
    for v in cleaned:
        counts[v] = counts.get(v, 0) + 1
    ordered = sorted(counts, key=lambda v: (-counts[v], v))
    if len(ordered) > max_categories:
        kept = [v for v in ordered[: max_categories - 1] if v != OTHER_LABEL]
        domain = tuple(kept) + (OTHER_LABEL,)
        lookup = {v: i for i, v in enumerate(kept)}
        other = len(kept)
        codes = np.array([lookup.get(v, other) for v in cleaned], dtype=np.int64)
    else:
        domain = tuple(ordered)
        lookup = {v: i for i, v in enumerate(domain)}
        codes = np.array([lookup[v] for v in cleaned], dtype=np.int64)
    return Attribute(name, domain), codes


def load_csv(
    path: str,
    numeric_bins: int = 8,
    max_categories: int = 30,
    delimiter: str = ",",
    exclude: Iterable[str] = (),
) -> Dataset:
    """Load a CSV file, inferring a finite-domain schema (see module docs)."""
    if numeric_bins < 1:
        raise SchemaError("numeric_bins must be >= 1")
    if max_categories < 2:
        raise SchemaError("max_categories must be >= 2")
    header, rows = read_rows(path, delimiter)
    excluded = set(exclude)
    attrs: list[Attribute] = []
    cols: dict[str, np.ndarray] = {}
    for j, name in enumerate(header):
        if name in excluded:
            continue
        values = [row[j] for row in rows]
        floats = _infer_numeric(values)
        if floats is not None:
            attr, codes = _encode_numeric(name, floats, numeric_bins)
        else:
            attr, codes = _encode_categorical(name, values, max_categories)
        attrs.append(attr)
        cols[name] = codes
    if not attrs:
        raise SchemaError("no usable columns in CSV")
    return Dataset(Schema(tuple(attrs)), cols)


def load_csv_with_schema(
    path: str, schema: Schema, delimiter: str = ","
) -> Dataset:
    """Code a CSV against a pre-agreed *public* schema (the strict-DP path).

    Every value must be a member of its attribute's domain; missing tokens
    map to ``MISSING_LABEL`` if the domain declares it, and unknown values
    map to ``OTHER_LABEL`` if declared — otherwise loading fails loudly.
    """
    header, rows = read_rows(path, delimiter)
    positions = {}
    for attr in schema:
        if attr.name not in header:
            raise SchemaError(f"CSV is missing schema attribute {attr.name!r}")
        positions[attr.name] = header.index(attr.name)
    cols: dict[str, np.ndarray] = {}
    for attr in schema:
        j = positions[attr.name]
        codes = np.empty(len(rows), dtype=np.int64)
        has_missing = MISSING_LABEL in attr.domain
        has_other = OTHER_LABEL in attr.domain
        for i, row in enumerate(rows):
            token = row[j].strip()
            if _is_missing(token) and has_missing:
                codes[i] = attr.code_of(MISSING_LABEL)
            elif token in attr._index:  # noqa: SLF001 - hot loop, public-equivalent
                codes[i] = attr.code_of(token)
            elif has_other:
                codes[i] = attr.code_of(OTHER_LABEL)
            else:
                raise SchemaError(
                    f"value {token!r} not in dom({attr.name}) and no "
                    f"{OTHER_LABEL!r} bucket declared"
                )
        cols[attr.name] = codes
    return Dataset(schema, cols)


def save_csv(dataset: Dataset, path: str, delimiter: str = ",") -> None:
    """Write a dataset back to CSV with decoded domain values."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(dataset.schema.names)
        for i in range(len(dataset)):
            writer.writerow(dataset.row(i))
