"""Tabular substrate: schemas with finite domains and coded columnar datasets."""

from .schema import Attribute, Schema, SchemaError, binned_domain
from .table import Dataset
from .binning import bin_numeric, categorize, equal_width_edges, quantile_edges

__all__ = [
    "Attribute",
    "Schema",
    "SchemaError",
    "binned_domain",
    "Dataset",
    "bin_numeric",
    "categorize",
    "equal_width_edges",
    "quantile_edges",
]
