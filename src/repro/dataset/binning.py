"""Discretization of numeric columns into interval-labelled finite domains.

The paper requires every attribute to have a *discrete, finite,
data-independent* domain; numeric and large-domain categorical attributes are
binned "to ensure interpretable histograms" (Section 6.1, Appendix C).  These
helpers turn raw numeric arrays into coded columns over interval domains and
are used by the synthetic data generators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .schema import Attribute, SchemaError, binned_domain


def bin_numeric(
    values: np.ndarray,
    edges: Sequence[float],
    name: str,
    *,
    closed_last: bool = False,
    fmt: str = "g",
) -> tuple[Attribute, np.ndarray]:
    """Bin ``values`` by ``edges`` and return ``(attribute, codes)``.

    ``edges`` must be strictly increasing.  Values below ``edges[0]`` clamp to
    the first bin; values at or above the last finite edge go to the last bin
    (which is ``[e, inf)`` when ``closed_last`` is false).
    """
    edges = list(edges)
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise SchemaError("bin edges must be strictly increasing")
    domain = binned_domain(edges, closed_last=closed_last, fmt=fmt)
    attr = Attribute(name, domain)
    interior = np.asarray(edges[1:-1] if closed_last else edges[1:-1], dtype=float)
    codes = np.searchsorted(interior, np.asarray(values, dtype=float), side="right")
    codes = np.clip(codes, 0, len(domain) - 1)
    return attr, codes.astype(np.int64)


def equal_width_edges(lo: float, hi: float, bins: int) -> list[float]:
    """``bins + 1`` equally spaced edges on ``[lo, hi]``."""
    if bins < 1:
        raise SchemaError("need at least one bin")
    if hi <= lo:
        raise SchemaError("hi must exceed lo")
    return list(np.linspace(lo, hi, bins + 1))


def quantile_edges(values: np.ndarray, bins: int) -> list[float]:
    """Approximately equal-mass edges; duplicates collapsed."""
    if bins < 1:
        raise SchemaError("need at least one bin")
    qs = np.quantile(np.asarray(values, dtype=float), np.linspace(0, 1, bins + 1))
    edges = [float(qs[0])]
    for q in qs[1:]:
        if q > edges[-1]:
            edges.append(float(q))
    if len(edges) < 2:
        edges.append(edges[0] + 1.0)
    return edges


def categorize(
    values: Sequence[str], name: str, *, domain: Sequence[str] | None = None
) -> tuple[Attribute, np.ndarray]:
    """Code a raw categorical column, inferring the domain if not given."""
    if domain is None:
        seen: dict[str, None] = {}
        for v in values:
            seen.setdefault(v, None)
        domain = tuple(seen)
    attr = Attribute(name, tuple(domain))
    codes = np.asarray([attr.code_of(v) for v in values], dtype=np.int64)
    return attr, codes
