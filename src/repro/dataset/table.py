"""Columnar, integer-coded implementation of the paper's dataset model.

A dataset ``D`` is a bag (multiset) of tuples over ``dom(A_1) x ... x dom(A_d)``
(Section 2).  We store it column-wise: one ``numpy`` integer array of domain
codes per attribute.  This gives:

* ``pi_A(D)`` — projection — as a single array lookup,
* ``h_A(D)`` — the histogram of counts over ``dom(A)`` — as ``np.bincount``,
* cluster-restricted histograms as boolean-mask bincounts,
* and the add/remove-one-tuple operations that define *neighboring datasets*
  (Definition 2.5), which the test-suite uses to verify sensitivity bounds.
"""

from __future__ import annotations

import hashlib

from typing import Iterable, Mapping, Sequence

import numpy as np

from .schema import Attribute, Schema, SchemaError

CODE_DTYPE = np.int64


def chunk_spans(n_rows: int, chunk_rows: int) -> "Iterable[slice]":
    """Fixed-size row spans covering ``[0, n_rows)`` (last one may be short).

    The canonical chunk grid shared by every streaming consumer: the chunked
    ``materialise`` path, the streaming fingerprint, and the large-``n``
    synthetic generators all walk the same spans, so their per-chunk work
    lines up without any coordination.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    for start in range(0, n_rows, chunk_rows):
        yield slice(start, min(start + chunk_rows, n_rows))


def _update_str(h, s: str) -> None:
    """Length-prefixed string update (no in-band separator can be forged)."""
    b = s.encode("utf-8")
    h.update(len(b).to_bytes(8, "big"))
    h.update(b)


def schema_digest_update(h, schema: Schema) -> None:
    """Feed a schema's identity (names + full ordered domains) into ``h``."""
    h.update(len(schema).to_bytes(8, "big"))
    for attr in schema:
        _update_str(h, attr.name)
        h.update(len(attr.domain).to_bytes(8, "big"))
        for value in attr.domain:
            _update_str(h, value)


class FingerprintAccumulator:
    """Streaming computation of :meth:`Dataset.fingerprint`.

    Feed row chunks (as ``{name: code array}`` mappings) in order with
    :meth:`update`; :meth:`hexdigest` then equals the fingerprint of the
    ``Dataset`` holding the concatenation of those chunks.  One SHA-256
    hasher per column absorbs that column's code bytes chunk by chunk —
    column bytes concatenate across chunks, so the per-column digests (and
    therefore the combined hash) are independent of the chunking.
    """

    def __init__(self, schema: Schema):
        self._schema = schema
        self._n = 0
        self._hashers = {n: hashlib.sha256() for n in schema.names}

    @property
    def n_rows(self) -> int:
        return self._n

    def update(self, columns: Mapping[str, np.ndarray]) -> int:
        """Absorb one row chunk; returns the chunk's row count."""
        lengths = set()
        for name in self._schema.names:
            col = np.ascontiguousarray(columns[name], dtype=CODE_DTYPE)
            lengths.add(col.shape[0])
            self._hashers[name].update(col.tobytes())
        if len(lengths) != 1:
            raise SchemaError(f"ragged chunk columns: lengths {sorted(lengths)}")
        k = lengths.pop()
        self._n += k
        return k

    def hexdigest(self) -> str:
        h = hashlib.sha256()
        schema_digest_update(h, self._schema)
        h.update(f"n={self._n}".encode("ascii"))
        for name in self._schema.names:
            h.update(self._hashers[name].digest())
        return h.hexdigest()


class Dataset:
    """A bag of tuples over a :class:`~repro.dataset.schema.Schema`.

    Parameters
    ----------
    schema:
        The relation schema.
    columns:
        ``{attribute name: int array of domain codes}``; every column must
        have the same length and codes within the attribute's domain.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        self._schema = schema
        if set(columns) != set(schema.names):
            missing = set(schema.names) - set(columns)
            extra = set(columns) - set(schema.names)
            raise SchemaError(
                f"columns do not match schema (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        lengths = {len(columns[n]) for n in schema.names}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        self._n = lengths.pop() if lengths else 0
        self._columns: dict[str, np.ndarray] = {}
        for attr in schema:
            col = np.asarray(columns[attr.name], dtype=CODE_DTYPE)
            if col.ndim != 1:
                raise SchemaError(f"column {attr.name!r} must be one-dimensional")
            if col.size and (col.min() < 0 or col.max() >= attr.domain_size):
                raise SchemaError(
                    f"column {attr.name!r} contains codes outside "
                    f"[0, {attr.domain_size})"
                )
            self._columns[attr.name] = col
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[str]]) -> "Dataset":
        """Build a dataset from value tuples in schema attribute order."""
        rows = list(rows)
        cols: dict[str, list[int]] = {n: [] for n in schema.names}
        for row in rows:
            if len(row) != schema.width:
                raise SchemaError(
                    f"row arity {len(row)} does not match schema width {schema.width}"
                )
            for attr, value in zip(schema, row):
                cols[attr.name].append(attr.code_of(value))
        return cls(schema, {n: np.asarray(v, dtype=CODE_DTYPE) for n, v in cols.items()})

    @classmethod
    def empty(cls, schema: Schema) -> "Dataset":
        """An empty bag over ``schema``."""
        zero = {n: np.empty(0, dtype=CODE_DTYPE) for n in schema.names}
        return cls(schema, zero)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        """``|D|`` — number of tuples."""
        return self._n

    def column(self, name: str) -> np.ndarray:
        """``pi_A(D)`` as a read-only code array."""
        col = self._columns[name]
        view = col.view()
        view.flags.writeable = False
        return view

    def fingerprint(self) -> str:
        """Stable content hash over schema *and* data (hex SHA-256).

        Covers attribute names, the full ordered domains (so re-binned or
        re-labelled schemas — whose bin edges are encoded in the interval
        domain labels — hash differently) and a per-column SHA-256 digest of
        every column's code bytes (strings are length-prefixed so no in-band
        separator can be forged by a domain value containing it).  Two
        datasets fingerprint equally iff they hold the same tuples in the
        same order over the same schema; the explanation service uses this
        as the dataset half of its cache / ledger keys.  Computed once and
        cached — datasets are immutable by contract (every mutation helper
        returns a new object).

        The per-column sub-digest layout makes the hash computable in one
        streaming pass over row chunks (:class:`FingerprintAccumulator`):
        column bytes concatenate across chunks, so a chunked build of the
        same rows — including one that never holds the full table — yields
        the identical fingerprint.
        """
        if self._fingerprint is None:
            acc = FingerprintAccumulator(self._schema)
            if self._n:
                acc.update(self._columns)
            self._fingerprint = acc.hexdigest()
        return self._fingerprint

    def iter_chunks(self, chunk_rows: int) -> "Iterable[tuple[slice, dict[str, np.ndarray]]]":
        """Walk the dataset in fixed-size row chunks (zero-copy views).

        Yields ``(span, {name: codes[span]})`` pairs covering all rows in
        order.  The column slices are read-only views, so iterating a
        memory-mapped dataset touches only ``chunk_rows`` rows' worth of
        pages at a time — the adapter between column sources (in-RAM arrays
        or ``np.memmap``-backed columns, both accepted by the constructor)
        and the streaming consumers (:class:`FingerprintAccumulator`,
        ``ClusteredCounts.materialise``, ``StreamingCountsBuilder``).
        """
        for span in chunk_spans(self._n, chunk_rows):
            yield span, {n: self.column(n)[span] for n in self._schema.names}

    def row(self, i: int) -> tuple[str, ...]:
        """The ``i``-th tuple, decoded to domain values."""
        return tuple(
            attr.value_of(int(self._columns[attr.name][i])) for attr in self._schema
        )

    def row_codes(self, i: int) -> tuple[int, ...]:
        """The ``i``-th tuple as raw codes in schema order."""
        return tuple(int(self._columns[n][i]) for n in self._schema.names)

    # ------------------------------------------------------------------ #
    # histograms & projections
    # ------------------------------------------------------------------ #

    def histogram(self, name: str, mask: np.ndarray | None = None) -> np.ndarray:
        """``h_A(D)`` (or ``h_A(D[mask])``) — counts over ``dom(A)``.

        The returned vector has length ``|dom(A)|`` and its ``a``-th entry is
        ``cnt_{A=a}``; its L1 norm equals the number of selected tuples
        (Corollary A.1's histogram-vector view).
        """
        attr = self._schema.attribute(name)
        codes = self._columns[name]
        if mask is not None:
            codes = codes[mask]
        return np.bincount(codes, minlength=attr.domain_size).astype(np.int64)

    def count(self, name: str, value: str) -> int:
        """``cnt_{A=a}(D)`` for a decoded value."""
        attr = self._schema.attribute(name)
        return int(np.count_nonzero(self._columns[name] == attr.code_of(value)))

    def active_domain(self, name: str) -> tuple[str, ...]:
        """``dom_D(A)`` — values occurring at least once in ``pi_A(D)``."""
        attr = self._schema.attribute(name)
        present = np.flatnonzero(self.histogram(name) > 0)
        return tuple(attr.domain[i] for i in present)

    # ------------------------------------------------------------------ #
    # bag operations (neighboring datasets, subsets)
    # ------------------------------------------------------------------ #

    def subset(self, mask: np.ndarray) -> "Dataset":
        """Return the sub-bag selected by a boolean mask or index array."""
        return Dataset(
            self._schema, {n: self._columns[n][mask] for n in self._schema.names}
        )

    def sample(self, fraction: float, rng: np.random.Generator) -> "Dataset":
        """Uniformly sample ``round(fraction * |D|)`` tuples without replacement."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        m = int(round(fraction * self._n))
        idx = rng.choice(self._n, size=m, replace=False)
        return self.subset(np.sort(idx))

    def with_tuple(self, row_codes: Sequence[int]) -> "Dataset":
        """``D ∪ {t}`` — the neighboring dataset with one tuple added."""
        if len(row_codes) != self._schema.width:
            raise SchemaError("tuple arity does not match schema")
        cols = {}
        for attr, code in zip(self._schema, row_codes):
            if not 0 <= code < attr.domain_size:
                raise SchemaError(f"code {code} outside dom({attr.name})")
            cols[attr.name] = np.append(self._columns[attr.name], CODE_DTYPE(code))
        return Dataset(self._schema, cols)

    def without_index(self, i: int) -> "Dataset":
        """``D \\ {t_i}`` — the neighboring dataset with tuple ``i`` removed."""
        if not 0 <= i < self._n:
            raise IndexError(f"row {i} out of range")
        keep = np.ones(self._n, dtype=bool)
        keep[i] = False
        return self.subset(keep)

    def concat(self, other: "Dataset") -> "Dataset":
        """Bag union of two datasets over the same schema."""
        if other._schema != self._schema:
            raise SchemaError("cannot concat datasets with different schemas")
        cols = {
            n: np.concatenate([self._columns[n], other._columns[n]])
            for n in self._schema.names
        }
        return Dataset(self._schema, cols)

    # ------------------------------------------------------------------ #
    # schema surgery
    # ------------------------------------------------------------------ #

    def project(self, names: Iterable[str]) -> "Dataset":
        """Restrict to the given attributes (relational projection, bag kept)."""
        names = list(names)
        return Dataset(
            self._schema.project(names), {n: self._columns[n] for n in names}
        )

    def with_column(self, attribute: Attribute, codes: np.ndarray) -> "Dataset":
        """Append a new attribute column (used for correlation injection)."""
        if attribute.name in self._schema:
            raise SchemaError(f"attribute {attribute.name!r} already exists")
        if len(codes) != self._n:
            raise SchemaError("new column length does not match dataset size")
        schema = self._schema.with_attributes([attribute])
        cols = dict(self._columns)
        cols[attribute.name] = np.asarray(codes, dtype=CODE_DTYPE)
        return Dataset(schema, cols)

    # ------------------------------------------------------------------ #
    # numeric encoding for clustering substrates
    # ------------------------------------------------------------------ #

    def to_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Encode tuples as a float matrix of domain codes (n x d).

        This mirrors the paper's preprocessing for clustering: "categorical
        attributes are transformed into equivalent numerical data by mapping
        each domain value to a unique integer" (Section 6.1).
        """
        names = list(names) if names is not None else list(self._schema.names)
        if not names:
            return np.empty((self._n, 0), dtype=np.float64)
        return np.stack(
            [self._columns[n].astype(np.float64) for n in names], axis=1
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset(n={self._n}, d={self._schema.width})"
