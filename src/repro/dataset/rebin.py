"""Re-binning released or raw domains — the paper's future work #3.

Section 8: "it would be intriguing to examine the impact of different
discretization and binning approaches on the performance of our system."
These helpers coarsen attribute domains by merging adjacent bins, enabling
that ablation: re-bin the dataset at several granularities and compare the
selected attributes' quality (see ``benchmarks/bench_binning.py``).

Merging is a pure function of the (public, data-independent) domain, so
re-binning a dataset costs no privacy; merging the bins of an already
*released* histogram is post-processing.
"""

from __future__ import annotations

import re

import numpy as np

from .schema import Attribute, SchemaError
from .table import Dataset

_INTERVAL = re.compile(r"^\[\s*(?P<lo>[^,]+),\s*(?P<hi>[^)\]]+)(?P<close>[)\]])$")


def _merge_labels(labels: "tuple[str, ...]") -> str:
    """Human-readable label for merged bins; interval labels stay intervals."""
    first = _INTERVAL.match(labels[0])
    last = _INTERVAL.match(labels[-1])
    if first and last:
        return f"[{first.group('lo')}, {last.group('hi')}{last.group('close')}"
    return " + ".join(labels)


def merge_adjacent_bins(attribute: Attribute, factor: int) -> Attribute:
    """A coarsened attribute whose bins group ``factor`` adjacent values."""
    if factor < 1:
        raise SchemaError("factor must be >= 1")
    if factor == 1:
        return attribute
    domain = attribute.domain
    merged = tuple(
        _merge_labels(domain[i : i + factor]) for i in range(0, len(domain), factor)
    )
    if len(set(merged)) != len(merged):  # pathological labels; disambiguate
        merged = tuple(f"{label} #{i}" for i, label in enumerate(merged))
    return Attribute(attribute.name, merged)


def rebin_column(codes: np.ndarray, factor: int) -> np.ndarray:
    """Codes under the coarsened domain: integer division by ``factor``."""
    if factor < 1:
        raise SchemaError("factor must be >= 1")
    return np.asarray(codes, dtype=np.int64) // factor


def rebin_dataset(
    dataset: Dataset,
    factor: int,
    names: "list[str] | None" = None,
    min_domain: int = 2,
) -> Dataset:
    """Coarsen selected attributes of a dataset by ``factor``.

    Attributes whose coarsened domain would drop below ``min_domain`` values
    are left untouched (a one-bin histogram explains nothing).
    """
    names = list(names) if names is not None else list(dataset.schema.names)
    new_attrs = []
    new_cols = {}
    for attr in dataset.schema:
        if attr.name in names and -(-attr.domain_size // factor) >= min_domain:
            new_attrs.append(merge_adjacent_bins(attr, factor))
            new_cols[attr.name] = rebin_column(dataset.column(attr.name), factor)
        else:
            new_attrs.append(attr)
            new_cols[attr.name] = np.asarray(dataset.column(attr.name))
    from .schema import Schema

    return Dataset(Schema(tuple(new_attrs)), new_cols)


def rebin_histogram(hist: np.ndarray, factor: int) -> np.ndarray:
    """Merge adjacent bins of a (possibly released noisy) histogram."""
    if factor < 1:
        raise SchemaError("factor must be >= 1")
    hist = np.asarray(hist, dtype=np.float64)
    pad = (-len(hist)) % factor
    if pad:
        hist = np.concatenate([hist, np.zeros(pad)])
    return hist.reshape(-1, factor).sum(axis=1)
