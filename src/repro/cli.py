"""Unified command-line interface: ``python -m repro <command> [options]``.

Commands map one-to-one onto the experiment harnesses (``fig5`` .. ``table1``,
``correlations``, ``binning``) plus ``demo`` (the quickstart pipeline),
``pipeline`` (the end-to-end private pipeline: DP clustering + explanation
under one ledger), ``serve`` (the multi-tenant explanation service over
HTTP) and ``list`` (show the command index).  Every experiment is also runnable as
``python -m repro.experiments.<module>``; this front door just saves typing.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

COMMANDS: dict[str, tuple[str, str]] = {
    # command -> (module, paper artifact)
    "fig5": ("repro.experiments.fig5_quality", "Figure 5 — Quality vs epsilon"),
    "fig6": ("repro.experiments.fig6_mae", "Figure 6 — MAE vs epsilon"),
    "fig7": ("repro.experiments.fig7_candidates", "Figure 7 — Quality vs k"),
    "fig8": ("repro.experiments.fig8_clusters", "Figure 8 — clusters / sizes"),
    "fig9": ("repro.experiments.fig9_performance", "Figure 9 — runtimes"),
    "fig10": ("repro.experiments.fig10_case_study", "Figure 10 — case study"),
    "table1": ("repro.experiments.table1_weights", "Table 1 — weight configs"),
    "correlations": ("repro.experiments.correlations", "Sec. 6.2 — correlations"),
    "binning": ("repro.experiments.binning", "Sec. 8 — binning ablation"),
    "eda": ("repro.experiments.eda_comparison", "Sec. 1 — manual EDA comparison"),
    "scale": ("repro.experiments.scale", "repro — quality gap vs dataset size"),
}


def _run_demo(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro demo", description="Run the quickstart pipeline."
    )
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--clusters", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(list(argv))

    from . import DPKMeans, PrivacyAccountant, describe, diabetes_like
    from .core.dpclustx import DPClustX

    data = diabetes_like(n_rows=args.rows, n_groups=args.clusters, seed=7)
    acc = PrivacyAccountant()
    clustering = DPKMeans(args.clusters, epsilon=1.0).fit(
        data, rng=args.seed, accountant=acc
    )
    expl = DPClustX().explain(data, clustering, rng=args.seed, accountant=acc)
    print("selected attributes:", tuple(expl.combination))
    print(describe(expl))
    print(acc.summary())
    return 0


def _run_pipeline(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro pipeline",
        description=(
            "Run the end-to-end private pipeline: fit a DP clustering "
            "(dp-kmeans/dp-kmodes) and explain it with DPClustX, both "
            "charged to one session budget ledger.  Repeat explanations "
            "reuse the released fit at zero extra clustering cost."
        ),
    )
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--clusters", type=int, default=5)
    parser.add_argument("--method", choices=("dp-kmeans", "dp-kmodes"),
                        default="dp-kmeans")
    parser.add_argument("--clustering-eps", type=float, default=1.0,
                        help="privacy budget of the clustering fit "
                             "(the paper uses 1.0)")
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--total-eps", type=float, default=2.0,
                        help="the end-to-end session cap both stages "
                             "draw from")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--explanations", type=int, default=2,
                        help="how many explanations to run over the one "
                             "fitted clustering (fit once, explain many)")
    args = parser.parse_args(list(argv))

    from . import ClusteringSpec, PrivateAnalysisSession, describe, diabetes_like

    data = diabetes_like(n_rows=args.rows, n_groups=args.clusters, seed=7)
    session = PrivateAnalysisSession(
        data, total_epsilon=args.total_eps, seed=args.seed
    )
    spec = ClusteringSpec(
        args.method, args.clusters, args.clustering_eps, args.iterations,
        seed=args.seed,
    )
    for i in range(max(args.explanations, 1)):
        result = session.run_pipeline(spec)
        stage = "fitted" if result.refit else "reused fit"
        print(
            f"run {i + 1}: {stage} {spec.slug()} "
            f"(clustering eps={result.clustering_epsilon:g}, "
            f"explanation eps={result.explanation_epsilon:g})"
        )
        print("  selected attributes:", tuple(result.explanation.combination))
    print(describe(result.explanation))
    print(session.ledger())
    return 0


def _run_serve(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the multi-tenant explanation service over HTTP "
            "(stdlib-only; see repro.service).  Serves a synthetic demo "
            "dataset; tenants are auto-provisioned with --tenant-budget.  "
            "DEMO SCOPE: there is no authentication — tenant identity is "
            "caller-asserted — so keep --host on loopback unless real auth "
            "fronts the server."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default loopback; non-loopback "
                             "prints a no-auth warning)")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--rows", type=int, default=20_000,
                        help="rows of the demo diabetes_like dataset")
    parser.add_argument("--clusters", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0,
                        help="shard worker PROCESSES for the multi-process "
                             "tier (tenants partitioned by stable hash; "
                             "0 = single-process in-memory service)")
    parser.add_argument("--threads", type=int, default=2,
                        help="coalescing threads per service/worker")
    parser.add_argument("--tenant-budget", type=float, default=1.0,
                        help="per-(tenant, dataset) epsilon cap for "
                             "auto-provisioned tenants")
    parser.add_argument("--ledger-dir", default=None,
                        help="directory for persistent per-tenant budget "
                             "ledgers (crash-safe JSON; reloaded on restart)")
    parser.add_argument("--cache-entries", type=int, default=256)
    args = parser.parse_args(list(argv))

    from . import KMeans, diabetes_like
    from .service import ExplanationService, serve_forever

    data = diabetes_like(
        n_rows=args.rows, n_groups=args.clusters, seed=args.seed
    )
    clustering = KMeans(args.clusters).fit(data, rng=args.seed)
    if args.workers > 0:
        from .service.frontend import ShardedService

        service = ShardedService(
            args.workers,
            ledger_dir=args.ledger_dir,
            cache_entries=args.cache_entries,
            auto_tenant_budget=args.tenant_budget,
            service_threads=args.threads,
        )
        service.start()
        frame = service.register_dataset("diabetes", data, clustering)
        print(f"sharded tier: {args.workers} worker processes "
              f"({args.threads} coalescing threads each)")
        print(f"registered dataset 'diabetes' "
              f"(rows={len(data)}, |C|={frame['handle']['n_clusters']}, "
              f"fingerprint={frame['fingerprint'][:12]}…)")
    else:
        service = ExplanationService(
            ledger_dir=args.ledger_dir,
            cache_entries=args.cache_entries,
            auto_tenant_budget=args.tenant_budget,
        )
        entry = service.register_dataset("diabetes", data, clustering)
        print(f"registered dataset 'diabetes' "
              f"(rows={len(data)}, |C|={entry.counts.n_clusters}, "
              f"fingerprint={entry.fingerprint[:12]}…)")
        service.start(args.threads)
    serve_forever(service, args.host, args.port)
    return 0


def _run_lint(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Statically check the codebase's DP and serving invariants "
            "(charge-before-release, integer-grid epsilon arithmetic, "
            "explicit RNG streams, ...).  Exit 0 when no findings, 1 "
            "otherwise.  See ARCHITECTURE.md 'Static analysis' for the "
            "rule catalog and the suppression policy."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json follows the stable "
                             "schema documented in repro.analysis.model)")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="NAME",
                        help="run only this rule (repeatable)")
    parser.add_argument("--engine", choices=("ast", "flow", "all"),
                        default="ast",
                        help="rule suite: 'ast' (syntactic invariants), "
                             "'flow' (interprocedural taint + lockset), "
                             "or 'all' (default: ast)")
    parser.add_argument("--diff", metavar="BASE_REF", default=None,
                        help="lint only files changed vs BASE_REF plus "
                             "their call-graph dependents (falls back to "
                             "the full tree without a usable git)")
    parser.add_argument("--sarif", metavar="PATH", default=None,
                        help="additionally write a SARIF 2.1.0 report of "
                             "the same result to PATH")
    args = parser.parse_args(list(argv))

    from .analysis import format_json, format_text, lint_paths

    paths = args.paths or ["src"]
    try:
        if args.diff is not None:
            from .analysis.diff import select_diff_paths

            paths, note = select_diff_paths(paths, args.diff)
            print(f"repro lint: {note}", file=sys.stderr)
        result = lint_paths(
            paths,
            only=tuple(args.rule) if args.rule else None,
            engine=args.engine,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.sarif is not None:
        from .analysis.sarif import format_sarif

        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(format_sarif(result) + "\n")
    print(format_json(result) if args.format == "json" else format_text(result))
    return 0 if result.ok else 1


def _run_list(argv: Sequence[str]) -> int:
    print("available commands (paper artifact each regenerates):")
    for name, (module, artifact) in COMMANDS.items():
        print(f"  {name:<13} {artifact:<38} [{module}]")
    print("  demo          quickstart pipeline")
    print("  pipeline      end-to-end private pipeline (DP cluster + explain)")
    print("  serve         multi-tenant explanation service (HTTP)")
    print("  lint          static DP-invariant checker (repro-lint)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        _run_list([])
        print("\nusage: python -m repro <command> [command options]")
        return 0
    command, rest = argv[0], argv[1:]
    if command == "demo":
        return _run_demo(rest)
    if command == "pipeline":
        return _run_pipeline(rest)
    if command == "serve":
        return _run_serve(rest)
    if command == "lint":
        return _run_lint(rest)
    if command == "list":
        return _run_list(rest)
    if command not in COMMANDS:
        print(f"unknown command {command!r}; try `python -m repro list`")
        return 2
    module_name, _ = COMMANDS[command]
    import importlib

    module = importlib.import_module(module_name)
    old_argv = sys.argv
    try:
        sys.argv = [f"repro {command}"] + rest
        module.main()
    finally:
        sys.argv = old_argv
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
