"""Unified observability: metrics registry, request tracing, exposition.

Three stdlib-only modules shared by every tier of the serving stack:

* :mod:`repro.obs.metrics` — sharded Counter/Gauge/Histogram families
  with an associative snapshot/merge algebra (worker registries fold into
  one scrape);
* :mod:`repro.obs.tracing` — edge-minted trace IDs carried through the
  shard frame protocol, plus the span-duration histogram taxonomy;
* :mod:`repro.obs.export` — Prometheus text exposition for ``/metrics``.
"""

from .export import prometheus_text
from .metrics import (
    DEFAULT_BASE,
    DEFAULT_BUCKETS,
    DEFAULT_GROWTH,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper_bound,
    histogram_quantile,
    merge,
    merge_snapshots,
    obs_enabled_default,
    snapshot_series,
    snapshot_value,
)
from .tracing import (
    SPAN_HISTOGRAM,
    SPANS,
    attach_trace,
    new_trace_id,
    record_span,
    span,
    span_histogram,
    trace_id_of,
)

__all__ = [
    "DEFAULT_BASE",
    "DEFAULT_BUCKETS",
    "DEFAULT_GROWTH",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SPAN_HISTOGRAM",
    "SPANS",
    "attach_trace",
    "bucket_index",
    "bucket_upper_bound",
    "histogram_quantile",
    "merge",
    "merge_snapshots",
    "new_trace_id",
    "obs_enabled_default",
    "prometheus_text",
    "record_span",
    "snapshot_series",
    "snapshot_value",
    "span",
    "span_histogram",
    "trace_id_of",
]
