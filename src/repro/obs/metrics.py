"""Low-overhead metrics registry: sharded counters, geometric histograms.

One :class:`MetricsRegistry` per process-level component (an in-process
:class:`~repro.service.service.ExplanationService`, a shard worker, the
async front end).  Three metric kinds:

* :class:`Counter` — monotonically increasing, merged by **summing**;
* :class:`Gauge` — a point-in-time value, merged **last-wins** (in the
  sharded tier, gauge label sets are partition-scoped — e.g. per-tenant
  budget gauges live only on the tenant's owner worker — so last-wins
  never silently drops a series);
* :class:`Histogram` — geometric buckets, merged by **vector-adding**
  buckets/counts/sums.

Counters and histograms use the per-thread sharded-lock trick proven in
the service's ``_Stats``: each thread is pinned round-robin to one of
``n_shards`` independently-locked shards, so the worker pool, HTTP handler
threads and shard connection threads never contend on one hot lock — the
merge cost moves to :meth:`MetricsRegistry.snapshot`, which only scrapes
pay.  Histogram *sums* are integers in :data:`SUM_SCALE` nano-units, so
merging snapshots is exact integer arithmetic and therefore **associative**
(``merge(a, merge(b, c)) == merge(merge(a, b), c)``) — the property that
lets the supervisor/front end fold N worker snapshots in any grouping.

Snapshots are plain JSON-able dicts, small enough to ride in one
length-prefixed frame (:mod:`repro.service.transport`), and merge with
:func:`merge` / :func:`merge_snapshots`.

Setting ``REPRO_OBS=0`` in the environment disables every registry
constructed without an explicit ``enabled`` flag: ``inc``/``set``/
``observe`` become early-return no-ops (the switch the benchmark's
instrumentation-overhead and DP byte-identity comparisons flip).
"""

from __future__ import annotations

import math
import os
import re
import threading

#: Default geometric bucket geometry — identical to the PR 7 ``_Stats``
#: latency histograms: 100µs base, √2 growth (half-powers of two), 44
#: buckets covering past 200s with one overflow bucket.
DEFAULT_BASE = 1e-4
DEFAULT_GROWTH = 2.0 ** 0.5
DEFAULT_BUCKETS = 44

#: Histogram sums are stored as integers in units of ``1/SUM_SCALE`` (for
#: duration histograms: nanoseconds).  Integer sums make snapshot merging
#: exactly associative — float addition is not.
SUM_SCALE = 10**9

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

SNAPSHOT_FORMAT = 1


def obs_enabled_default() -> bool:
    """The process-wide default enable switch (``REPRO_OBS=0`` disables)."""
    return os.environ.get("REPRO_OBS", "1") != "0"


# --------------------------------------------------------------------------- #
# bucket geometry
# --------------------------------------------------------------------------- #


def bucket_index(
    value: float,
    base: float = DEFAULT_BASE,
    growth: float = DEFAULT_GROWTH,
    n_buckets: int = DEFAULT_BUCKETS,
) -> int:
    """The bucket holding ``value``: bucket ``b`` covers ``(u(b-1), u(b)]``."""
    if value <= base:
        return 0
    b = int(math.log(value / base) / math.log(growth)) + 1
    return min(b, n_buckets - 1)


def bucket_upper_bound(
    bucket: int, base: float = DEFAULT_BASE, growth: float = DEFAULT_GROWTH
) -> float:
    """The inclusive upper edge of a bucket (the quantile estimate)."""
    return base * growth**bucket


def histogram_quantile(
    buckets: "list[int]",
    q: float,
    base: float = DEFAULT_BASE,
    growth: float = DEFAULT_GROWTH,
) -> "float | None":
    """Bucket-upper-bound quantile; ``None`` on an empty histogram.

    Within one ``growth`` factor of the true value — the resolution
    tail-latency dashboards need without holding per-event samples.
    """
    total = sum(buckets)
    if total == 0:
        return None
    rank = q * total
    seen = 0
    for b, count in enumerate(buckets):
        seen += count
        if seen >= rank:
            return bucket_upper_bound(b, base, growth)
    return bucket_upper_bound(len(buckets) - 1, base, growth)


# --------------------------------------------------------------------------- #
# metric families
# --------------------------------------------------------------------------- #


class _Metric:
    """Shared family state: name, help text, label names, owning registry."""

    kind = "?"

    def __init__(self, registry: "MetricsRegistry", name: str, help_text: str,
                 labels: "tuple[str, ...]"):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        self.registry = registry
        self.name = name
        self.help = help_text
        self.labels = tuple(labels)

    def _check(self, label_values: tuple) -> tuple:
        if len(label_values) != len(self.labels):
            raise ValueError(
                f"{self.name} takes {len(self.labels)} label value(s) "
                f"{self.labels!r}, got {label_values!r}"
            )
        return label_values


class Counter(_Metric):
    """A monotonically increasing counter family (merged by summing)."""

    kind = "counter"

    def __init__(self, registry, name, help_text, labels):
        super().__init__(registry, name, help_text, labels)
        self._shards = tuple(
            ({}, threading.Lock()) for _ in range(registry.n_shards)
        )

    def inc(self, by: int = 1, labels: tuple = ()) -> None:
        if not self.registry.enabled:
            return
        self._check(labels)
        series, lock = self._shards[self.registry._slot()]
        with lock:
            series[labels] = series.get(labels, 0) + by

    def value(self, labels: tuple = ()) -> int:
        total = 0
        for series, lock in self._shards:
            with lock:
                total += series.get(labels, 0)
        return total

    def series(self) -> "dict[tuple, int]":
        merged: "dict[tuple, int]" = {}
        for series, lock in self._shards:
            with lock:
                for key, v in series.items():
                    merged[key] = merged.get(key, 0) + v
        return merged


class Gauge(_Metric):
    """A point-in-time value family (merged last-wins)."""

    kind = "gauge"

    def __init__(self, registry, name, help_text, labels):
        super().__init__(registry, name, help_text, labels)
        self._lock = threading.Lock()
        self._series: "dict[tuple, float]" = {}

    def set(self, value: float, labels: tuple = ()) -> None:
        if not self.registry.enabled:
            return
        self._check(labels)
        with self._lock:
            self._series[labels] = value

    def value(self, labels: tuple = ()) -> "float | None":
        with self._lock:
            return self._series.get(labels)

    def series(self) -> "dict[tuple, float]":
        with self._lock:
            return dict(self._series)


class Histogram(_Metric):
    """A geometric-bucket histogram family (merged by vector addition).

    Per-series cells are ``[buckets, count, sum_scaled]`` — the sum an
    integer in :data:`SUM_SCALE` units so merges stay exact.
    """

    kind = "histogram"

    def __init__(self, registry, name, help_text, labels,
                 base=DEFAULT_BASE, growth=DEFAULT_GROWTH,
                 n_buckets=DEFAULT_BUCKETS):
        super().__init__(registry, name, help_text, labels)
        if not (base > 0 and growth > 1 and n_buckets >= 1):
            raise ValueError("histogram needs base>0, growth>1, n_buckets>=1")
        self.base = float(base)
        self.growth = float(growth)
        self.n_buckets = int(n_buckets)
        self._shards = tuple(
            ({}, threading.Lock()) for _ in range(registry.n_shards)
        )

    def observe(self, value: float, labels: tuple = ()) -> None:
        if not self.registry.enabled:
            return
        self._check(labels)
        b = bucket_index(value, self.base, self.growth, self.n_buckets)
        series, lock = self._shards[self.registry._slot()]
        with lock:
            cell = series.get(labels)
            if cell is None:
                cell = [[0] * self.n_buckets, 0, 0]
                series[labels] = cell
            cell[0][b] += 1
            cell[1] += 1
            cell[2] += int(value * SUM_SCALE)

    def series(self) -> "dict[tuple, list]":
        """Merged ``{labels: [buckets, count, sum_scaled]}`` across shards."""
        merged: "dict[tuple, list]" = {}
        for series, lock in self._shards:
            with lock:
                for key, (buckets, count, total) in series.items():
                    cell = merged.get(key)
                    if cell is None:
                        merged[key] = [list(buckets), count, total]
                    else:
                        for i, c in enumerate(buckets):
                            cell[0][i] += c
                        cell[1] += count
                        cell[2] += total
        return merged

    def quantile(self, q: float, labels: tuple = ()) -> "float | None":
        cell = self.series().get(labels)
        if cell is None:
            return None
        return histogram_quantile(cell[0], q, self.base, self.growth)


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #


class MetricsRegistry:
    """One component's metric families, with a mergeable snapshot view.

    ``enabled=None`` takes the process default (``REPRO_OBS`` env switch);
    a disabled registry still *defines* families (so instrumented code
    never branches) but every write is an early-return no-op.
    """

    def __init__(self, n_shards: int = 8, enabled: "bool | None" = None):
        self.n_shards = max(1, int(n_shards))
        self.enabled = obs_enabled_default() if enabled is None else bool(enabled)
        self._metrics: "dict[str, _Metric]" = {}
        self._meta_lock = threading.Lock()
        self._local = threading.local()
        self._next_slot = 0

    def _slot(self) -> int:
        """This thread's shard index (round-robin pinned at first touch)."""
        slot = getattr(self._local, "slot", None)
        if slot is None:
            # Round-robin spreads threads evenly regardless of thread-id
            # alignment (ids are pointers — `id % n` piles onto shard 0).
            with self._meta_lock:
                slot = self._next_slot % self.n_shards
                self._next_slot += 1
            self._local.slot = slot
        return slot

    def _family(self, cls, name, help_text, labels, **kwargs) -> _Metric:
        labels = tuple(labels)
        with self._meta_lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(self, name, help_text, labels, **kwargs)
                self._metrics[name] = metric
                return metric
        if type(metric) is not cls or metric.labels != labels:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind} "
                f"with labels {metric.labels!r}"
            )
        return metric

    def counter(self, name: str, help_text: str = "", labels=()) -> Counter:
        return self._family(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels=()) -> Gauge:
        return self._family(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels=(),
        *,
        base: float = DEFAULT_BASE,
        growth: float = DEFAULT_GROWTH,
        n_buckets: int = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._family(
            Histogram, name, help_text, labels,
            base=base, growth=growth, n_buckets=n_buckets,
        )

    def metrics(self) -> "tuple[_Metric, ...]":
        with self._meta_lock:
            return tuple(self._metrics.values())

    def snapshot(self) -> dict:
        """A JSON-able point-in-time view of every family (see :func:`merge`)."""
        out: "dict[str, dict]" = {}
        for metric in self.metrics():
            block: dict = {
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.labels),
            }
            if isinstance(metric, Histogram):
                block["base"] = metric.base
                block["growth"] = metric.growth
                block["series"] = [
                    [list(key), {"buckets": cell[0], "count": cell[1], "sum": cell[2]}]
                    for key, cell in sorted(metric.series().items())
                ]
            else:
                block["series"] = [
                    [list(key), value]
                    for key, value in sorted(metric.series().items())
                ]
            out[metric.name] = block
        return {"format": SNAPSHOT_FORMAT, "metrics": out}


# --------------------------------------------------------------------------- #
# snapshot algebra
# --------------------------------------------------------------------------- #


def _series_map(block: dict) -> "dict[tuple, object]":
    return {tuple(key): value for key, value in block.get("series", ())}


def _check_compatible(name: str, a: dict, b: dict) -> None:
    if a.get("type") != b.get("type") or list(a.get("labels", ())) != list(
        b.get("labels", ())
    ):
        raise ValueError(f"cannot merge metric {name!r}: family shapes differ")
    if a.get("type") == "histogram" and (
        a.get("base") != b.get("base") or a.get("growth") != b.get("growth")
    ):
        raise ValueError(f"cannot merge metric {name!r}: bucket geometry differs")


def _merge_blocks(name: str, a: dict, b: dict) -> dict:
    _check_compatible(name, a, b)
    kind = a["type"]
    sa, sb = _series_map(a), _series_map(b)
    merged: "dict[tuple, object]" = dict(sa)
    for key, value in sb.items():
        if key not in merged:
            merged[key] = value
        elif kind == "counter":
            merged[key] = merged[key] + value
        elif kind == "gauge":
            merged[key] = value  # last-wins: the right operand is newer
        else:  # histogram: exact vector addition (sums are integers)
            ca, cb = merged[key], value
            buckets_a, buckets_b = ca["buckets"], cb["buckets"]
            if len(buckets_a) != len(buckets_b):
                raise ValueError(
                    f"cannot merge metric {name!r}: bucket counts differ"
                )
            merged[key] = {
                "buckets": [x + y for x, y in zip(buckets_a, buckets_b)],
                "count": ca["count"] + cb["count"],
                "sum": ca["sum"] + cb["sum"],
            }
    out = {k: v for k, v in a.items() if k != "series"}
    out["series"] = [[list(key), merged[key]] for key in sorted(merged)]
    return out


def merge(a: dict, b: dict) -> dict:
    """Merge two snapshots (pure: inputs are never mutated).

    Counters sum, gauges take the right operand (last-wins), histograms
    vector-add; all three rules are associative, so any fold grouping of N
    worker snapshots yields the same result.
    """
    metrics_a = a.get("metrics", {})
    metrics_b = b.get("metrics", {})
    out = dict(metrics_a)
    for name, block in metrics_b.items():
        existing = out.get(name)
        out[name] = block if existing is None else _merge_blocks(
            name, existing, block
        )
    return {"format": SNAPSHOT_FORMAT, "metrics": out}


def merge_snapshots(snapshots) -> dict:
    """Left-fold :func:`merge` over N snapshots (empty input → empty snapshot)."""
    out = {"format": SNAPSHOT_FORMAT, "metrics": {}}
    for snap in snapshots:
        if snap:
            out = merge(out, snap)
    return out


def snapshot_series(snapshot: dict, name: str) -> "dict[tuple, object]":
    """One metric's ``{label_values: value_or_cell}`` map from a snapshot."""
    block = snapshot.get("metrics", {}).get(name)
    if block is None:
        return {}
    return _series_map(block)


def snapshot_value(snapshot: dict, name: str, labels: tuple = ()) -> object:
    """One series' value from a snapshot (``None`` when absent)."""
    return snapshot_series(snapshot, name).get(tuple(labels))
