"""Prometheus text exposition (format 0.0.4) for registry snapshots.

:func:`prometheus_text` renders a (possibly merged) snapshot from
:mod:`repro.obs.metrics` into the classic text format any Prometheus
scraper accepts: ``# HELP``/``# TYPE`` headers, label escaping, and for
histograms the cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count``.  The JSON "exposition" is the snapshot itself — ``/v1/stats``
embeds it verbatim under ``"metrics"``.
"""

from __future__ import annotations


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return str(value)
    f = float(value)
    if f != f:
        return "NaN"
    if f == float("inf"):
        return "+Inf"
    if f == float("-inf"):
        return "-Inf"
    return repr(f)


def _label_str(names, values, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(f'{name}="{value}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def prometheus_text(snapshot: dict) -> str:
    """Render a snapshot as Prometheus text exposition format 0.0.4."""
    lines: "list[str]" = []
    metrics = snapshot.get("metrics", {})
    for name in sorted(metrics):
        block = metrics[name]
        kind = block.get("type", "untyped")
        label_names = block.get("labels", ())
        help_text = block.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            base = block["base"]
            growth = block["growth"]
            for values, cell in block.get("series", ()):
                buckets = cell["buckets"]
                cumulative = 0
                # The final bucket is the overflow bucket: its lower edge
                # is finite but it holds everything above, so it renders
                # as the le="+Inf" series (which must equal _count).
                for i, count in enumerate(buckets):
                    cumulative += count
                    if i < len(buckets) - 1:
                        le = format(base * growth**i, ".9g")
                    else:
                        le = "+Inf"
                    labels = _label_str(label_names, values, (("le", le),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _label_str(label_names, values)
                # Sums are integers in SUM_SCALE (nano) units; export in
                # base units as Prometheus expects.
                lines.append(f"{name}_sum{labels} {_fmt_value(cell['sum'] / 1e9)}")
                lines.append(f"{name}_count{labels} {cell['count']}")
        else:
            for values, value in block.get("series", ()):
                labels = _label_str(label_names, values)
                lines.append(f"{name}{labels} {_fmt_value(value)}")
    return "\n".join(lines) + "\n"
