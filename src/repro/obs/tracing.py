"""Request tracing: trace IDs over the frame protocol, span histograms.

A **trace ID** is a 16-hex-char token minted once at the serving edge —
the HTTP handler for ``POST /v1/explain``/``/v1/pipeline``, the async
front end, or :meth:`ExplanationService.submit` for in-process callers —
and carried end-to-end:

* into the request as the ``trace_id`` field of
  :class:`~repro.service.service.ExplainRequest` (deliberately excluded
  from ``engine_key``/``cache_key``, so tracing never perturbs coalescing,
  caching, or the DP release bytes);
* across processes inside the ``asdict(request)`` payload of the
  length-prefixed ``explain``/``explain_batch`` frames — no frame-protocol
  change, just one more request field;
* back out in the response envelope via :func:`attach_trace`, which tags
  ``meta`` on success and ``error`` on structured refusals/failures
  (429/503/5xx) so a failed request is attributable from the client side.

A **span** is one named timed section recorded into the shared
``repro_span_duration_seconds{span=...}`` histogram.  The span taxonomy
(:data:`SPANS`) covers the request path end to end: frontend queueing,
the coalescing window, frame round-trip, scoring, DP release, journal
fsync, and cache lookup.  Spans are aggregate (no per-trace storage) —
the point is "where do requests spend time", at histogram cost.
"""

from __future__ import annotations

import secrets
import time
from contextlib import contextmanager

from .metrics import Histogram, MetricsRegistry

#: The one histogram family every span records into, labelled by span name.
SPAN_HISTOGRAM = "repro_span_duration_seconds"
SPAN_HELP = "Duration of one named request-path section (span taxonomy)."

#: The span taxonomy — every instrumented section of the request path.
SPANS = (
    "frontend-queue",     # explain() enqueue -> batch flush, per request
    "coalesce-window",    # first buffered request -> flush, per batch
    "frame-rtt",          # frame write -> reply resolve, per request
    "engine-score",       # batched candidate scoring (select_batched)
    "mechanism-release",  # DP histogram releases for selected combos
    "journal-fsync",      # ledger journal append + fsync, per record
    "cache-lookup",       # explanation-cache probe in submit()
)


def new_trace_id() -> str:
    """A fresh 64-bit trace ID (16 hex chars)."""
    return secrets.token_hex(8)


def span_histogram(metrics: MetricsRegistry) -> Histogram:
    """The registry's span-duration histogram (idempotent lookup)."""
    return metrics.histogram(SPAN_HISTOGRAM, SPAN_HELP, labels=("span",))


def record_span(metrics: "MetricsRegistry | None", span: str,
                seconds: float) -> None:
    if metrics is not None:
        span_histogram(metrics).observe(seconds, (span,))


@contextmanager
def span(metrics: "MetricsRegistry | None", name: str):
    """Time a ``with`` block into the span histogram (no-op without metrics)."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        record_span(metrics, name, time.perf_counter() - t0)


def attach_trace(envelope: dict, trace_id: str) -> dict:
    """Return a copy of ``envelope`` tagged with ``trace_id``.

    Tags the ``meta`` block (success) and/or the ``error`` block
    (refusals/failures) — never the ``result`` block, which must stay
    byte-identical with tracing on or off.  Copy-on-attach: envelopes are
    shared across a coalesced group (every pending request in the group
    resolves with the same dict), so tagging in place would leak one
    request's trace into its groupmates' responses.
    """
    if not trace_id or not isinstance(envelope, dict):
        return envelope
    out = dict(envelope)
    tagged = False
    meta = out.get("meta")
    if isinstance(meta, dict):
        out["meta"] = {**meta, "trace_id": trace_id}
        tagged = True
    error = out.get("error")
    if isinstance(error, dict):
        out["error"] = {**error, "trace_id": trace_id}
        tagged = True
    if not tagged:
        out["trace_id"] = trace_id
    return out


def trace_id_of(envelope: object) -> "str | None":
    """The trace ID tagged onto an envelope, or ``None``."""
    if not isinstance(envelope, dict):
        return None
    for block_name in ("meta", "error"):
        block = envelope.get(block_name)
        if isinstance(block, dict) and block.get("trace_id"):
            return str(block["trace_id"])
    trace_id = envelope.get("trace_id")
    return str(trace_id) if trace_id else None
