"""Analyst sessions: one privacy budget across clustering and explanations.

The paper's deployment story (Sections 1, 3) is an analyst holding a global
privacy budget who clusters privately, explains privately, and must not
overspend across the whole interaction.  :class:`PrivateAnalysisSession`
packages that workflow: it owns a capped
:class:`~repro.privacy.budget.PrivacyAccountant`, threads it through every
operation, and refuses operations that would exceed the cap — turning
Theorem 5.3's arithmetic into an enforced runtime contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .clustering.base import ClusteringFunction
from .core.counts import ClusteredCounts
from .core.dpclustx import DPClustX
from .core.hbe import GlobalExplanation
from .core.multi import MultiDPClustX, MultiGlobalExplanation
from .core.quality.scores import Weights
from .dataset.table import Dataset
from .pipeline import ClusteringSpec, PipelineResult, PrivatePipeline
from .privacy.budget import BudgetError, ExplanationBudget, PrivacyAccountant
from .privacy.rng import ensure_rng


@dataclass
class PrivateAnalysisSession:
    """A budget-capped analysis session over one sensitive dataset.

    Parameters
    ----------
    dataset:
        The sensitive dataset; never released, only queried through DP
        mechanisms.
    total_epsilon:
        The session-wide privacy cap.  Every operation draws from it;
        operations that would exceed it raise
        :class:`~repro.privacy.budget.BudgetError` *before* touching data.
    seed:
        Seed for the session's random generator (reproducible sessions).
    """

    dataset: Dataset
    total_epsilon: float
    seed: int | None = None
    _accountant: PrivacyAccountant = field(init=False)
    _rng: np.random.Generator = field(init=False)
    _clustering: ClusteringFunction | None = field(init=False, default=None)
    _counts: ClusteredCounts | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self._accountant = PrivacyAccountant(limit=self.total_epsilon)
        self._rng = ensure_rng(self.seed)
        # The shared fit-or-reuse implementation behind cluster_dp_kmeans /
        # cluster_dp_kmodes / run_pipeline — the same engine the service's
        # /v1/pipeline route and sweeps.run_pipeline_batched build on.
        self._pipeline = PrivatePipeline(self.dataset, self._accountant)

    # -- budget introspection ------------------------------------------- #

    @property
    def spent(self) -> float:
        """Total epsilon consumed so far."""
        return self._accountant.total()

    @property
    def remaining(self) -> float:
        """Budget left under the session cap."""
        return self._accountant.remaining()

    def ledger(self) -> str:
        """Human-readable charge-by-charge budget report."""
        return self._accountant.summary()

    def ledger_snapshot(self) -> dict:
        """JSON-able ledger state (the service layer's persistence format).

        Pairs with :meth:`restore_ledger`: a session can be checkpointed
        across process restarts without losing track of spent budget — the
        same :meth:`~repro.privacy.budget.PrivacyAccountant.snapshot` /
        ``restore`` contract the explanation service uses for its
        per-(tenant, dataset) ledgers.
        """
        return self._accountant.snapshot()

    def restore_ledger(self, state: dict) -> None:
        """Replace the session ledger with a :meth:`ledger_snapshot`.

        The snapshot's charges are replayed against the *session's* cap
        (not the snapshot's recorded limit), so a snapshot from a
        bigger-budget session cannot smuggle in an overspent ledger.
        """
        restored = dict(state)
        restored["limit"] = self.total_epsilon
        self._accountant.restore(restored)

    # -- clustering ------------------------------------------------------ #

    def cluster_dp_kmeans(
        self, n_clusters: int, epsilon: float, n_iterations: int = 5
    ) -> ClusteringFunction:
        """Privately cluster with DP-k-means [64], charging ``epsilon``."""
        return self._cluster(
            ClusteringSpec("dp-kmeans", n_clusters, epsilon, n_iterations)
        )

    def cluster_dp_kmodes(
        self, n_clusters: int, epsilon: float, n_iterations: int = 5
    ) -> ClusteringFunction:
        """Privately cluster with DP-k-modes [53], charging ``epsilon``."""
        return self._cluster(
            ClusteringSpec("dp-kmodes", n_clusters, epsilon, n_iterations)
        )

    def _cluster(self, spec: ClusteringSpec) -> ClusteringFunction:
        """Fit a DP clustering spec via the shared pipeline.

        Draws from the session's own stream and always fits *fresh*
        (charging ``spec.epsilon`` each call): an explicit
        ``cluster_dp_kmeans`` call is a request for a new release — e.g.
        to escape a bad noisy initialisation — never for a cached one.
        :meth:`run_pipeline` is the reuse-friendly entry point.
        """
        clustering, counts, _ = self._pipeline.fit(
            spec, rng=self._rng, force_refit=True
        )
        self._clustering = clustering
        self._counts = counts
        return clustering

    def run_pipeline(
        self,
        spec: ClusteringSpec,
        budget: ExplanationBudget | None = None,
        n_candidates: int = 3,
        weights: Weights | None = None,
    ) -> PipelineResult:
        """The paper's end-to-end setting in one call: fit + explain.

        Clusters per ``spec`` (reusing the session's previous fit of the
        same spec for free), adopts the clustering as the session
        clustering, and runs DPClustX against it — all charges landing in
        the one session ledger.  Returns the
        :class:`~repro.pipeline.pipeline.PipelineResult` recording both
        stages' spend.
        """
        result = self._pipeline.run(
            spec, budget, n_candidates, weights, rng=self._rng
        )
        # Adopt the (memoised, zero-charge) fit as the session clustering.
        clustering, counts, _ = self._pipeline.fit(spec, rng=self._rng)
        self._clustering = clustering
        self._counts = counts
        return result

    def use_clustering(self, clustering: ClusteringFunction) -> None:
        """Adopt an externally-supplied clustering function.

        The function must be data-independent (user predicates) or have been
        computed under DP elsewhere — the session cannot verify this, so the
        charge, if any, is the caller's responsibility (Definition 3.1's
        black-box setting).
        """
        self._set_clustering(clustering)

    # -- explanation ------------------------------------------------------ #

    def explain(
        self,
        budget: ExplanationBudget | None = None,
        n_candidates: int = 3,
        weights: Weights | None = None,
    ) -> GlobalExplanation:
        """Run DPClustX (Algorithm 2) against the session clustering."""
        clustering, counts = self._require_clustering()
        budget = budget or ExplanationBudget()
        self._require(budget.total)
        explainer = DPClustX(n_candidates, weights or Weights(), budget)
        return explainer.explain(
            self.dataset,
            clustering,
            self._rng,
            accountant=self._accountant,
            counts=counts,
        )

    def explain_multi(
        self,
        ell: int = 2,
        budget: ExplanationBudget | None = None,
        n_candidates: int = 3,
        weights: Weights | None = None,
    ) -> MultiGlobalExplanation:
        """Run the Appendix-B extension (ell explanations per cluster)."""
        clustering, counts = self._require_clustering()
        budget = budget or ExplanationBudget()
        self._require(budget.total)
        explainer = MultiDPClustX(ell, n_candidates, weights or Weights(), budget)
        return explainer.explain(
            self.dataset,
            clustering,
            self._rng,
            accountant=self._accountant,
            counts=counts,
        )

    def release_histogram(self, attribute: str, epsilon: float) -> np.ndarray:
        """Release one ad-hoc noisy histogram (manual EDA step)."""
        from .privacy.histograms import GeometricHistogram

        self._require(epsilon)
        mech = GeometricHistogram(epsilon)
        self._accountant.spend(epsilon, f"ad-hoc histogram: {attribute}")
        return mech.release_column(self.dataset, attribute, self._rng)

    # -- internals --------------------------------------------------------

    def _require(self, epsilon: float) -> None:
        # The accountant's own exact O(1) admission check, as a query: no
        # second tolerance window stacked on top of the ledger's arithmetic.
        if not self._accountant.can_spend(epsilon):
            raise BudgetError(
                f"operation needs eps={epsilon:.4g} but only "
                f"{self.remaining:.4g} of {self.total_epsilon:.4g} remains"
            )

    def _set_clustering(self, clustering: ClusteringFunction) -> None:
        self._clustering = clustering
        self._counts = ClusteredCounts(self.dataset, clustering)

    def _require_clustering(self) -> tuple[ClusteringFunction, ClusteredCounts]:
        if self._clustering is None or self._counts is None:
            raise RuntimeError(
                "no clustering in the session; call cluster_dp_kmeans/"
                "cluster_dp_kmodes or use_clustering first"
            )
        return self._clustering, self._counts
