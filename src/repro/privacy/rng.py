"""Randomness plumbing for DP mechanisms.

Every mechanism in :mod:`repro.privacy` takes an explicit
``numpy.random.Generator`` so that experiments are reproducible run-to-run and
tests can pin seeds.  ``ensure_rng`` normalises the accepted spellings.
"""

from __future__ import annotations

import numpy as np

RngLike = "np.random.Generator | int | None"


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``None`` / seed / generator into a ``numpy.random.Generator``."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
