"""Randomness plumbing for DP mechanisms.

Every mechanism in :mod:`repro.privacy` takes an explicit
``numpy.random.Generator`` so that experiments are reproducible run-to-run and
tests can pin seeds.  ``ensure_rng`` normalises the accepted spellings.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

RngLike = "np.random.Generator | int | None"


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``None`` / seed / generator into a ``numpy.random.Generator``."""
    if rng is None:
        # repro-lint: disable=no-global-rng — None is the caller explicitly requesting fresh OS entropy; every reproducible path passes a seed or Generator
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def batch_score_rows(
    scores: np.ndarray, n_draws: "int | None"
) -> tuple[np.ndarray, int]:
    """Normalise a batched mechanism's ``(scores, n_draws)`` input.

    Shared by ``ExponentialMechanism.select_indices`` and
    ``OneShotTopK.select_batch``: a 1-D shared score vector (``n_draws``
    required) becomes a broadcastable ``(1, n)`` row; an ``(R, n)`` matrix
    of per-draw rows is validated against ``n_draws``.  Returns the 2-D
    view and the draw count ``R``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim == 1:
        if n_draws is None:
            raise ValueError("n_draws is required with a shared 1-D score vector")
        return scores[None, :], int(n_draws)
    if scores.ndim == 2:
        n_rows = scores.shape[0]
        if n_draws is not None and int(n_draws) != n_rows:
            raise ValueError(
                f"n_draws={n_draws} does not match {n_rows} score rows"
            )
        return scores, n_rows
    raise ValueError("scores must be a 1-D vector or (R, n) matrix")


def gumbel_rows(
    rng: "np.random.Generator | int | None | Sequence[np.random.Generator]",
    n_rows: int,
    n: int,
    scale: float = 1.0,
) -> np.ndarray:
    """An ``(n_rows, n)`` matrix of Gumbel(scale) noise, one row per draw.

    The batched mechanisms build on a stream property of
    ``numpy.random.Generator``: distribution methods fill arrays by
    consuming the bit stream value-by-value in C order, so one
    ``(n_rows, n)`` draw from a single generator yields *exactly* the values
    of ``n_rows`` sequential ``(n,)`` draws.  Alternatively ``rng`` may be a
    sequence of ``n_rows`` generators — row ``i`` then consumes ``rng[i]``'s
    stream, matching the per-seed child generators of a repeated-trial loop.
    """
    if n_rows < 1:
        raise ValueError(f"need at least one row, got {n_rows}")
    if isinstance(rng, Sequence) and not isinstance(rng, (str, bytes)):
        if len(rng) != n_rows:
            raise ValueError(
                f"got {len(rng)} per-row generators for {n_rows} rows"
            )
        return np.stack(
            [ensure_rng(g).gumbel(loc=0.0, scale=scale, size=n) for g in rng]
        )
    return ensure_rng(rng).gumbel(loc=0.0, scale=scale, size=(n_rows, n))
