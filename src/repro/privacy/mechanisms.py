"""Noise primitives: Laplace, two-sided Geometric, and Gumbel perturbation.

These are the building blocks used throughout the framework:

* :class:`LaplaceMechanism` — the classical calibrated-noise mechanism of
  Dwork et al. [18]; used by our DP-k-means substrate.
* :class:`GeometricMechanism` — the universally utility-maximising integer
  mechanism of Ghosh et al. [26]; the paper's default histogram mechanism
  ("We use the Geometric mechanism [26] for DP histogram generation",
  Section 6.1).
* :func:`gumbel_noise` — Gumbel(sigma) perturbation, the engine of both the
  exponential mechanism (via the Gumbel-max trick) and the One-shot Top-k
  mechanism [15] (Section 2.1, footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .budget import check_epsilon
from .manifest import register_sanitizer
from .rng import ensure_rng


def _check_sensitivity(sensitivity: float) -> float:
    s = float(sensitivity)
    if not s > 0.0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity!r}")
    return s


@dataclass(frozen=True)
class LaplaceMechanism:
    """Add ``Laplace(sensitivity / epsilon)`` noise to a numeric query answer.

    Satisfies ``epsilon``-DP for queries with L1 sensitivity ``sensitivity``.
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        _check_sensitivity(self.sensitivity)

    @property
    def scale(self) -> float:
        """Noise scale ``b = sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    def randomise(
        self, values: np.ndarray | float, rng: np.random.Generator | int | None = None
    ) -> np.ndarray | float:
        """Return ``values + Laplace(0, b)`` (element-wise for arrays)."""
        gen = ensure_rng(rng)
        arr = np.asarray(values, dtype=np.float64)
        noisy = arr + gen.laplace(loc=0.0, scale=self.scale, size=arr.shape)
        if np.isscalar(values) or arr.shape == ():
            return float(noisy)
        return noisy

    def error_bound(self, beta: float = 0.05) -> float:
        """``alpha`` s.t. ``P(|noise| > alpha) <= beta`` (per coordinate)."""
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        return self.scale * float(np.log(1.0 / beta))


@dataclass(frozen=True)
class GeometricMechanism:
    """Two-sided geometric noise for integer-valued queries [26].

    The output is ``value + Z`` where ``P(Z = z) ∝ alpha^|z|`` with
    ``alpha = exp(-epsilon / sensitivity)``.  ``Z`` is sampled as the
    difference of two i.i.d. geometric variables, which realises exactly that
    law.  Satisfies ``epsilon``-DP for integer queries of the stated L1
    sensitivity, and is the default histogram mechanism (Section 6.1).
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        _check_sensitivity(self.sensitivity)

    @property
    def alpha(self) -> float:
        """The decay parameter ``exp(-epsilon / sensitivity)``."""
        return float(np.exp(-self.epsilon / self.sensitivity))

    def sample_noise(
        self, size: int | tuple[int, ...], rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw two-sided geometric noise of the given shape."""
        gen = ensure_rng(rng)
        p = 1.0 - self.alpha
        # rng.geometric has support {1, 2, ...}; shift to {0, 1, ...}.
        g1 = gen.geometric(p, size=size) - 1
        g2 = gen.geometric(p, size=size) - 1
        return (g1 - g2).astype(np.int64)

    def randomise(
        self, values: np.ndarray | int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray | int:
        """Return ``values + Z`` with two-sided geometric ``Z``."""
        arr = np.asarray(values, dtype=np.int64)
        noise = self.sample_noise(arr.shape if arr.shape else 1, rng)
        noisy = arr + (noise if arr.shape else noise[0])
        if np.isscalar(values) or arr.shape == ():
            return int(noisy)
        return noisy

    def variance(self) -> float:
        """Noise variance ``2 alpha / (1 - alpha)^2``."""
        a = self.alpha
        return 2.0 * a / (1.0 - a) ** 2


def gumbel_noise(
    sigma: float,
    size: int | tuple[int, ...],
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw Gumbel(sigma) noise: CDF ``F(z) = exp(-exp(-z / sigma))``.

    This is the noise distribution of the One-shot Top-k mechanism [15]
    (Section 2.1, footnote 1).  ``sigma`` must be positive.
    """
    if not sigma > 0.0:
        raise ValueError(f"gumbel scale must be positive, got {sigma!r}")
    gen = ensure_rng(rng)
    return gen.gumbel(loc=0.0, scale=sigma, size=size)


# Self-register this backend's release surface with the taint manifest.
register_sanitizer("randomise")
register_sanitizer("randomize")
register_sanitizer("gumbel_noise")
