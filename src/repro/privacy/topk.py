"""The One-shot Top-k mechanism of Durfee & Rogers [15] (Section 2.1).

To release the ``k`` highest-quality candidates under ``eps``-DP the naive
route applies the exponential mechanism ``k`` times, re-scoring the shrinking
candidate pool each round.  One-shot Top-k instead adds independent
``Gumbel(sigma)`` noise with ``sigma = 2 * Delta * k / eps`` to every true
score *once*, sorts, and releases the top ``k`` — a distribution identical to
the iterated EM (each round at ``eps / k``), hence ``eps``-DP by sequential
composition.  DPClustX uses it in Stage-1 (Algorithm 1) both for the privacy
guarantee and for the ~k-fold speedup it reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .budget import check_epsilon
from .manifest import register_sanitizer
from .mechanisms import gumbel_noise
from .rng import batch_score_rows, ensure_rng, gumbel_rows


@dataclass(frozen=True)
class OneShotTopK:
    """Release the indices of the noisy top-``k`` scores.

    Parameters
    ----------
    epsilon:
        Total privacy budget of the k-fold selection.
    k:
        Number of candidates to release.
    sensitivity:
        Upper bound on the score function's sensitivity ``Delta``.
    """

    epsilon: float
    k: int
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not self.sensitivity > 0.0:
            raise ValueError("sensitivity must be positive")

    @property
    def sigma(self) -> float:
        """Gumbel scale ``2 * Delta * k / eps`` (Algorithm 1, Line 2)."""
        return 2.0 * self.sensitivity * self.k / self.epsilon

    def noisy_scores(
        self, scores: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """``scores + Gumbel(sigma)`` — Line 5 of Algorithm 1."""
        scores = np.asarray(scores, dtype=np.float64)
        return scores + gumbel_noise(self.sigma, scores.shape, rng)

    def select(
        self, scores: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> list[int]:
        """Return the ``k`` candidate indices with highest noisy scores.

        The order of the returned list is the descending noisy-score order
        (Lines 7-9 of Algorithm 1), i.e. the first element is the noisy-best.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise ValueError("scores must be a 1-D array")
        if scores.size < self.k:
            raise ValueError(
                f"cannot select top-{self.k} from {scores.size} candidates"
            )
        gen = ensure_rng(rng)
        noisy = self.noisy_scores(scores, gen)
        order = np.argsort(-noisy, kind="stable")
        return [int(i) for i in order[: self.k]]

    def select_batch(
        self,
        scores: np.ndarray,
        n_draws: int | None = None,
        rng: "np.random.Generator | int | None | Sequence[np.random.Generator]" = None,
    ) -> np.ndarray:
        """``R`` independent top-``k`` selections as an ``(R, k)`` index matrix.

        ``scores`` is either a shared 1-D score vector (``n_draws`` required)
        or an ``(R, n)`` matrix of per-draw score rows.  ``rng`` is a single
        generator/seed — one ``(R, n)`` Gumbel(sigma) draw, *stream-identical*
        to ``R`` sequential :meth:`select` calls on the same generator — or a
        sequence of ``R`` per-draw generators.  Row ``i`` reproduces
        ``select(scores_i, rng_i)``: indices in descending noisy-score order.
        """
        base, n_rows = batch_score_rows(scores, n_draws)
        if base.shape[1] < self.k:
            raise ValueError(
                f"cannot select top-{self.k} from {base.shape[1]} candidates"
            )
        if n_rows < 1:
            raise ValueError("need at least one draw")
        noisy = base + gumbel_rows(rng, n_rows, base.shape[1], scale=self.sigma)
        order = np.argsort(-noisy, axis=1, kind="stable")
        return order[:, : self.k]

    def utility_bound(self, n_candidates: int, t: float) -> float:
        """Per-rank additive error bound used in Proposition 5.1(2).

        With probability ``>= 1 - e^{-t}`` the ell-th released candidate
        scores within ``(2 Delta k / eps) * (ln |A| + t)`` of the true ell-th
        best.
        """
        if n_candidates < 1:
            raise ValueError("need at least one candidate")
        return (2.0 * self.sensitivity * self.k / self.epsilon) * (
            np.log(n_candidates) + t
        )


def iterated_em_topk(
    scores: np.ndarray,
    k: int,
    epsilon: float,
    sensitivity: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> list[int]:
    """Reference implementation: ``k`` rounds of EM at ``eps / k`` each.

    Used by tests and the ablation bench to check the One-shot mechanism's
    distributional equivalence and speed advantage.  Each round removes the
    selected candidate, exactly the procedure One-shot Top-k collapses.
    """
    from .exponential import ExponentialMechanism

    gen = ensure_rng(rng)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size < k:
        raise ValueError(f"cannot select top-{k} from {scores.size} candidates")
    em = ExponentialMechanism(epsilon / k, sensitivity)
    remaining = list(range(scores.size))
    chosen: list[int] = []
    for _ in range(k):
        idx = em.select_index(scores[remaining], gen)
        chosen.append(remaining.pop(idx))
    return chosen


# Self-register this backend's release surface with the taint manifest.
register_sanitizer("select")
register_sanitizer("select_batch")
register_sanitizer("noisy_scores")
register_sanitizer("iterated_em_topk")
