"""The exponential mechanism (Definition 2.9) with utility helpers.

Given candidates ``r in R`` with quality scores ``q(D, r)`` of sensitivity
``Delta_q``, the mechanism outputs ``r`` with probability proportional to
``exp(eps * q(D, r) / (2 * Delta_q))`` and satisfies ``eps``-DP
(Theorem 2.10).  We sample via the Gumbel-max trick — ``argmax`` of
``eps * q / (2 Delta) + Gumbel(1)`` has exactly the EM distribution — which is
numerically stable for the large score magnitudes produced by the
low-sensitivity quality functions (range up to ``|D_c|``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .budget import check_epsilon
from .manifest import register_sanitizer
from .rng import batch_score_rows, ensure_rng, gumbel_rows


@dataclass(frozen=True)
class ExponentialMechanism:
    """Private selection of one candidate by quality score.

    Parameters
    ----------
    epsilon:
        Privacy parameter of the selection.
    sensitivity:
        An upper bound ``Delta_q`` on the quality function's sensitivity
        (Definition 2.8).  Using an upper bound preserves the DP guarantee.
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        if not self.sensitivity > 0.0:
            raise ValueError("sensitivity must be positive")

    def logits(self, scores: np.ndarray) -> np.ndarray:
        """The unnormalised log-probabilities ``eps * q / (2 Delta)``."""
        scores = np.asarray(scores, dtype=np.float64)
        return self.epsilon * scores / (2.0 * self.sensitivity)

    def probabilities(self, scores: np.ndarray) -> np.ndarray:
        """Exact output distribution over candidates (for tests / analysis)."""
        logit = self.logits(scores)
        logit = logit - logit.max()
        w = np.exp(logit)
        return w / w.sum()

    def select_index(
        self, scores: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> int:
        """Sample a candidate index from the EM distribution (Gumbel-max)."""
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1 or scores.size == 0:
            raise ValueError("scores must be a non-empty 1-D array")
        gen = ensure_rng(rng)
        noisy = self.logits(scores) + gen.gumbel(size=scores.size)
        return int(np.argmax(noisy))

    def select_indices(
        self,
        scores: np.ndarray,
        n_draws: int | None = None,
        rng: "np.random.Generator | int | None | Sequence[np.random.Generator]" = None,
    ) -> np.ndarray:
        """``R`` independent EM draws in one vectorised pass.

        ``scores`` is either a shared 1-D score vector (``n_draws`` required)
        or an ``(R, n)`` matrix of per-draw score rows.  ``rng`` is a single
        generator/seed — one ``(R, n)`` Gumbel draw, *stream-identical* to
        ``R`` sequential :meth:`select_index` calls on the same generator —
        or a sequence of ``R`` generators, row ``i`` drawing its noise from
        ``rng[i]`` (matching the spawned per-seed child streams of a
        repeated-trial loop).  Row ``i`` of the returned index vector is
        distributed exactly as ``select_index(scores_i, rng_i)``.
        """
        base, n_rows = batch_score_rows(scores, n_draws)
        if n_rows < 1 or base.shape[1] == 0:
            raise ValueError("need at least one draw over non-empty scores")
        noise = gumbel_rows(rng, n_rows, base.shape[1])
        return np.argmax(self.logits(base) + noise, axis=1)

    def utility_bound(self, n_candidates: int, t: float) -> float:
        """Additive-error bound of Theorem 2.10.

        With probability at least ``1 - e^{-t}``, the selected score is within
        ``(2 Delta / eps) * (ln |R| + t)`` of the optimum.
        """
        if n_candidates < 1:
            raise ValueError("need at least one candidate")
        return (2.0 * self.sensitivity / self.epsilon) * (np.log(n_candidates) + t)


# Self-register this backend's release surface with the taint manifest:
# `repro lint --engine=flow` treats values returned by these as DP-safe.
register_sanitizer("select_index")
register_sanitizer("select_indices")
