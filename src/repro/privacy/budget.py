"""Privacy budgets and the composition calculus of Proposition 2.7.

:class:`PrivacyAccountant` is a run-time ledger for pure epsilon-DP.  Charges
are recorded with a label and combined under:

* **sequential composition** — epsilons add;
* **parallel composition** — the *max* epsilon over charges against disjoint
  input partitions counts once (modelled by :meth:`PrivacyAccountant.parallel`);
* **post-processing** — free, therefore never charged.

The DPClustX facade threads an accountant through Algorithms 1-2 so the
end-to-end guarantee of Theorem 5.3 — ``eps_CandSet + eps_TopComb + eps_Hist``
— is checked at run time rather than only on paper.

The accountant is thread-safe: the cap check and the charge append happen
atomically under an internal lock, so concurrent callers (the explanation
service's worker pool) can never jointly overspend a limit.  The
:meth:`PrivacyAccountant.snapshot` / :meth:`PrivacyAccountant.restore` pair
round-trips the ledger through plain JSON-able dicts — the unit of the
service layer's persistent per-(tenant, dataset) ledgers.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass, field
from typing import Iterator, Mapping


class BudgetError(ValueError):
    """Raised on non-positive epsilons or ledger misuse."""


def check_epsilon(epsilon: float, *, name: str = "epsilon") -> float:
    """Validate that an epsilon is a positive finite float and return it."""
    eps = float(epsilon)
    if not eps > 0.0:
        raise BudgetError(f"{name} must be positive, got {epsilon!r}")
    if not eps < float("inf"):
        raise BudgetError(f"{name} must be finite, got {epsilon!r}")
    return eps


@dataclass(frozen=True)
class Charge:
    """One recorded privacy expenditure."""

    label: str
    epsilon: float
    composition: str = "sequential"  # "sequential" | "parallel-group"


@dataclass
class PrivacyAccountant:
    """Pure-epsilon ledger with sequential and parallel composition.

    Parameters
    ----------
    limit:
        Optional hard cap; :meth:`spend` raises once the sequential total
        would exceed it (within a small float tolerance).
    """

    limit: float | None = None
    _charges: list[Charge] = field(default_factory=list)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    # Per-charge refund tokens, aligned index-for-index with ``_charges``.
    # Tokens are unique over the accountant's lifetime, so a refund can only
    # ever remove the exact charge its reservation created — two charges with
    # identical labels (same dataset+seed, different epsilon configs) are
    # still distinguishable.
    _tokens: list[int] = field(default_factory=list, repr=False, compare=False)
    _next_token: int = field(default=0, repr=False, compare=False)

    TOLERANCE = 1e-9

    def spend(self, epsilon: float, label: str) -> int:
        """Record a sequentially-composed charge of ``epsilon``.

        The cap check and the append are one atomic step under the internal
        lock, so parallel spenders cannot interleave past the limit.

        Returns an opaque token identifying *this* charge, accepted by
        :meth:`refund` — the only safe way to roll back a reservation when
        other charges may share its label.
        """
        eps = check_epsilon(epsilon, name=f"charge {label!r}")
        with self._lock:
            self._check_cap(eps, f"charge {label!r}")
            return self._append(Charge(label, eps, "sequential"))

    def parallel(self, epsilons: list[float], label: str) -> int:
        """Record charges against *disjoint* partitions; only max(eps) counts.

        This implements parallel composition (Proposition 2.7): mechanisms
        applied to disjoint subsets of the input domain jointly satisfy
        ``max_i eps_i``-DP.  Callers are responsible for the disjointness
        claim (e.g. per-cluster histograms in Algorithm 2, Line 16).

        Returns a refund token, as :meth:`spend` does.
        """
        if not epsilons:
            raise BudgetError(f"parallel charge {label!r} needs at least one epsilon")
        eps = max(check_epsilon(e, name=f"parallel charge {label!r}") for e in epsilons)
        with self._lock:
            self._check_cap(eps, f"parallel charge {label!r}")
            return self._append(Charge(label, eps, "parallel-group"))

    def _append(self, charge: Charge) -> int:
        """Append a charge and mint its token.  Caller holds the lock."""
        token = self._next_token
        self._next_token += 1
        self._charges.append(charge)
        self._tokens.append(token)
        return token

    def _check_cap(self, eps: float, what: str) -> None:
        """Raise if ``eps`` more would exceed the limit.  Caller holds the lock."""
        if self.limit is not None and self.total() + eps > self.limit + self.TOLERANCE:
            raise BudgetError(
                f"{what} of {eps} would exceed the budget limit "
                f"{self.limit} (already spent {self.total()})"
            )

    def total(self) -> float:
        """Total epsilon under sequential composition of recorded charges."""
        with self._lock:
            return float(sum(c.epsilon for c in self._charges))

    def remaining(self) -> float:
        """Remaining budget, ``inf`` when no limit was set."""
        if self.limit is None:
            return float("inf")
        return self.limit - self.total()

    def charges(self) -> tuple[Charge, ...]:
        with self._lock:
            return tuple(self._charges)

    def __iter__(self) -> Iterator[Charge]:
        return iter(self.charges())

    def summary(self) -> str:
        """Human-readable ledger dump."""
        charges = self.charges()
        lines = [f"privacy ledger (total eps = {self.total():.6g})"]
        for c in charges:
            lines.append(f"  {c.label:<40s} eps={c.epsilon:<10.6g} [{c.composition}]")
        return "\n".join(lines)

    def refund(self, token: int) -> None:
        """Remove the exact charge that :meth:`spend` minted ``token`` for.

        For infrastructure that charges *before* running a mechanism (the
        explanation service's atomic reserve-then-compute): when the
        computation fails before any data-dependent output is produced, no
        privacy was consumed and the reservation is rolled back.  Refunding
        by token cannot touch any other charge, even one with an identical
        label (same dataset+seed under a different epsilon config).  Never
        call this after a release has been observed.
        """
        with self._lock:
            try:
                i = self._tokens.index(token)
            except ValueError:
                raise BudgetError(f"no charge with token {token!r} to refund") from None
            del self._charges[i]
            del self._tokens[i]

    def refund_last(self, label: str) -> None:
        """Remove the most recent charge with ``label`` (failure refund).

        Prefer :meth:`refund` with the token returned by :meth:`spend`
        whenever distinct charges can share a label — label matching removes
        whichever matching charge is most recent, which may not be yours.
        Never call this after a release has been observed.
        """
        with self._lock:
            for i in range(len(self._charges) - 1, -1, -1):
                if self._charges[i].label == label:
                    del self._charges[i]
                    del self._tokens[i]
                    return
        raise BudgetError(f"no charge labelled {label!r} to refund")

    # -- persistence ----------------------------------------------------- #

    def snapshot(self) -> dict:
        """A JSON-able copy of the ledger (limit + ordered charges)."""
        with self._lock:
            return {
                "limit": self.limit,
                "charges": [
                    {
                        "label": c.label,
                        "epsilon": c.epsilon,
                        "composition": c.composition,
                    }
                    for c in self._charges
                ],
            }

    def restore(self, state: Mapping) -> None:
        """Replace the ledger with a :meth:`snapshot` (crash-recovery path).

        The restored charges are replayed against the *snapshot's* limit, so
        a ledger that was legal when persisted reloads verbatim; a tampered
        snapshot whose charges exceed its own limit raises
        :class:`BudgetError` and leaves the accountant unchanged.
        """
        limit = state.get("limit")
        charges = []
        spent = 0.0
        for entry in state.get("charges", ()):
            c = Charge(
                str(entry["label"]),
                check_epsilon(entry["epsilon"], name="restored charge"),
                str(entry.get("composition", "sequential")),
            )
            spent += c.epsilon
            if limit is not None and spent > float(limit) + self.TOLERANCE:
                raise BudgetError(
                    f"snapshot is overspent: {spent} exceeds its limit {limit}"
                )
            charges.append(c)
        with self._lock:
            self.limit = None if limit is None else float(limit)
            self._charges[:] = charges
            # Restored charges get fresh tokens; any token minted before the
            # restore refers to a charge that no longer exists.
            self._tokens = [self._next_token + i for i in range(len(charges))]
            self._next_token += len(charges)

    @classmethod
    def from_snapshot(cls, state: Mapping) -> "PrivacyAccountant":
        """Rebuild an accountant from a :meth:`snapshot` dict."""
        acc = cls()
        acc.restore(state)
        return acc


@dataclass(frozen=True)
class ExplanationBudget:
    """The three-way budget of Algorithm 2 / Theorem 5.3.

    ``eps_cand_set`` funds Stage-1 candidate selection, ``eps_top_comb`` the
    Stage-2 exponential mechanism, ``eps_hist`` the noisy histograms.  The
    paper's default is 0.1 each (Section 6.1).
    """

    eps_cand_set: float = 0.1
    eps_top_comb: float = 0.1
    eps_hist: float = 0.1

    def __post_init__(self) -> None:
        check_epsilon(self.eps_cand_set, name="eps_cand_set")
        check_epsilon(self.eps_top_comb, name="eps_top_comb")
        check_epsilon(self.eps_hist, name="eps_hist")

    @property
    def total(self) -> float:
        """``eps_CandSet + eps_TopComb + eps_Hist`` (Theorem 5.3)."""
        return self.eps_cand_set + self.eps_top_comb + self.eps_hist

    @property
    def selection_total(self) -> float:
        """Budget spent on attribute *selection* only (Figures 5-6 x-axis)."""
        return self.eps_cand_set + self.eps_top_comb

    @classmethod
    def split_selection(
        cls, eps_selection: float, *, eps_hist: float = 0.1
    ) -> "ExplanationBudget":
        """Paper sweep convention: ``eps_CandSet = eps_TopComb = eps/2``."""
        eps = check_epsilon(eps_selection, name="eps_selection")
        return cls(eps / 2.0, eps / 2.0, eps_hist)
