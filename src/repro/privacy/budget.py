"""Privacy budgets and the composition calculus of Proposition 2.7.

:class:`PrivacyAccountant` is a run-time ledger for pure epsilon-DP.  Charges
are recorded with a label and combined under:

* **sequential composition** — epsilons add;
* **parallel composition** — the *max* epsilon over charges against disjoint
  input partitions counts once (modelled by :meth:`PrivacyAccountant.parallel`);
* **post-processing** — free, therefore never charged.

The DPClustX facade threads an accountant through Algorithms 1-2 so the
end-to-end guarantee of Theorem 5.3 — ``eps_CandSet + eps_TopComb + eps_Hist``
— is checked at run time rather than only on paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class BudgetError(ValueError):
    """Raised on non-positive epsilons or ledger misuse."""


def check_epsilon(epsilon: float, *, name: str = "epsilon") -> float:
    """Validate that an epsilon is a positive finite float and return it."""
    eps = float(epsilon)
    if not eps > 0.0:
        raise BudgetError(f"{name} must be positive, got {epsilon!r}")
    if not eps < float("inf"):
        raise BudgetError(f"{name} must be finite, got {epsilon!r}")
    return eps


@dataclass(frozen=True)
class Charge:
    """One recorded privacy expenditure."""

    label: str
    epsilon: float
    composition: str = "sequential"  # "sequential" | "parallel-group"


@dataclass
class PrivacyAccountant:
    """Pure-epsilon ledger with sequential and parallel composition.

    Parameters
    ----------
    limit:
        Optional hard cap; :meth:`spend` raises once the sequential total
        would exceed it (within a small float tolerance).
    """

    limit: float | None = None
    _charges: list[Charge] = field(default_factory=list)

    TOLERANCE = 1e-9

    def spend(self, epsilon: float, label: str) -> None:
        """Record a sequentially-composed charge of ``epsilon``."""
        eps = check_epsilon(epsilon, name=f"charge {label!r}")
        if self.limit is not None and self.total() + eps > self.limit + self.TOLERANCE:
            raise BudgetError(
                f"charge {label!r} of {eps} would exceed the budget limit "
                f"{self.limit} (already spent {self.total()})"
            )
        self._charges.append(Charge(label, eps, "sequential"))

    def parallel(self, epsilons: list[float], label: str) -> None:
        """Record charges against *disjoint* partitions; only max(eps) counts.

        This implements parallel composition (Proposition 2.7): mechanisms
        applied to disjoint subsets of the input domain jointly satisfy
        ``max_i eps_i``-DP.  Callers are responsible for the disjointness
        claim (e.g. per-cluster histograms in Algorithm 2, Line 16).
        """
        if not epsilons:
            raise BudgetError(f"parallel charge {label!r} needs at least one epsilon")
        eps = max(check_epsilon(e, name=f"parallel charge {label!r}") for e in epsilons)
        if self.limit is not None and self.total() + eps > self.limit + self.TOLERANCE:
            raise BudgetError(
                f"parallel charge {label!r} of {eps} would exceed the budget "
                f"limit {self.limit} (already spent {self.total()})"
            )
        self._charges.append(Charge(label, eps, "parallel-group"))

    def total(self) -> float:
        """Total epsilon under sequential composition of recorded charges."""
        return float(sum(c.epsilon for c in self._charges))

    def remaining(self) -> float:
        """Remaining budget, ``inf`` when no limit was set."""
        if self.limit is None:
            return float("inf")
        return self.limit - self.total()

    def charges(self) -> tuple[Charge, ...]:
        return tuple(self._charges)

    def __iter__(self) -> Iterator[Charge]:
        return iter(self._charges)

    def summary(self) -> str:
        """Human-readable ledger dump."""
        lines = [f"privacy ledger (total eps = {self.total():.6g})"]
        for c in self._charges:
            lines.append(f"  {c.label:<40s} eps={c.epsilon:<10.6g} [{c.composition}]")
        return "\n".join(lines)


@dataclass(frozen=True)
class ExplanationBudget:
    """The three-way budget of Algorithm 2 / Theorem 5.3.

    ``eps_cand_set`` funds Stage-1 candidate selection, ``eps_top_comb`` the
    Stage-2 exponential mechanism, ``eps_hist`` the noisy histograms.  The
    paper's default is 0.1 each (Section 6.1).
    """

    eps_cand_set: float = 0.1
    eps_top_comb: float = 0.1
    eps_hist: float = 0.1

    def __post_init__(self) -> None:
        check_epsilon(self.eps_cand_set, name="eps_cand_set")
        check_epsilon(self.eps_top_comb, name="eps_top_comb")
        check_epsilon(self.eps_hist, name="eps_hist")

    @property
    def total(self) -> float:
        """``eps_CandSet + eps_TopComb + eps_Hist`` (Theorem 5.3)."""
        return self.eps_cand_set + self.eps_top_comb + self.eps_hist

    @property
    def selection_total(self) -> float:
        """Budget spent on attribute *selection* only (Figures 5-6 x-axis)."""
        return self.eps_cand_set + self.eps_top_comb

    @classmethod
    def split_selection(
        cls, eps_selection: float, *, eps_hist: float = 0.1
    ) -> "ExplanationBudget":
        """Paper sweep convention: ``eps_CandSet = eps_TopComb = eps/2``."""
        eps = check_epsilon(eps_selection, name="eps_selection")
        return cls(eps / 2.0, eps / 2.0, eps_hist)
