"""Privacy budgets and the composition calculus of Proposition 2.7.

:class:`PrivacyAccountant` is a run-time ledger for pure epsilon-DP.  Charges
are recorded with a label and combined under:

* **sequential composition** — epsilons add;
* **parallel composition** — the *max* epsilon over charges against disjoint
  input partitions counts once (modelled by :meth:`PrivacyAccountant.parallel`);
* **post-processing** — free, therefore never charged.

The DPClustX facade threads an accountant through Algorithms 1-2 so the
end-to-end guarantee of Theorem 5.3 — ``eps_CandSet + eps_TopComb + eps_Hist``
— is checked at run time rather than only on paper.

Exact integer accounting
------------------------

The ledger does **no float arithmetic on the admission path**.  Every
epsilon is quantized onto a fixed rational grid of *nano-epsilon* units
(:data:`GRID` = 1e9 units per unit of epsilon) the moment it enters the
accountant, and all cap checks are integer compare-and-add:

* **Quantization policy** — an incoming float ``eps`` maps to
  ``round(Fraction(eps) * GRID)`` (exact binary-rational arithmetic,
  ties-to-even).  Two floats within half a nano-eps of the same grid point
  coincide; a positive epsilon that rounds to zero units is *below the grid*
  and refused.  The float is kept verbatim on the
  :class:`Charge` for audit display; the ``units`` integer is the accounting
  truth.
* **Exactness** — a charge sequence whose quantized units sum exactly to the
  quantized cap is admitted in full, and any further positive epsilon is
  refused.  There is no tolerance window: the pre-PR-5 ``TOLERANCE = 1e-9``
  slack (which admitted up to a nano-eps *past* the cap and required an
  O(n) re-sum of the ledger per charge) is gone.
* **O(1) admission** — the accountant maintains a running
  ``_spent_units`` integer, so :meth:`spend` / :meth:`parallel` /
  :meth:`can_spend` cost one integer comparison regardless of ledger length.

The accountant is thread-safe: the cap check and the charge append happen
atomically under an internal lock, so concurrent callers (the explanation
service's worker pool) can never jointly overspend a limit.  The
:meth:`PrivacyAccountant.snapshot` / :meth:`PrivacyAccountant.restore` pair
round-trips the ledger through plain JSON-able dicts; snapshots written by
the pre-quantization format (float epsilons only) load via quantization.
An optional mutation observer (:meth:`PrivacyAccountant.set_observer`) is
invoked under the lock for every charge/refund — the hook the service
layer's append-only ledger journal hangs off.
"""

from __future__ import annotations

import threading
import warnings

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterator, Mapping

#: Nano-epsilon grid: integer accounting units per 1.0 of epsilon.
GRID = 10**9


class BudgetError(ValueError):
    """Raised on non-positive epsilons or ledger misuse."""


def check_epsilon(epsilon: float, *, name: str = "epsilon") -> float:
    """Validate that an epsilon is a positive finite float and return it."""
    eps = float(epsilon)
    if not eps > 0.0:
        raise BudgetError(f"{name} must be positive, got {epsilon!r}")
    if not eps < float("inf"):
        raise BudgetError(f"{name} must be finite, got {epsilon!r}")
    return eps


def quantize_epsilon(epsilon: float, *, name: str = "epsilon") -> int:
    """Map an epsilon onto the integer nano-eps grid (the quantization policy).

    ``round(Fraction(eps) * GRID)`` — the float's exact binary rational,
    scaled and rounded to the nearest grid point (ties-to-even), so e.g.
    three charges of float ``0.1`` sum to *exactly* the quantization of a
    ``0.3`` cap.  Raises :class:`BudgetError` for epsilons that are invalid
    or so small they round to zero units (below the grid's resolution).
    """
    eps = check_epsilon(epsilon, name=name)
    units = int(round(Fraction(eps) * GRID))
    if units <= 0:
        raise BudgetError(
            f"{name} {epsilon!r} is below the accounting grid "
            f"(resolution 1/{GRID} epsilon)"
        )
    return units


def epsilon_from_units(units: int) -> float:
    """The float epsilon a grid-unit count represents (display only)."""
    return units / GRID


@dataclass(frozen=True)
class Charge:
    """One recorded privacy expenditure.

    ``epsilon`` is the caller's float, kept verbatim for audit display;
    ``units`` is its exact grid quantization and the value the accountant
    actually sums.  ``units=0`` (the default) derives units from
    ``epsilon`` — the back-compat path for charges rebuilt from
    pre-quantization snapshots.
    """

    label: str
    epsilon: float
    composition: str = "sequential"  # "sequential" | "parallel-group"
    units: int = 0

    def __post_init__(self) -> None:
        if self.units <= 0:
            object.__setattr__(
                self, "units", quantize_epsilon(self.epsilon, name="charge")
            )


@dataclass(frozen=True)
class Balance:
    """One atomic read of a ledger's position: spent/remaining/limit together.

    Produced by :meth:`PrivacyAccountant.balance` under a single lock
    acquisition, so ``spent + remaining == limit`` holds exactly (in units)
    even while other threads charge — the invariant separate ``total()`` /
    ``remaining()`` calls cannot give.
    """

    spent: float
    remaining: float
    limit: float | None
    spent_units: int
    remaining_units: int | None
    limit_units: int | None


class PrivacyAccountant:
    """Pure-epsilon ledger with sequential and parallel composition.

    Parameters
    ----------
    limit:
        Optional hard cap; :meth:`spend` raises once the sequential total
        would exceed it.  Admission is exact on the nano-eps grid: the cap
        fills to the last unit and refuses the first unit past it.
    """

    def __init__(self, limit: float | None = None):
        self._lock = threading.RLock()
        self._charges: list[Charge] = []
        # Per-charge refund tokens, aligned index-for-index with _charges.
        # Tokens are unique over the accountant's lifetime, so a refund can
        # only ever remove the exact charge its reservation created — two
        # charges with identical labels (same dataset+seed, different
        # epsilon configs) are still distinguishable.  snapshot()/restore()
        # preserve tokens, so a charge's identity survives persistence (the
        # journal layer keys replay on it).
        self._tokens: list[int] = []
        self._next_token = 0
        self._spent_units = 0
        self._limit: float | None = None
        self._limit_units: int | None = None
        self._observer: "Callable[[dict], None] | None" = None
        if limit is not None:
            self._set_limit(limit)

    def __repr__(self) -> str:
        return (
            f"PrivacyAccountant(limit={self._limit!r}, "
            f"charges={len(self._charges)}, spent_units={self._spent_units})"
        )

    # -- limit ------------------------------------------------------------ #

    def _set_limit(self, limit: float | None) -> None:
        if limit is None:
            self._limit = None
            self._limit_units = None
        else:
            value = float(limit)
            self._limit = value
            self._limit_units = quantize_epsilon(value, name="limit")

    @property
    def limit(self) -> float | None:
        return self._limit

    @limit.setter
    def limit(self, value: float | None) -> None:
        with self._lock:
            self._set_limit(value)

    # -- observer --------------------------------------------------------- #

    def set_observer(self, observer: "Callable[[dict], None] | None") -> None:
        """Install a mutation hook, called *under the ledger lock* with one
        event dict per charge (``{"op": "charge", "token", "label",
        "epsilon", "units", "composition"}``) or refund (``{"op": "refund",
        "token", "units"}``).  Both events also carry the post-mutation
        position (``"spent_units"``, ``"limit_units"``) so telemetry sinks
        can publish budget-remaining gauges without a second lock round —
        the journal layer strips these before persisting.  The service
        layer's journal appends (and fsyncs) its record inside this hook,
        so a charge is durable before :meth:`spend` returns — i.e. before
        any mechanism draws noise against it.  :meth:`restore` does *not*
        emit events; callers that restore a wired accountant must resync
        their sink out-of-band.
        """
        with self._lock:
            self._observer = observer

    def _notify(self, event: dict) -> None:
        if self._observer is not None:
            self._observer(event)

    # -- charging --------------------------------------------------------- #

    def spend(self, epsilon: float, label: str) -> int:
        """Record a sequentially-composed charge of ``epsilon``.

        The cap check and the append are one atomic O(1) step under the
        internal lock (integer compare-and-add on the running units total),
        so parallel spenders cannot interleave past the limit and admission
        cost does not grow with ledger length.

        Returns an opaque token identifying *this* charge, accepted by
        :meth:`refund` — the only safe way to roll back a reservation when
        other charges may share its label.
        """
        what = f"charge {label!r}"
        eps = check_epsilon(epsilon, name=what)
        units = quantize_epsilon(eps, name=what)
        with self._lock:
            self._admit(units, what)
            return self._append(Charge(label, eps, "sequential", units))

    def parallel(self, epsilons: list[float], label: str) -> int:
        """Record charges against *disjoint* partitions; only max(eps) counts.

        This implements parallel composition (Proposition 2.7): mechanisms
        applied to disjoint subsets of the input domain jointly satisfy
        ``max_i eps_i``-DP.  Callers are responsible for the disjointness
        claim (e.g. per-cluster histograms in Algorithm 2, Line 16).

        Returns a refund token, as :meth:`spend` does.
        """
        what = f"parallel charge {label!r}"
        if not epsilons:
            raise BudgetError(f"{what} needs at least one epsilon")
        eps = max(check_epsilon(e, name=what) for e in epsilons)
        units = max(quantize_epsilon(e, name=what) for e in epsilons)
        with self._lock:
            self._admit(units, what)
            return self._append(Charge(label, eps, "parallel-group", units))

    def can_spend(self, epsilon: float) -> bool:
        """O(1) admission query: would a charge of ``epsilon`` be admitted?

        The exact same integer comparison :meth:`spend` performs, without
        mutating the ledger — the replacement for the pre-PR-5 callers that
        re-derived admission as ``epsilon > remaining + TOLERANCE``.
        """
        units = quantize_epsilon(epsilon)
        with self._lock:
            if self._limit_units is None:
                return True
            return self._spent_units + units <= self._limit_units

    def _admit(self, units: int, what: str) -> None:
        """Raise if ``units`` more would exceed the limit.  Caller holds the
        lock.  One integer compare — no ledger traversal, no tolerance."""
        if (
            self._limit_units is not None
            and self._spent_units + units > self._limit_units
        ):
            raise BudgetError(
                f"{what} of {epsilon_from_units(units)} would exceed the "
                f"budget limit {self._limit} "
                f"(already spent {epsilon_from_units(self._spent_units)})"
            )

    def _append(self, charge: Charge) -> int:
        """Append a charge and mint its token.  Caller holds the lock.

        If the observer (the durability hook) fails, the in-memory charge
        is rolled back before the error propagates: a charge that could
        not be journaled must not stand in memory either, or memory and
        disk diverge and the epsilon is burned with no token to refund it
        by.  Nothing was released (the caller's ``spend`` raises before
        any mechanism runs), so the rollback is privacy-safe; the token is
        retired either way, never re-minted.
        """
        token = self._next_token
        self._next_token += 1
        self._charges.append(charge)
        self._tokens.append(token)
        self._spent_units += charge.units
        try:
            self._notify(
                {
                    "op": "charge",
                    "token": token,
                    "label": charge.label,
                    "epsilon": charge.epsilon,
                    "units": charge.units,
                    "composition": charge.composition,
                    "spent_units": self._spent_units,
                    "limit_units": self._limit_units,
                }
            )
        except BaseException:
            self._charges.pop()
            self._tokens.pop()
            self._spent_units -= charge.units
            raise
        return token

    # -- introspection ---------------------------------------------------- #

    def total(self) -> float:
        """Total epsilon under sequential composition of recorded charges."""
        with self._lock:
            return epsilon_from_units(self._spent_units)

    def total_units(self) -> int:
        """The running units total — the exact integer the cap checks use."""
        with self._lock:
            return self._spent_units

    def remaining(self) -> float:
        """Remaining budget, ``inf`` when no limit was set."""
        return self.balance().remaining

    def balance(self) -> Balance:
        """Spent, remaining and limit in **one** locked read.

        Concurrent charges can land between two separate ``total()`` /
        ``remaining()`` calls, yielding stats where spent + remaining !=
        limit; this method is the atomic alternative every reporting path
        (service ``/v1/ledger``, ``/v1/stats``, refusal envelopes,
        :meth:`summary`) goes through.
        """
        with self._lock:
            spent_units = self._spent_units
            limit_units = self._limit_units
            limit = self._limit
        if limit_units is None:
            return Balance(
                spent=epsilon_from_units(spent_units),
                remaining=float("inf"),
                limit=None,
                spent_units=spent_units,
                remaining_units=None,
                limit_units=None,
            )
        remaining_units = limit_units - spent_units
        return Balance(
            spent=epsilon_from_units(spent_units),
            remaining=epsilon_from_units(remaining_units),
            limit=limit,
            spent_units=spent_units,
            remaining_units=remaining_units,
            limit_units=limit_units,
        )

    def charges(self) -> tuple[Charge, ...]:
        with self._lock:
            return tuple(self._charges)

    def __iter__(self) -> Iterator[Charge]:
        return iter(self.charges())

    def summary(self) -> str:
        """Human-readable ledger dump (total and rows from one locked read)."""
        with self._lock:
            total = epsilon_from_units(self._spent_units)
            charges = tuple(self._charges)
        lines = [f"privacy ledger (total eps = {total:.6g})"]
        for c in charges:
            lines.append(f"  {c.label:<40s} eps={c.epsilon:<10.6g} [{c.composition}]")
        return "\n".join(lines)

    # -- refunds ----------------------------------------------------------- #

    def refund(self, token: int) -> None:
        """Remove the exact charge that :meth:`spend` minted ``token`` for.

        For infrastructure that charges *before* running a mechanism (the
        explanation service's atomic reserve-then-compute): when the
        computation fails before any data-dependent output is produced, no
        privacy was consumed and the reservation is rolled back.  Refunding
        by token cannot touch any other charge, even one with an identical
        label (same dataset+seed under a different epsilon config).  Never
        call this after a release has been observed.
        """
        with self._lock:
            try:
                i = self._tokens.index(token)
            except ValueError:
                raise BudgetError(f"no charge with token {token!r} to refund") from None
            self._remove_at(i)

    def refund_last(self, label: str) -> None:
        """Remove the most recent charge with ``label`` (failure refund).

        .. deprecated:: PR 5
            Label-matched refunds are unsafe — two distinct charges can
            share a label (same dataset+seed, different epsilon configs),
            and this removes whichever matching charge is most recent,
            which may not be yours.  The service layer stopped using it
            when :meth:`spend` grew refund tokens; use :meth:`refund` with
            the token instead.  Behaviour is unchanged for now.
        """
        warnings.warn(
            "PrivacyAccountant.refund_last is deprecated: label-matched "
            "refunds can remove another caller's charge when labels "
            "collide; use refund(token) with the token spend() returned",
            DeprecationWarning,
            stacklevel=2,
        )
        with self._lock:
            for i in range(len(self._charges) - 1, -1, -1):
                if self._charges[i].label == label:
                    self._remove_at(i)
                    return
        raise BudgetError(f"no charge labelled {label!r} to refund")

    def _remove_at(self, i: int) -> None:
        """Drop charge row ``i`` and its token.  Caller holds the lock.

        Mirror of :meth:`_append`'s rollback: if the refund record cannot
        be journaled, the charge is reinstated and the error propagates —
        the ledger keeps the spend (overcounting: safe in the privacy
        direction) rather than letting memory and disk diverge.
        """
        charge = self._charges[i]
        token = self._tokens[i]
        del self._charges[i]
        del self._tokens[i]
        self._spent_units -= charge.units
        try:
            self._notify(
                {
                    "op": "refund",
                    "token": token,
                    "units": charge.units,
                    "spent_units": self._spent_units,
                    "limit_units": self._limit_units,
                }
            )
        except BaseException:
            self._charges.insert(i, charge)
            self._tokens.insert(i, token)
            self._spent_units += charge.units
            raise

    # -- persistence ----------------------------------------------------- #

    def snapshot(self) -> dict:
        """A JSON-able copy of the ledger (limit + ordered charges).

        Each charge carries its exact ``units`` and its refund ``token``
        (plus ``next_token``), so a restore reconstructs charge identity —
        the property the service journal's replay keys on.  Pre-PR-5
        readers ignore the extra fields; pre-PR-5 *snapshots* (float
        epsilons only) load back via quantization.
        """
        with self._lock:
            return {
                "limit": self._limit,
                "next_token": self._next_token,
                "charges": [
                    {
                        "label": c.label,
                        "epsilon": c.epsilon,
                        "composition": c.composition,
                        "units": c.units,
                        "token": t,
                    }
                    for c, t in zip(self._charges, self._tokens)
                ],
            }

    def restore(self, state: Mapping) -> None:
        """Replace the ledger with a :meth:`snapshot` (crash-recovery path).

        The restored charges are replayed against the *snapshot's* limit, so
        a ledger that was legal when persisted reloads verbatim; a tampered
        snapshot whose charges exceed its own limit raises
        :class:`BudgetError` and leaves the accountant unchanged.  The
        replay is exact integer arithmetic: charges carry their ``units``
        when present (format 2) and are quantized from their float epsilon
        otherwise (pre-PR-5 snapshots), and the overspend check has no
        tolerance window.

        Charge tokens are preserved when the snapshot carries them (so
        persisted charge identity survives a restart); a token-less legacy
        snapshot mints fresh tokens, invalidating any token from before the
        restore.
        """
        limit = state.get("limit")
        limit_units = (
            None if limit is None else quantize_epsilon(float(limit), name="limit")
        )
        charges: list[Charge] = []
        tokens: list[int] = []
        spent_units = 0
        for entry in state.get("charges", ()):
            eps = check_epsilon(entry["epsilon"], name="restored charge")
            raw_units = entry.get("units")
            units = (
                int(raw_units)
                if raw_units is not None
                else quantize_epsilon(eps, name="restored charge")
            )
            if units <= 0:
                raise BudgetError(
                    f"restored charge has non-positive units {raw_units!r}"
                )
            c = Charge(
                str(entry["label"]),
                eps,
                str(entry.get("composition", "sequential")),
                units,
            )
            spent_units += units
            if limit_units is not None and spent_units > limit_units:
                raise BudgetError(
                    f"snapshot is overspent: {epsilon_from_units(spent_units)} "
                    f"exceeds its limit {limit}"
                )
            charges.append(c)
            token = entry.get("token")
            tokens.append(int(token) if token is not None else -1)
        have_tokens = all(t >= 0 for t in tokens) and len(set(tokens)) == len(tokens)
        with self._lock:
            self._set_limit(limit)
            self._charges[:] = charges
            if have_tokens:
                self._tokens = tokens
                floor = max(tokens) + 1 if tokens else 0
                self._next_token = max(
                    self._next_token, floor, int(state.get("next_token", 0))
                )
            else:
                # Legacy snapshot: restored charges get fresh tokens; any
                # token minted before the restore refers to a charge that
                # no longer exists.  The fresh mint starts at or above the
                # snapshot's own next_token so it can never re-issue a
                # token that a journal record already names — a collision
                # would make the journal's idempotent replay silently drop
                # the newer charge (a privacy-budget undercount).
                base = max(self._next_token, int(state.get("next_token", 0)))
                self._tokens = [base + i for i in range(len(charges))]
                self._next_token = base + len(charges)
            self._spent_units = spent_units

    @classmethod
    def from_snapshot(cls, state: Mapping) -> "PrivacyAccountant":
        """Rebuild an accountant from a :meth:`snapshot` dict."""
        acc = cls()
        acc.restore(state)
        return acc


@dataclass(frozen=True)
class ExplanationBudget:
    """The three-way budget of Algorithm 2 / Theorem 5.3.

    ``eps_cand_set`` funds Stage-1 candidate selection, ``eps_top_comb`` the
    Stage-2 exponential mechanism, ``eps_hist`` the noisy histograms.  The
    paper's default is 0.1 each (Section 6.1).
    """

    eps_cand_set: float = 0.1
    eps_top_comb: float = 0.1
    eps_hist: float = 0.1

    def __post_init__(self) -> None:
        check_epsilon(self.eps_cand_set, name="eps_cand_set")
        check_epsilon(self.eps_top_comb, name="eps_top_comb")
        check_epsilon(self.eps_hist, name="eps_hist")

    @property
    def total(self) -> float:
        """``eps_CandSet + eps_TopComb + eps_Hist`` (Theorem 5.3)."""
        return self.eps_cand_set + self.eps_top_comb + self.eps_hist

    @property
    def selection_total(self) -> float:
        """Budget spent on attribute *selection* only (Figures 5-6 x-axis)."""
        return self.eps_cand_set + self.eps_top_comb

    @classmethod
    def split_selection(
        cls, eps_selection: float, *, eps_hist: float = 0.1
    ) -> "ExplanationBudget":
        """Paper sweep convention: ``eps_CandSet = eps_TopComb = eps/2``."""
        eps = check_epsilon(eps_selection, name="eps_selection")
        return cls(eps / 2.0, eps / 2.0, eps_hist)
