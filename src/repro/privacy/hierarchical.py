"""Hierarchical DP histograms with constrained inference (Hay et al. [29]).

The paper's reference [29] ("Boosting the Accuracy of Differentially Private
Histograms Through Consistency") releases a *tree* of noisy interval counts
over the domain and post-processes it into a consistent estimate.  Compared
to the flat per-bin mechanisms, leaves get noisier (the budget splits across
``h`` levels) but *range queries* — sums over contiguous bins, e.g. "how many
patients with lab_proc >= 50", precisely the cumulative statements our
textual descriptions make — improve from ``Theta(r)`` noise terms to
``O(log r)``.

Mechanism.  Build a ``b``-ary interval tree over the (padded) domain.  Each
*level* is a partition of the domain, so releases within a level compose in
parallel; the ``h`` levels compose sequentially, giving each node Laplace
noise at ``eps / h``.  Constrained inference is Hay et al.'s two-pass
weighted least squares:

* upward: ``z[v] = ((b^l - b^(l-1)) / (b^l - 1)) * noisy[v]
  + ((b^(l-1) - 1) / (b^l - 1)) * sum(z[children])`` (leaves: ``z = noisy``),
  where ``l`` is the node's height (leaves at ``l = 1``);
* downward: ``hbar[root] = z[root]``; for a child ``u`` of ``v``:
  ``hbar[u] = z[u] + (hbar[v] - sum(z[siblings incl. u])) / b``.

The released histogram is the leaf vector of ``hbar`` (consistent by
construction: children sum to parents).  All inference is post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.table import Dataset
from .budget import check_epsilon
from .manifest import register_sanitizer
from .mechanisms import LaplaceMechanism
from .rng import ensure_rng


def _tree_shape(n_bins: int, branching: int) -> tuple[int, int]:
    """(padded leaf count, number of levels) for the interval tree."""
    if n_bins < 1:
        raise ValueError("need at least one bin")
    if branching < 2:
        raise ValueError("branching factor must be >= 2")
    height = 1
    leaves = 1
    while leaves < n_bins:
        leaves *= branching
        height += 1
    return leaves, height


@dataclass(frozen=True)
class HierarchicalHistogram:
    """Tree-structured DP histogram release with consistency post-processing.

    Implements the same protocol as the flat mechanisms
    (:class:`~repro.privacy.histograms.GeometricHistogram`), so it drops into
    ``DPClustX(histogram_mechanism=HierarchicalHistogram(1.0))`` unchanged.
    """

    epsilon: float
    branching: int = 2
    clamp_negative: bool = True

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        if self.branching < 2:
            raise ValueError("branching factor must be >= 2")

    def release(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Release a consistent noisy histogram over ``len(counts)`` bins."""
        gen = ensure_rng(rng)
        counts = np.asarray(counts, dtype=np.float64)
        m = counts.shape[0]
        leaves, height = _tree_shape(m, self.branching)
        if height == 1:  # single bin: flat Laplace release
            mech = LaplaceMechanism(self.epsilon, 1.0)
            out = np.asarray(mech.randomise(counts, gen), dtype=np.float64)
            return np.maximum(out, 0.0) if self.clamp_negative else out

        padded = np.zeros(leaves)
        padded[:m] = counts

        # levels[0] = leaves ... levels[-1] = root; true interval sums.
        levels = [padded]
        while levels[-1].shape[0] > 1:
            levels.append(levels[-1].reshape(-1, self.branching).sum(axis=1))

        eps_level = self.epsilon / height
        mech = LaplaceMechanism(eps_level, 1.0)
        noisy = [np.asarray(mech.randomise(level, gen)) for level in levels]

        z = self._upward_pass(noisy)
        hbar = self._downward_pass(z)
        out = hbar[0][:m]
        if self.clamp_negative:
            out = np.maximum(out, 0.0)
        return out

    def _upward_pass(self, noisy: list[np.ndarray]) -> list[np.ndarray]:
        b = float(self.branching)
        z: list[np.ndarray] = [noisy[0].copy()]
        for l in range(1, len(noisy)):  # height l+1 in Hay et al.'s indexing
            child_sums = z[l - 1].reshape(-1, self.branching).sum(axis=1)
            bl = b ** (l + 1)
            bl1 = b**l
            alpha = (bl - bl1) / (bl - 1.0)
            beta = (bl1 - 1.0) / (bl - 1.0)
            z.append(alpha * noisy[l] + beta * child_sums)
        return z

    def _downward_pass(self, z: list[np.ndarray]) -> list[np.ndarray]:
        b = float(self.branching)
        hbar: list[np.ndarray] = [None] * len(z)  # type: ignore[list-item]
        hbar[-1] = z[-1].copy()
        for l in range(len(z) - 2, -1, -1):
            parents = hbar[l + 1]
            child_z = z[l].reshape(-1, self.branching)
            correction = (parents - child_z.sum(axis=1)) / b
            hbar[l] = (child_z + correction[:, None]).reshape(-1)
        return hbar

    def release_column(
        self,
        dataset: Dataset,
        attribute: str,
        rng: np.random.Generator | int | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """``M_hist(pi_A(D), eps)`` with the hierarchical mechanism."""
        return self.release(dataset.histogram(attribute, mask=mask), rng)

    def with_epsilon(self, epsilon: float) -> "HierarchicalHistogram":
        return HierarchicalHistogram(epsilon, self.branching, self.clamp_negative)

    def range_query(
        self,
        released: np.ndarray,
        lo: int,
        hi: int,
    ) -> float:
        """Sum of released bins ``[lo, hi)`` (pure post-processing)."""
        if not 0 <= lo <= hi <= len(released):
            raise ValueError("invalid range")
        return float(np.asarray(released)[lo:hi].sum())

    def expected_leaf_variance(self, n_bins: int) -> float:
        """Upper bound on per-leaf variance before inference: ``2 (h/eps)^2``.

        Constrained inference only reduces it; used by tests as a sanity
        ceiling.
        """
        _, height = _tree_shape(n_bins, self.branching)
        scale = height / self.epsilon
        return 2.0 * scale * scale


# Self-register this backend's release surface with the taint manifest.
register_sanitizer("release")
register_sanitizer("release_column")
