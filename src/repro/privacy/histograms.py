"""Differentially private histogram release — the ``M_hist`` of Algorithm 2.

DPClustX is agnostic to the histogram mechanism ("can be instantiated with
any DP histogram generation mechanism", Section 2.1); the paper's experiments
use the Geometric mechanism as implemented by diffprivlib.  We provide:

* :class:`GeometricHistogram` — the default, adding two-sided geometric noise
  to every count (sensitivity 1 per count under add/remove-one neighboring,
  i.e. a per-bin L1 sensitivity of 1, since one tuple touches one bin);
* :class:`LaplaceHistogram` — real-valued alternative;
* both optionally clamp negatives to zero (post-processing, free).

Each mechanism exposes ``release(counts, rng)`` so it can consume a
pre-computed count vector, and ``release_column(dataset, attr, rng)`` matching
the paper's ``M_hist(pi_A(D), eps_hist)`` signature.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..dataset.table import Dataset
from .budget import check_epsilon
from .manifest import register_sanitizer
from .mechanisms import GeometricMechanism, LaplaceMechanism
from .rng import ensure_rng


@functools.lru_cache(maxsize=32)
def _geometric_block_plan(
    shapes: "tuple[tuple[int, int], ...]",
) -> "tuple[np.ndarray, np.ndarray, tuple[int, ...], int]":
    """Gather plan for a multi-block geometric release.

    For blocks of the given ``(R_i, m_i)`` shapes, returns the positions of
    the positive/negative geometric draws inside one flat sample that
    consumes the stream in per-row-interleaved order (row ``r`` of a block:
    ``m`` positive draws, then ``m`` negative), plus the per-block split
    offsets of the flattened output and the total draw count.  Cached:
    sweeps release the same block structure thousands of times.
    """
    pos_idx: list[np.ndarray] = []
    neg_idx: list[np.ndarray] = []
    splits = [0]
    pos = 0
    for r, m in shapes:
        rows = pos + 2 * m * np.arange(r, dtype=np.intp)[:, None]
        cols = np.arange(m, dtype=np.intp)
        pos_idx.append((rows + cols).ravel())
        neg_idx.append((rows + m + cols).ravel())
        pos += 2 * r * m
        splits.append(splits[-1] + r * m)
    return (
        np.concatenate(pos_idx) if pos_idx else np.empty(0, dtype=np.intp),
        np.concatenate(neg_idx) if neg_idx else np.empty(0, dtype=np.intp),
        tuple(splits),
        pos,
    )


class HistogramMechanism(Protocol):
    """Structural interface for ``M_hist``: any eps-DP histogram release."""

    epsilon: float

    def release(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray: ...

    def release_rows(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray: ...

    def release_blocks(
        self,
        blocks: "Sequence[np.ndarray]",
        rng: np.random.Generator | int | None = None,
    ) -> "list[np.ndarray]": ...

    def release_column(
        self,
        dataset: Dataset,
        attribute: str,
        rng: np.random.Generator | int | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray: ...

    def with_epsilon(self, epsilon: float) -> "HistogramMechanism": ...


@dataclass(frozen=True)
class GeometricHistogram:
    """Per-bin two-sided geometric noise (the paper's default ``M_hist``)."""

    epsilon: float
    clamp_negative: bool = True

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)

    def release(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Add geometric noise to a count vector; clamp to >= 0 if configured."""
        counts = np.asarray(counts, dtype=np.int64)
        mech = GeometricMechanism(self.epsilon, sensitivity=1.0)
        noisy = counts + mech.sample_noise(counts.shape, rng)
        if self.clamp_negative:
            noisy = np.maximum(noisy, 0)
        return noisy.astype(np.float64)

    def release_rows(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Release every row of an ``(R, m)`` count matrix in one call.

        The two one-sided geometric streams are drawn as a single
        ``(R, 2, m)`` sample, which consumes the generator in exactly the
        order of the per-row loop (row ``r``: ``m`` draws for the positive
        side, then ``m`` for the negative) — the output is therefore
        *stream-identical* to ``np.stack([release(row, rng) for row in
        counts])`` on the same generator.  Used to batch per-cluster
        histogram releases (clusters compose in parallel, so one call
        spends the same ``epsilon`` as the loop).
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("counts must be an (R, m) matrix")
        gen = ensure_rng(rng)
        p = 1.0 - float(np.exp(-self.epsilon))
        g = gen.geometric(p, size=(counts.shape[0], 2, counts.shape[1]))
        noisy = counts + (g[:, 0, :] - g[:, 1, :]).astype(np.int64)
        if self.clamp_negative:
            noisy = np.maximum(noisy, 0)
        return noisy.astype(np.float64)

    def release_blocks(
        self,
        blocks: "Sequence[np.ndarray]",
        rng: np.random.Generator | int | None = None,
    ) -> "list[np.ndarray]":
        """Release a sequence of ``(R_i, m_i)`` count matrices in one draw.

        One flat geometric sample covers every block and is consumed
        block-by-block in row-major ``(R_i, 2, m_i)`` order, so the output
        is *stream-identical* to sequential :meth:`release_rows` calls (and
        hence to the fully scalar release loop).  This collapses the
        ``|A| * (|C| + 1)`` generator round-trips of an all-histograms
        release (DP-Naive) into a single one per seed; the composition
        accounting is unchanged — noise is i.i.d. per count either way.
        """
        mats = [np.asarray(b, dtype=np.int64) for b in blocks]
        for m in mats:
            if m.ndim != 2:
                raise ValueError("every block must be an (R, m) matrix")
        gen = ensure_rng(rng)
        p = 1.0 - float(np.exp(-self.epsilon))
        shapes = tuple(m.shape for m in mats)
        pos_idx, neg_idx, splits, total = _geometric_block_plan(shapes)
        flat = gen.geometric(p, size=total)
        true_flat = (
            np.concatenate([m.ravel() for m in mats])
            if mats
            else np.empty(0, dtype=np.int64)
        )
        noisy_flat = true_flat + flat[pos_idx] - flat[neg_idx]
        if self.clamp_negative:
            np.maximum(noisy_flat, 0, out=noisy_flat)
        noisy_flat = noisy_flat.astype(np.float64)
        return [
            noisy_flat[splits[i] : splits[i + 1]].reshape(m.shape)
            for i, m in enumerate(mats)
        ]

    def release_column(
        self,
        dataset: Dataset,
        attribute: str,
        rng: np.random.Generator | int | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """``M_hist(pi_A(D), eps)`` over the full domain ``dom(A)``."""
        return self.release(dataset.histogram(attribute, mask=mask), rng)

    def with_epsilon(self, epsilon: float) -> "GeometricHistogram":
        return GeometricHistogram(epsilon, self.clamp_negative)

    def expected_l1_error(self, domain_size: int) -> float:
        """Expected L1 noise mass over a ``domain_size``-bin histogram."""
        a = float(np.exp(-self.epsilon))
        # E|Z| for the two-sided geometric with decay alpha.
        per_bin = 2.0 * a / (1.0 - a * a)
        return per_bin * domain_size


@dataclass(frozen=True)
class LaplaceHistogram:
    """Per-bin Laplace(1/eps) noise — the classical real-valued variant."""

    epsilon: float
    clamp_negative: bool = True

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)

    def release(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.float64)
        mech = LaplaceMechanism(self.epsilon, sensitivity=1.0)
        noisy = np.asarray(mech.randomise(counts, ensure_rng(rng)))
        if self.clamp_negative:
            noisy = np.maximum(noisy, 0.0)
        return noisy

    def release_rows(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Release every row of an ``(R, m)`` count matrix in one call.

        Laplace noise is drawn value-by-value from the stream, so a single
        ``(R, m)`` draw is already *stream-identical* to the per-row loop on
        the same generator (parallel composition across rows, as for the
        geometric variant).
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 2:
            raise ValueError("counts must be an (R, m) matrix")
        return self.release(counts, rng)

    def release_blocks(
        self,
        blocks: "Sequence[np.ndarray]",
        rng: np.random.Generator | int | None = None,
    ) -> "list[np.ndarray]":
        """Release a sequence of ``(R_i, m_i)`` count matrices in one draw.

        One flat Laplace sample is consumed block-by-block in row-major
        order — stream-identical to sequential :meth:`release_rows` calls.
        """
        mats = [np.asarray(b, dtype=np.float64) for b in blocks]
        for m in mats:
            if m.ndim != 2:
                raise ValueError("every block must be an (R, m) matrix")
        gen = ensure_rng(rng)
        scale = 1.0 / self.epsilon
        total = int(sum(m.size for m in mats))
        flat = gen.laplace(loc=0.0, scale=scale, size=total)
        out: list[np.ndarray] = []
        pos = 0
        for m in mats:
            noisy = m + flat[pos : pos + m.size].reshape(m.shape)
            pos += m.size
            if self.clamp_negative:
                noisy = np.maximum(noisy, 0.0)
            out.append(noisy)
        return out

    def release_column(
        self,
        dataset: Dataset,
        attribute: str,
        rng: np.random.Generator | int | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        return self.release(dataset.histogram(attribute, mask=mask), rng)

    def with_epsilon(self, epsilon: float) -> "LaplaceHistogram":
        return LaplaceHistogram(epsilon, self.clamp_negative)

    def expected_l1_error(self, domain_size: int) -> float:
        return domain_size / self.epsilon


def epsilon_for_l1_error(
    domain_size: int, target_l1: float, mechanism: str = "laplace"
) -> float:
    """Translate an accuracy requirement into a histogram budget.

    The paper notes DP histogram mechanisms "are accompanied by utility
    bounds, enabling accuracy control by translating accuracy requirements
    into the required privacy budget" (Section 2.1).  For Laplace the
    expected L1 error of an ``m``-bin histogram is ``m / eps``; solve for eps.
    For the geometric mechanism we invert its expected error numerically.
    """
    if domain_size < 1:
        raise ValueError("domain_size must be >= 1")
    if not target_l1 > 0:
        raise ValueError("target_l1 must be positive")
    if mechanism == "laplace":
        return domain_size / target_l1
    if mechanism == "geometric":
        lo, hi = 1e-8, 1e8
        for _ in range(200):
            mid = (lo * hi) ** 0.5
            err = GeometricHistogram(mid).expected_l1_error(domain_size)
            if err > target_l1:
                lo = mid
            else:
                hi = mid
        return hi
    raise ValueError(f"unknown mechanism {mechanism!r}")


# Self-register this backend's release surface with the taint manifest.
register_sanitizer("release")
register_sanitizer("release_rows")
register_sanitizer("release_blocks")
register_sanitizer("release_column")
