"""Differentially private histogram release — the ``M_hist`` of Algorithm 2.

DPClustX is agnostic to the histogram mechanism ("can be instantiated with
any DP histogram generation mechanism", Section 2.1); the paper's experiments
use the Geometric mechanism as implemented by diffprivlib.  We provide:

* :class:`GeometricHistogram` — the default, adding two-sided geometric noise
  to every count (sensitivity 1 per count under add/remove-one neighboring,
  i.e. a per-bin L1 sensitivity of 1, since one tuple touches one bin);
* :class:`LaplaceHistogram` — real-valued alternative;
* both optionally clamp negatives to zero (post-processing, free).

Each mechanism exposes ``release(counts, rng)`` so it can consume a
pre-computed count vector, and ``release_column(dataset, attr, rng)`` matching
the paper's ``M_hist(pi_A(D), eps_hist)`` signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..dataset.table import Dataset
from .budget import check_epsilon
from .mechanisms import GeometricMechanism, LaplaceMechanism
from .rng import ensure_rng


class HistogramMechanism(Protocol):
    """Structural interface for ``M_hist``: any eps-DP histogram release."""

    epsilon: float

    def release(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray: ...

    def release_column(
        self,
        dataset: Dataset,
        attribute: str,
        rng: np.random.Generator | int | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray: ...

    def with_epsilon(self, epsilon: float) -> "HistogramMechanism": ...


@dataclass(frozen=True)
class GeometricHistogram:
    """Per-bin two-sided geometric noise (the paper's default ``M_hist``)."""

    epsilon: float
    clamp_negative: bool = True

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)

    def release(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Add geometric noise to a count vector; clamp to >= 0 if configured."""
        counts = np.asarray(counts, dtype=np.int64)
        mech = GeometricMechanism(self.epsilon, sensitivity=1.0)
        noisy = counts + mech.sample_noise(counts.shape, rng)
        if self.clamp_negative:
            noisy = np.maximum(noisy, 0)
        return noisy.astype(np.float64)

    def release_column(
        self,
        dataset: Dataset,
        attribute: str,
        rng: np.random.Generator | int | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """``M_hist(pi_A(D), eps)`` over the full domain ``dom(A)``."""
        return self.release(dataset.histogram(attribute, mask=mask), rng)

    def with_epsilon(self, epsilon: float) -> "GeometricHistogram":
        return GeometricHistogram(epsilon, self.clamp_negative)

    def expected_l1_error(self, domain_size: int) -> float:
        """Expected L1 noise mass over a ``domain_size``-bin histogram."""
        a = float(np.exp(-self.epsilon))
        # E|Z| for the two-sided geometric with decay alpha.
        per_bin = 2.0 * a / (1.0 - a * a)
        return per_bin * domain_size


@dataclass(frozen=True)
class LaplaceHistogram:
    """Per-bin Laplace(1/eps) noise — the classical real-valued variant."""

    epsilon: float
    clamp_negative: bool = True

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)

    def release(
        self, counts: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.float64)
        mech = LaplaceMechanism(self.epsilon, sensitivity=1.0)
        noisy = np.asarray(mech.randomise(counts, ensure_rng(rng)))
        if self.clamp_negative:
            noisy = np.maximum(noisy, 0.0)
        return noisy

    def release_column(
        self,
        dataset: Dataset,
        attribute: str,
        rng: np.random.Generator | int | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        return self.release(dataset.histogram(attribute, mask=mask), rng)

    def with_epsilon(self, epsilon: float) -> "LaplaceHistogram":
        return LaplaceHistogram(epsilon, self.clamp_negative)

    def expected_l1_error(self, domain_size: int) -> float:
        return domain_size / self.epsilon


def epsilon_for_l1_error(
    domain_size: int, target_l1: float, mechanism: str = "laplace"
) -> float:
    """Translate an accuracy requirement into a histogram budget.

    The paper notes DP histogram mechanisms "are accompanied by utility
    bounds, enabling accuracy control by translating accuracy requirements
    into the required privacy budget" (Section 2.1).  For Laplace the
    expected L1 error of an ``m``-bin histogram is ``m / eps``; solve for eps.
    For the geometric mechanism we invert its expected error numerically.
    """
    if domain_size < 1:
        raise ValueError("domain_size must be >= 1")
    if not target_l1 > 0:
        raise ValueError("target_l1 must be positive")
    if mechanism == "laplace":
        return domain_size / target_l1
    if mechanism == "geometric":
        lo, hi = 1e-8, 1e8
        for _ in range(200):
            mid = (lo * hi) ** 0.5
            err = GeometricHistogram(mid).expected_l1_error(domain_size)
            if err > target_l1:
                lo = mid
            else:
                hi = mid
        return hi
    raise ValueError(f"unknown mechanism {mechanism!r}")
