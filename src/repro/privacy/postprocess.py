"""Free post-processing transforms for released noisy histograms.

Everything here consumes already-released values, so by the post-processing
property of DP (Proposition 2.7) none of it costs privacy budget.  These are
standard clean-up steps from the DP-histogram literature [29, 40]: clamping,
integer rounding, and projection back onto a consistency constraint (the
histogram should be a non-negative vector with a given total).
"""

from __future__ import annotations

import numpy as np


def clamp_nonnegative(hist: np.ndarray) -> np.ndarray:
    """Zero out negative noisy counts (Algorithm 2, Line 17 uses this)."""
    return np.maximum(np.asarray(hist, dtype=np.float64), 0.0)


def round_to_integers(hist: np.ndarray) -> np.ndarray:
    """Round released counts to the nearest non-negative integers."""
    return np.maximum(np.rint(np.asarray(hist, dtype=np.float64)), 0.0)


def project_to_simplex_total(hist: np.ndarray, total: float) -> np.ndarray:
    """L2-project a noisy histogram onto ``{h >= 0, sum(h) = total}``.

    The classical scaled-simplex projection: sort, find the threshold tau
    such that ``sum(max(h - tau, 0)) = total``, subtract and clamp.  Useful
    when a (noisy or public) total is known and per-bin noise should be
    redistributed consistently.
    """
    hist = np.asarray(hist, dtype=np.float64)
    if total < 0:
        raise ValueError("total must be non-negative")
    if hist.ndim != 1:
        raise ValueError("hist must be one-dimensional")
    if total == 0:
        return np.zeros_like(hist)
    u = np.sort(hist)[::-1]
    css = np.cumsum(u)
    ks = np.arange(1, len(u) + 1)
    thresholds = (css - total) / ks
    valid = u - thresholds > 0
    k = int(np.max(ks[valid]))
    tau = (css[k - 1] - total) / k
    return np.maximum(hist - tau, 0.0)


def normalize_pair(
    hist_cluster: np.ndarray, hist_full: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Reconcile a released (cluster, full) histogram pair.

    Enforces the structural facts that hold for exact counts: both vectors
    non-negative, and the cluster histogram never exceeds the full one
    bin-wise.  Returns ``(cluster, rest)`` where ``rest = full - cluster``.
    """
    full = clamp_nonnegative(hist_full)
    cluster = np.minimum(clamp_nonnegative(hist_cluster), full)
    return cluster, full - cluster


def uniformity_distance(hist: np.ndarray) -> float:
    """TVD of the released histogram from the uniform distribution.

    A cheap released-data diagnostic: explanations whose *cluster* histogram
    is near-uniform carry little signal (their textual description will say
    "similar"), which usually indicates the histogram budget was too small.
    """
    hist = clamp_nonnegative(hist)
    total = hist.sum()
    if total <= 0:
        return 0.0
    p = hist / total
    uniform = 1.0 / len(hist)
    return 0.5 * float(np.abs(p - uniform).sum())
