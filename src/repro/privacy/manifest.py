"""The taint manifest: sources, sanitizers, and sinks of private data.

``repro lint --engine=flow`` (see ``repro.analysis.flow``) proves the
paper's core guarantee statically: every value derived from raw rows or
counts passes through a *charged DP mechanism release* before it reaches
any output channel.  That proof needs three vocabularies, declared here —
in the privacy package, next to the mechanisms themselves — so a new
backend registers its release surface in the same commit that adds it:

* **sources** — accessor methods whose results are raw row/count data
  (``Dataset.row``, ``ClusteredCounts.cluster_size``, ``CountsStack``
  tensors, ...).  Anything computed from them is tainted.
* **sanitizers** — the mechanism release/selection methods.  A value
  returned by a sanitizer is differentially private; taint stops there.
* **sinks** — the output channels of the serving tier: HTTP/frame
  envelopes, ``logging`` calls, metrics label values, trace attachments,
  and journal records.  Tainted data reaching a sink without crossing a
  sanitizer is a ``taint-unsanitized-release`` finding.

Self-registration
-----------------

Mechanism modules call :func:`register_sanitizer` at import time::

    # in privacy/mymech.py
    from .manifest import register_sanitizer
    register_sanitizer("release_widgets")   # MyMech.release_widgets(...)

The flow engine consumes the manifest two ways, so registration works both
for the shipped package and for code the linter merely parses:

1. it imports this module (importing ``repro.privacy`` runs every
   mechanism module's registration calls), and
2. it *statically scans* the analysed tree for ``register_sanitizer("x")``
   / ``register_source`` / ``register_sink`` calls with literal string
   arguments — a new backend registers correctly even when the linted
   checkout is never imported.

Names registered here are **method/function names**, not qualified paths:
the linter is a conservative AST tool and classifies call sites by name.
Keep names specific (``release_rows``, not ``get``).
"""

from __future__ import annotations

import re

#: Accessor methods returning raw row- or count-derived values.  Seeded with
#: the Dataset / ClusteredCounts / CountsStack / StreamedCounts surfaces.
#: A call only counts as a source when the method name appears here AND the
#: receiver matches :data:`TAINT_SOURCE_RECV_RE` — ``dataset.histogram(...)``
#: is raw, ``query_engine.histogram(...)`` is a charged DP release with the
#: same method name.
TAINT_SOURCE_METHODS: "set[str]" = {
    # Dataset row/column accessors (dataset/table.py)
    "row",
    "row_codes",
    "histogram",
    "count",
    "column",
    "active_domain",
    "to_matrix",
    "iter_chunks",
    # ClusteredCounts / CountsStack / StreamedCounts accessors (core/counts.py,
    # core/engine/stacks.py) — every one returns true (un-noised) counts.
    "full",
    "cluster",
    "total",
    "sizes",
    "by_cluster",
    "by_cluster_stack",
    "cluster_size",
    "totals_vector",
    "sizes_matrix",
    "true_blocks",
    "true_counts",
}

#: Attribute reads that are sources under the same receiver gate
#: (``counts.labels`` is the raw per-row cluster assignment).
TAINT_SOURCE_ATTRS: "set[str]" = {"labels"}

#: Receiver-name gate for sources: the innermost name the accessor is called
#: on must look like a dataset / counts / stack holder.
TAINT_SOURCE_RECV_RE = re.compile(
    r"dataset|counts|stack|table|chunk|^data$|_data$|^ds$|^rows?$",
    re.IGNORECASE,
)

#: Mechanism release / selection methods: crossing one of these makes a
#: value differentially private.  ``privacy`` backends self-register theirs.
SANITIZER_METHODS: "set[str]" = set()

#: Sink *method* names grouped by channel.  The flow engine applies
#: receiver/keyword heuristics on top (see ``analysis/flow/taint.py``).
SINK_CHANNELS: "dict[str, set[str]]" = {
    # logging.<level>(...) / logger.<level>(...)
    "log": {
        "debug", "info", "warning", "warn", "error", "exception", "critical",
        "log",
    },
    # metrics label values: the labels= kwarg of these obs calls
    "metric-label": {"inc", "set", "observe"},
    # journal / ledger-store records
    "journal": {"append", "append_event", "append_record", "record",
                "write_event"},
    # frame / HTTP payload writers
    "frame": {"write_frame", "write_frame_async", "send_json", "_send_json"},
    # trace attachments
    "trace": {"attach_trace"},
}


def register_source(name: str) -> str:
    """Declare an accessor method whose results are raw row/count data."""
    TAINT_SOURCE_METHODS.add(name)
    return name


def register_sanitizer(name: str) -> str:
    """Declare a mechanism release method: its return value is DP-safe.

    Call this at module import time, next to the mechanism definition.  The
    flow engine also discovers calls to this function statically, so an
    out-of-tree backend is picked up by ``repro lint --engine=flow`` without
    being imported.
    """
    SANITIZER_METHODS.add(name)
    return name


def register_sink(channel: str, name: str) -> str:
    """Declare an output-channel method the flow engine treats as a sink."""
    SINK_CHANNELS.setdefault(channel, set()).add(name)
    return name
