"""Differential-privacy substrate: budgets, noise mechanisms, selection, histograms."""

from .bounds import (
    SelectionPlan,
    histogram_error_bound,
    plan_selection_budget,
    stage1_error_bound,
    stage2_error_bound,
)
from .budget import (
    GRID,
    Balance,
    BudgetError,
    Charge,
    ExplanationBudget,
    PrivacyAccountant,
    check_epsilon,
    epsilon_from_units,
    quantize_epsilon,
)
from .postprocess import (
    clamp_nonnegative,
    normalize_pair,
    project_to_simplex_total,
    round_to_integers,
    uniformity_distance,
)
from . import manifest
from .manifest import register_sanitizer, register_sink, register_source
from .exponential import ExponentialMechanism
from .hierarchical import HierarchicalHistogram
from .histograms import (
    GeometricHistogram,
    HistogramMechanism,
    LaplaceHistogram,
    epsilon_for_l1_error,
)
from .mechanisms import GeometricMechanism, LaplaceMechanism, gumbel_noise
from .rng import ensure_rng, spawn
from .topk import OneShotTopK, iterated_em_topk

__all__ = [
    "SelectionPlan",
    "histogram_error_bound",
    "plan_selection_budget",
    "stage1_error_bound",
    "stage2_error_bound",
    "clamp_nonnegative",
    "normalize_pair",
    "project_to_simplex_total",
    "round_to_integers",
    "uniformity_distance",
    "GRID",
    "Balance",
    "BudgetError",
    "Charge",
    "ExplanationBudget",
    "PrivacyAccountant",
    "check_epsilon",
    "epsilon_from_units",
    "quantize_epsilon",
    "ExponentialMechanism",
    "HierarchicalHistogram",
    "GeometricHistogram",
    "HistogramMechanism",
    "LaplaceHistogram",
    "epsilon_for_l1_error",
    "GeometricMechanism",
    "LaplaceMechanism",
    "gumbel_noise",
    "ensure_rng",
    "manifest",
    "register_sanitizer",
    "register_sink",
    "register_source",
    "spawn",
    "OneShotTopK",
    "iterated_em_topk",
]
