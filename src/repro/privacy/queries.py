"""A PINQ-style private query layer over coded datasets.

Section 7 situates DPClustX among interactive DP analysis systems — PINQ
[48], PrivateSQL [36], FLEX [34], Chorus [33].  This module provides the
minimal such layer for our data model: counting, group-by and histogram
queries with explicit per-query budgets, charged to a shared accountant.
It is what a "manual EDA session" (Example 1.1) would actually run on, and
it powers ad-hoc drill-downs after an explanation
(:meth:`repro.session.PrivateAnalysisSession.release_histogram` is the
session-level wrapper).

Predicates are restricted to per-attribute value tests combined
conjunctively — a deliberately small language whose row-masks are cheap and
whose sensitivity story is trivial (every query touches each tuple at most
once, so counts have sensitivity 1; ``partition`` splits the data by an
attribute's value, enabling parallel composition exactly as in PINQ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..dataset.table import Dataset
from .budget import PrivacyAccountant, check_epsilon
from .histograms import GeometricHistogram, HistogramMechanism
from .mechanisms import LaplaceMechanism
from .rng import ensure_rng


@dataclass(frozen=True)
class Predicate:
    """Conjunction of per-attribute membership tests.

    ``Predicate({"age": ("[60, 70)", "[70, 80)"), "gender": ("Female",)})``
    selects tuples whose ``age`` is one of the two bins *and* whose gender is
    Female.  An empty predicate selects everything; ``impossible`` marks a
    contradictory conjunction that selects nothing.
    """

    tests: Mapping[str, tuple[str, ...]]
    impossible: bool = False

    def __post_init__(self) -> None:
        for name, values in self.tests.items():
            if not values:
                raise ValueError(f"test on {name!r} must list at least one value")

    @classmethod
    def true(cls) -> "Predicate":
        return cls({})

    def mask(self, dataset: Dataset) -> np.ndarray:
        if self.impossible:
            return np.zeros(len(dataset), dtype=bool)
        out = np.ones(len(dataset), dtype=bool)
        for name, values in self.tests.items():
            attr = dataset.schema.attribute(name)
            codes = {attr.code_of(v) for v in values}
            out &= np.isin(np.asarray(dataset.column(name)), list(codes))
        return out

    def __and__(self, other: "Predicate") -> "Predicate":
        if self.impossible or other.impossible:
            return Predicate({}, impossible=True)
        merged: dict[str, tuple[str, ...]] = dict(self.tests)
        for name, values in other.tests.items():
            if name in merged:
                both = tuple(v for v in merged[name] if v in set(values))
                if not both:  # contradictory conjunction selects nothing
                    return Predicate({}, impossible=True)
                merged[name] = both
            else:
                merged[name] = tuple(values)
        return Predicate(merged)


class QueryEngine:
    """Interactive eps-DP queries over one dataset, with shared accounting."""

    def __init__(
        self,
        dataset: Dataset,
        accountant: PrivacyAccountant | None = None,
        rng: np.random.Generator | int | None = None,
        histogram_mechanism: HistogramMechanism | None = None,
    ):
        self._dataset = dataset
        self._accountant = accountant if accountant is not None else PrivacyAccountant()
        self._rng = ensure_rng(rng)
        self._hist_mech = histogram_mechanism or GeometricHistogram(1.0)

    @property
    def accountant(self) -> PrivacyAccountant:
        return self._accountant

    @property
    def spent(self) -> float:
        return self._accountant.total()

    @property
    def remaining(self) -> float:
        """Budget left under the accountant's cap (``inf`` uncapped)."""
        return self._accountant.balance().remaining

    def can_afford(self, epsilon: float) -> bool:
        """Exact O(1) admission query: would a query of ``epsilon`` run?

        The accountant's own grid arithmetic — a query loop can probe this
        instead of catching :class:`~repro.privacy.budget.BudgetError`
        mid-session, and the answer cannot disagree with what
        :meth:`count`/:meth:`histogram` would actually admit.
        """
        return self._accountant.can_spend(epsilon)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def count(self, predicate: Predicate, epsilon: float) -> float:
        """Noisy count of tuples satisfying ``predicate`` (sensitivity 1)."""
        check_epsilon(epsilon)
        true_count = float(predicate.mask(self._dataset).sum())
        mech = LaplaceMechanism(epsilon, sensitivity=1.0)
        self._accountant.spend(epsilon, f"count({dict(predicate.tests)})")
        return float(mech.randomise(true_count, self._rng))

    def total(self, epsilon: float) -> float:
        """Noisy dataset cardinality ``|D|``."""
        return self.count(Predicate.true(), epsilon)

    def histogram(
        self,
        attribute: str,
        epsilon: float,
        predicate: Predicate | None = None,
    ) -> np.ndarray:
        """Noisy histogram of ``attribute`` over the selected sub-bag.

        One tuple lands in exactly one bin, so releasing the whole vector
        has sensitivity 1 and costs ``epsilon`` once (not per bin).
        """
        check_epsilon(epsilon)
        mask = predicate.mask(self._dataset) if predicate is not None else None
        counts = self._dataset.histogram(attribute, mask=mask)
        mech = self._hist_mech.with_epsilon(epsilon)
        self._accountant.spend(epsilon, f"histogram({attribute})")
        return mech.release(counts, self._rng)

    def group_by_count(
        self, attribute: str, epsilon: float, predicate: Predicate | None = None
    ) -> dict[str, float]:
        """Noisy counts per domain value, keyed by the decoded value."""
        hist = self.histogram(attribute, epsilon, predicate)
        domain = self._dataset.schema.attribute(attribute).domain
        return {v: float(hist[i]) for i, v in enumerate(domain)}

    def mean(self, attribute: str, epsilon: float) -> float:
        """Noisy mean of an attribute's *codes* (bounded by the domain).

        The budget splits evenly between a noisy sum (sensitivity
        ``|dom(A)| - 1``, the max code) and a noisy count; the ratio is
        post-processing.  A crude but classic recipe.
        """
        check_epsilon(epsilon)
        attr = self._dataset.schema.attribute(attribute)
        codes = np.asarray(self._dataset.column(attribute), dtype=np.float64)
        sum_mech = LaplaceMechanism(
            epsilon / 2.0, sensitivity=float(max(attr.domain_size - 1, 1))
        )
        cnt_mech = LaplaceMechanism(epsilon / 2.0, sensitivity=1.0)
        self._accountant.spend(epsilon, f"mean({attribute})")
        noisy_sum = float(sum_mech.randomise(float(codes.sum()), self._rng))
        noisy_cnt = float(cnt_mech.randomise(float(len(codes)), self._rng))
        return noisy_sum / max(noisy_cnt, 1.0)

    # ------------------------------------------------------------------ #
    # partition (parallel composition)
    # ------------------------------------------------------------------ #

    def partition(self, attribute: str) -> dict[str, "QueryEngine"]:
        """Split into per-value engines sharing THIS engine's accountant.

        The partitions are disjoint, so a round of same-epsilon queries — one
        against each part — costs max(eps) = eps, not the sum (PINQ's
        parallel-composition operator).  Callers should issue such rounds via
        :meth:`partitioned_histograms` to get the parallel charge; using the
        returned engines individually charges sequentially (safe, just
        conservative).
        """
        attr = self._dataset.schema.attribute(attribute)
        parts: dict[str, QueryEngine] = {}
        codes = np.asarray(self._dataset.column(attribute))
        for i, value in enumerate(attr.domain):
            sub = self._dataset.subset(codes == i)
            parts[value] = QueryEngine(
                sub, self._accountant, self._rng, self._hist_mech
            )
        return parts

    def partitioned_histograms(
        self, partition_attribute: str, target_attribute: str, epsilon: float
    ) -> dict[str, np.ndarray]:
        """Per-partition histograms of ``target_attribute`` at parallel cost.

        Releases one noisy histogram of ``target_attribute`` inside every
        value-group of ``partition_attribute``; disjointness makes the whole
        round ``epsilon``-DP (a single parallel charge).
        """
        check_epsilon(epsilon)
        attr = self._dataset.schema.attribute(partition_attribute)
        codes = np.asarray(self._dataset.column(partition_attribute))
        mech = self._hist_mech.with_epsilon(epsilon)
        self._accountant.parallel(
            [epsilon] * attr.domain_size,
            f"partitioned histograms({partition_attribute} -> {target_attribute})",
        )
        out: dict[str, np.ndarray] = {}
        for i, value in enumerate(attr.domain):
            counts = self._dataset.histogram(target_attribute, mask=codes == i)
            out[value] = mech.release(counts, self._rng)
        return out
