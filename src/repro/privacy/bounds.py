"""Utility-bound calculators and budget planning.

The paper's mechanisms come with analytic utility guarantees — Theorem 2.10
for the exponential mechanism, Proposition 5.1(2) for Algorithm 1, the EM
bound quoted in Appendix B for Stage-2 — and Section 2.1 notes that such
bounds "enable accuracy control by translating accuracy requirements into
the required privacy budget".  This module makes that translation concrete:
given workload parameters (|A|, |C|, k, domain sizes) and an accuracy target,
compute the bound, or invert it for the necessary epsilon.

All bounds are additive errors on the *score scale* ``[0, |D_c|]`` — callers
typically normalise by the expected cluster size to reason in relative terms
(see :func:`plan_selection_budget`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .budget import check_epsilon


def stage1_error_bound(
    eps_cand_set: float,
    n_clusters: int,
    k: int,
    n_attributes: int,
    confidence: float = 0.95,
    sensitivity: float = 1.0,
) -> float:
    """Proposition 5.1(2): Stage-1 per-rank additive error.

    With probability at least ``confidence``, each released candidate's true
    score is within the returned bound of the true rank-matched optimum:
    ``(2 |C| k Delta / eps_CandSet) * (ln |A| + t)`` with ``t = ln(1/(1-conf))``.
    """
    check_epsilon(eps_cand_set, name="eps_cand_set")
    _check_counts(n_clusters, k, n_attributes)
    t = _t_for_confidence(confidence)
    return (
        2.0 * n_clusters * k * sensitivity / eps_cand_set
    ) * (math.log(n_attributes) + t)


def stage2_error_bound(
    eps_top_comb: float,
    n_clusters: int,
    k: int,
    confidence: float = 0.95,
    sensitivity: float = 1.0,
    ell: int = 1,
) -> float:
    """Theorem 2.10 applied to Stage-2's candidate space.

    The EM runs over ``C(k, ell)^|C|`` combinations (``k^|C|`` when ell = 1),
    so ``ln |R| = |C| * ln C(k, ell)`` and the bound is
    ``(2 Delta / eps) * (|C| ln C(k, ell) + t)`` — the Appendix B expression.
    """
    check_epsilon(eps_top_comb, name="eps_top_comb")
    _check_counts(n_clusters, k, k)
    if not 1 <= ell <= k:
        raise ValueError("ell must be in [1, k]")
    t = _t_for_confidence(confidence)
    log_choices = n_clusters * math.log(math.comb(k, ell))
    return (2.0 * sensitivity / eps_top_comb) * (log_choices + t)


def histogram_error_bound(
    eps_hist: float, n_selected_attributes: int, domain_size: int
) -> dict[str, float]:
    """Expected L1 error of Algorithm 2's released histograms (Laplace scale).

    Full-data histograms get ``eps_Hist / (2 |A'|)`` each; cluster histograms
    ``eps_Hist / 2``.  Expected per-histogram L1 error of per-bin Laplace
    noise at budget ``e`` is ``m / e`` — the Geometric mechanism's is
    slightly smaller, so this is a safe planning estimate.
    """
    check_epsilon(eps_hist, name="eps_hist")
    if n_selected_attributes < 1 or domain_size < 1:
        raise ValueError("counts must be >= 1")
    eps_full = eps_hist / (2.0 * n_selected_attributes)
    eps_cluster = eps_hist / 2.0
    return {
        "full_histogram_l1": domain_size / eps_full,
        "cluster_histogram_l1": domain_size / eps_cluster,
    }


@dataclass(frozen=True)
class SelectionPlan:
    """Output of :func:`plan_selection_budget`."""

    eps_cand_set: float
    eps_top_comb: float
    stage1_bound: float
    stage2_bound: float

    @property
    def eps_selection(self) -> float:
        return self.eps_cand_set + self.eps_top_comb


def plan_selection_budget(
    target_relative_error: float,
    expected_cluster_size: float,
    n_clusters: int,
    k: int = 3,
    n_attributes: int = 47,
    confidence: float = 0.95,
) -> SelectionPlan:
    """Invert the selection bounds: accuracy target -> required budget.

    ``target_relative_error`` is the tolerated additive score error as a
    fraction of the expected cluster size (the score range); e.g. 0.1 means
    "selected attributes within 10% of optimal score, w.p. >= confidence".
    The budget is split evenly between the stages (the paper's convention),
    each stage sized for the target independently.
    """
    if not 0.0 < target_relative_error < 1.0:
        raise ValueError("target_relative_error must be in (0, 1)")
    if expected_cluster_size <= 0:
        raise ValueError("expected_cluster_size must be positive")
    target = target_relative_error * expected_cluster_size
    t = _t_for_confidence(confidence)
    eps1 = 2.0 * n_clusters * k * (math.log(n_attributes) + t) / target
    eps2 = 2.0 * (n_clusters * math.log(k) + t) / target
    return SelectionPlan(
        eps_cand_set=eps1,
        eps_top_comb=eps2,
        stage1_bound=stage1_error_bound(eps1, n_clusters, k, n_attributes, confidence),
        stage2_bound=stage2_error_bound(eps2, n_clusters, k, confidence),
    )


def _t_for_confidence(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return math.log(1.0 / (1.0 - confidence))


def _check_counts(n_clusters: int, k: int, n_attributes: int) -> None:
    if n_clusters < 1 or k < 1 or n_attributes < 1:
        raise ValueError("counts must be >= 1")
    if k > n_attributes:
        raise ValueError("k cannot exceed |A|")
