"""Evaluation measures (Section 6.1): sensitive Quality and discrete MAE."""

from .mae import mae
from .quality import QualityEvaluator, quality
from .stats import (
    PairedComparison,
    Summary,
    bootstrap_mean,
    paired_bootstrap,
    relative_gap,
)
from .runner import (
    Selector,
    TrialResult,
    format_results_table,
    make_selectors,
    run_trials,
)

__all__ = [
    "mae",
    "QualityEvaluator",
    "quality",
    "PairedComparison",
    "Summary",
    "bootstrap_mean",
    "paired_bootstrap",
    "relative_gap",
    "Selector",
    "TrialResult",
    "format_results_table",
    "make_selectors",
    "run_trials",
]
