"""Evaluation measures (Section 6.1): sensitive Quality and discrete MAE."""

from .mae import mae
from .quality import QualityEvaluator, quality
from .stats import (
    PairedComparison,
    Summary,
    bootstrap_mean,
    paired_bootstrap,
    relative_gap,
)
from .runner import (
    ExplainerSelector,
    Selector,
    TrialResult,
    format_results_table,
    make_selectors,
    run_trials,
    run_trials_serial,
)
from .sweeps import SweepContext, run_grid, run_trials_batched, select_batched

__all__ = [
    "mae",
    "QualityEvaluator",
    "quality",
    "PairedComparison",
    "Summary",
    "bootstrap_mean",
    "paired_bootstrap",
    "relative_gap",
    "ExplainerSelector",
    "Selector",
    "TrialResult",
    "format_results_table",
    "make_selectors",
    "run_trials",
    "run_trials_serial",
    "SweepContext",
    "run_grid",
    "run_trials_batched",
    "select_batched",
]
