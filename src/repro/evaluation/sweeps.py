"""Batched sweep execution: vectorising the seed/epsilon dimension.

The paper averages every Figure-5-12 measurement over 10 runs across
log-spaced epsilon grids (Section 6.2), so after the scoring engine removed
the per-(cluster, attribute) Python calls, the remaining serial layer was the
outer trial loop: :func:`~repro.evaluation.runner.run_trials_serial` re-enters
each explainer one seed at a time, re-ranking, re-assembling score tensors
and re-evaluating the sensitive Quality per seed.

Both Stage-1 (One-shot Top-k) and Stage-2 (exponential mechanism) perturb
*true* scores that are identical across seeds, so the whole repeat dimension
factors out: the true score matrices/tensors are computed once per counts
provider (memoised :class:`~repro.core.engine.engine.ScoringEngine`), the
noise becomes per-seed Gumbel rows (``select_batch`` /
``select_indices``), and selection is a row-wise argsort/argmax.

**Exactness contract.**  ``numpy.random.Generator`` fills arrays from the
bit stream value-by-value, so the batched draws consume each spawned child
stream in exactly the serial order; combined with the bit-for-bit
:meth:`~repro.evaluation.quality.QualityEvaluator.quality_tensor`, the
batched runner reproduces :func:`run_trials_serial` *exactly* (equal floats,
not just equal distributions) whenever every permutation-diversity group
fits the exact enumeration limit — always the case for ``|C| <= 6``, which
covers the paper's default configurations.  For larger ``|C|`` the
Monte-Carlo permutation stream differs (the serial path reseeds a fresh
evaluator per selector call); results remain deterministic and
distributionally equivalent.

:func:`run_grid` additionally fans the (dataset, method, epsilon) grid of an
experiment across a ``concurrent.futures`` process pool, each worker keeping
its own memoised dataset/clustering/counts cache
(:mod:`repro.experiments.common`).
"""

from __future__ import annotations

import time

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.counts import ClusteredCounts, CountsProvider
from ..core.dpclustx import _MAX_COMBINATIONS, DPClustX
from ..core.engine import scoring_engine
from ..core.hbe import AttributeCombination
from ..core.quality.scores import (
    SCORE_SENSITIVITY,
    SENSITIVE_SCORE_SENSITIVITY,
    Weights,
)
from ..core.select_candidates import stage1_mechanism
from ..privacy.budget import BudgetError, quantize_epsilon
from ..privacy.exponential import ExponentialMechanism
from ..privacy.rng import ensure_rng, spawn
from ..privacy.topk import OneShotTopK
from .mae import mae
from .quality import QualityEvaluator
from .runner import Selector, TrialResult

__all__ = [
    "SweepContext",
    "select_batched",
    "explain_batched",
    "run_pipeline_batched",
    "PipelineSweep",
    "run_trials_batched",
    "run_grid",
]


class SweepContext:
    """Shared memoisation for one counts provider across a sweep.

    Caches, keyed by the (hashable) :class:`Weights`: one
    :class:`QualityEvaluator` per weight setting, flattened ``GlScore`` /
    sensitive-Quality tensors per candidate-set tuple, per-combination
    Quality values, and the deterministic TabEE selections.  Everything in
    here is a pure function of the true counts, so reuse across seeds and
    epsilon grid points changes nothing but the wall-clock.
    """

    def __init__(self, counts: CountsProvider):
        self.counts = counts
        self._evaluators: dict[Weights, QualityEvaluator] = {}
        self._glscore: dict[tuple, np.ndarray] = {}
        self._quality_flat: dict[tuple, np.ndarray] = {}
        self._quality: dict[tuple, float] = {}
        self._tabee: dict[tuple, AttributeCombination] = {}

    def evaluator_for(self, weights: Weights) -> QualityEvaluator:
        ev = self._evaluators.get(weights)
        if ev is None:
            ev = QualityEvaluator(self.counts, weights, 0)
            self._evaluators[weights] = ev
        return ev

    def glscore_flat(
        self, weights: Weights, candidate_sets: tuple[tuple[str, ...], ...]
    ) -> np.ndarray:
        """Flattened Stage-2 ``GlScore`` tensor, memoised per candidate sets."""
        key = (weights, candidate_sets)
        cached = self._glscore.get(key)
        if cached is None:
            cached = (
                scoring_engine(self.counts)
                .combination_score_tensor(
                    candidate_sets, weights, max_combinations=_MAX_COMBINATIONS
                )
                .reshape(-1)
            )
            self._glscore[key] = cached
        return cached

    def quality_flat(
        self, weights: Weights, candidate_sets: tuple[tuple[str, ...], ...]
    ) -> np.ndarray:
        """Flattened sensitive-Quality tensor, memoised per candidate sets."""
        key = (weights, candidate_sets)
        cached = self._quality_flat.get(key)
        if cached is None:
            cached = self.evaluator_for(weights).quality_tensor(candidate_sets)
            self._quality_flat[key] = cached
        return cached

    def quality(self, weights: Weights, combination: Sequence[str]) -> float:
        """Memoised sensitive Quality of one combination."""
        key = (weights, tuple(combination))
        cached = self._quality.get(key)
        if cached is None:
            cached = self.evaluator_for(weights).quality(key[1])
            self._quality[key] = cached
        return cached

    def tabee_combination(self, explainer) -> AttributeCombination:
        """Deterministic TabEE selection, computed once per configuration."""
        key = (explainer.n_candidates, explainer.weights)
        cached = self._tabee.get(key)
        if cached is None:
            sets = explainer.candidate_sets(self.counts)
            best, _ = self.evaluator_for(
                explainer.weights
            ).best_combination_batched(sets)
            cached = AttributeCombination(best)
            self._tabee[key] = cached
        return cached


# --------------------------------------------------------------------------- #
# batched per-explainer selection
# --------------------------------------------------------------------------- #


def _stage1_sets(
    score_matrix: np.ndarray,
    names: tuple[str, ...],
    mechanism: OneShotTopK,
    children: Sequence[np.random.Generator],
) -> list[tuple[tuple[str, ...], ...]]:
    """One-shot Top-k candidate sets for every seed, batched per cluster.

    Cluster-major draw order: for each cluster, one ``select_batch`` call
    perturbs the shared true-score row with one Gumbel row per child.  Each
    child's own stream still sees its draws in cluster order — exactly the
    serial per-seed loop's consumption.
    """
    n_clusters = score_matrix.shape[0]
    n_runs = len(children)
    picks = np.empty((n_runs, n_clusters, mechanism.k), dtype=np.intp)
    for c in range(n_clusters):
        picks[:, c, :] = mechanism.select_batch(
            score_matrix[c], n_runs, rng=children
        )
    gathered = np.asarray(names, dtype=object)[picks].tolist()
    return [tuple(tuple(row) for row in run) for run in gathered]


def _stage2_combinations(
    per_run_sets: "list[tuple[tuple[str, ...], ...]]",
    flats: "list[np.ndarray]",
    em: ExponentialMechanism,
    children: Sequence[np.random.Generator],
) -> list[AttributeCombination]:
    """Row-wise EM over each seed's flattened Stage-2 score tensor."""
    idx = em.select_indices(np.stack(flats), rng=children)
    combos = []
    for r, sets in enumerate(per_run_sets):
        shape = tuple(len(s) for s in sets)
        picks = np.unravel_index(int(idx[r]), shape)
        combos.append(
            AttributeCombination(
                tuple(sets[c][int(j)] for c, j in enumerate(picks))
            )
        )
    return combos


def _select_dpclustx(
    explainer: DPClustX,
    counts: CountsProvider,
    children: Sequence[np.random.Generator],
    ctx: SweepContext,
) -> list[AttributeCombination]:
    """All seeds of ``DPClustX.select_combination``, batched (Algorithm 2)."""
    names = tuple(counts.names)
    n_clusters = counts.n_clusters
    k = explainer.n_candidates
    if k < 1 or k > len(names):
        raise ValueError(f"k must be in [1, |A|] = [1, {len(names)}], got {k}")
    gamma = explainer.weights.gamma()
    mech = stage1_mechanism(explainer.budget.eps_cand_set, n_clusters, k)
    matrix = scoring_engine(counts).score_matrix(gamma[0], gamma[1], names)
    per_run_sets = _stage1_sets(matrix, names, mech, children)
    flats = [
        ctx.glscore_flat(explainer.weights, sets) for sets in per_run_sets
    ]
    em = ExponentialMechanism(explainer.budget.eps_top_comb, SCORE_SENSITIVITY)
    return _stage2_combinations(per_run_sets, flats, em, children)


def _select_dptabee(
    explainer,
    counts: CountsProvider,
    children: Sequence[np.random.Generator],
    ctx: SweepContext,
) -> list[AttributeCombination]:
    """All seeds of ``DPTabEE.select_combination``, batched."""
    names = tuple(counts.names)
    n_clusters = counts.n_clusters
    gamma = explainer.weights.gamma()
    mech = stage1_mechanism(
        explainer.budget.eps_cand_set,
        n_clusters,
        explainer.n_candidates,
        SENSITIVE_SCORE_SENSITIVITY,
    )
    matrix = scoring_engine(counts).sensitive_score_matrix(
        gamma[0], gamma[1], names
    )
    per_run_sets = _stage1_sets(matrix, names, mech, children)
    flats = [
        ctx.quality_flat(explainer.weights, sets) for sets in per_run_sets
    ]
    em = ExponentialMechanism(
        explainer.budget.eps_top_comb, SENSITIVE_SCORE_SENSITIVITY
    )
    return _stage2_combinations(per_run_sets, flats, em, children)


def _select_dpnaive(
    explainer,
    counts: CountsProvider,
    children: Sequence[np.random.Generator],
) -> list[AttributeCombination]:
    """All seeds of ``DPNaive.select_combination``.

    The noisy releases are inherently per-seed (each seed post-processes its
    own noisy histograms), but within a seed the releases are batched
    (``release_rows``) and the TabEE Stage-2 over the noisy counts runs as
    one Quality tensor instead of ``k^|C|`` scalar evaluations.
    """
    from ..baselines.tabee import TabEE

    tabee = TabEE(explainer.n_candidates, explainer.weights)
    combos = []
    for child in children:
        noisy = explainer.release_noisy_counts(counts, child)
        sets = tabee.candidate_sets(noisy)
        best, _ = QualityEvaluator(
            noisy, explainer.weights, 0
        ).best_combination_batched(sets)
        combos.append(AttributeCombination(best))
    return combos


def select_batched(
    selector,
    counts: CountsProvider,
    children: Sequence[np.random.Generator],
    ctx: SweepContext | None = None,
) -> list[AttributeCombination]:
    """The combinations all seeds of one selector would pick, batched.

    ``selector`` is either an
    :class:`~repro.evaluation.runner.ExplainerSelector` (or a bare explainer
    instance) of a known type — DPClustX, TabEE, DP-TabEE, DP-Naive — whose
    seed dimension is vectorised, or any ``(counts, rng) -> combination``
    callable, which falls back to the serial per-seed loop.  Entry ``r``
    consumes ``children[r]``'s stream exactly as the serial call would.
    """
    from ..baselines.dp_naive import DPNaive
    from ..baselines.dp_tabee import DPTabEE
    from ..baselines.tabee import TabEE

    if ctx is None:
        ctx = SweepContext(counts)
    if not len(children):
        return []
    explainer = getattr(selector, "explainer", selector)
    if type(explainer) is DPClustX:
        return _select_dpclustx(explainer, counts, children, ctx)
    if type(explainer) is DPTabEE:
        return _select_dptabee(explainer, counts, children, ctx)
    if type(explainer) is DPNaive:
        return _select_dpnaive(explainer, counts, children)
    if type(explainer) is TabEE:
        # Deterministic: one selection serves every seed.  (The serial path
        # passes the child rng through, but it is only consumed by
        # Monte-Carlo permutation sampling, i.e. never for |C| <= 6.)
        combo = ctx.tabee_combination(explainer)
        return [combo] * len(children)
    if not callable(selector):
        raise TypeError(f"cannot batch or call selector {selector!r}")
    return [selector(counts, child) for child in children]


def explain_batched(
    explainer: DPClustX,
    counts: CountsProvider,
    rngs: Sequence["np.random.Generator | int | None"],
    context: SweepContext | None = None,
    metrics=None,
):
    """All seeds of ``DPClustX.explain``, batched — one scoring pass.

    The reusable batch entry point behind the explanation service's request
    coalescing: Stage-1/2 selection for every seed runs through
    :func:`select_batched` (the true-score tensors are computed once and the
    per-seed work collapses to Gumbel rows + argmax), then each seed's
    generator — having consumed exactly the selection draws of the serial
    path — continues into :meth:`~repro.core.dpclustx.DPClustX.release_histograms`.
    Entry ``r`` is therefore byte-identical to
    ``explainer.explain(dataset, clustering, rng=rngs[r], counts=counts)``.

    Privacy accounting is deliberately *not* threaded through here: each
    entry is a full ``budget.total`` release, and callers (the service's
    per-tenant ledgers, ``PrivateAnalysisSession``) charge per seed.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) records the
    two kernel phases into the span histogram — ``engine-score`` for the
    batched selection pass, ``mechanism-release`` for the per-seed
    histogram releases.  Timing wraps the calls; it never touches the rng
    streams, so instrumented output stays byte-identical.
    """
    ctx = context if context is not None else SweepContext(counts)
    children = [ensure_rng(r) for r in rngs]
    spans = None
    if metrics is not None:
        from ..obs.tracing import span_histogram  # local: keep layering acyclic

        spans = span_histogram(metrics)
    t0 = time.perf_counter()
    combos = select_batched(explainer, counts, children, ctx)
    if spans is not None:
        spans.observe(time.perf_counter() - t0, ("engine-score",))
    t0 = time.perf_counter()
    released = [
        explainer.release_histograms(counts, combo, child)
        for combo, child in zip(combos, children)
    ]
    if spans is not None:
        spans.observe(time.perf_counter() - t0, ("mechanism-release",))
    return released


# --------------------------------------------------------------------------- #
# the batched end-to-end pipeline (fit once, explain a seed sweep)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PipelineSweep:
    """One fitted DP clustering plus the seed sweep explained over it."""

    clustering: object
    counts: "ClusteredCounts"
    context: SweepContext
    explanations: list


def run_pipeline_batched(
    dataset,
    spec,
    seeds: Sequence["np.random.Generator | int | None"],
    explainer: DPClustX | None = None,
    accountant=None,
) -> PipelineSweep:
    """Fit one DP clustering and explain a whole seed sweep over it.

    The fig5/fig6-style amortisation for the end-to-end private setting:
    the clustering (a :class:`~repro.pipeline.spec.ClusteringSpec`) is
    fitted **once** — charging ``spec.epsilon`` once, not per seed — and
    every seed's explanation runs through :func:`explain_batched` (one
    scoring pass, per-seed byte-identical to serial ``DPClustX.explain``).

    With an ``accountant``, the fit charges iteration-wise through it and
    each seed's ``budget.total`` is reserved *before* any explanation noise
    is drawn; a refusal mid-reservation rolls back that call's own
    reservations by token, so a partially-affordable sweep leaves the
    ledger exactly as it found it (the already-released fit stays charged).
    """
    from ..pipeline.spec import ClusteringSpec  # local: keep layering acyclic

    if not isinstance(spec, ClusteringSpec):
        raise TypeError(f"spec must be a ClusteringSpec, got {spec!r}")
    spec = spec.validated()
    explainer = explainer or DPClustX()
    clustering = spec.fit(dataset, accountant=accountant)
    counts = ClusteredCounts(dataset, clustering)
    ctx = SweepContext(counts)
    if accountant is not None and seeds:
        # Exact whole-sweep affordability, before any per-seed reservation:
        # the sweep needs len(seeds) * budget.total on the accountant's
        # integer grid, so a sweep the cap cannot fund is refused in O(1)
        # instead of building (and rolling back) a pile of reservations.
        balance = accountant.balance()
        needed_units = quantize_epsilon(explainer.budget.total) * len(seeds)
        if (
            balance.remaining_units is not None
            and needed_units > balance.remaining_units
        ):
            raise BudgetError(
                f"explaining {len(seeds)} seeds needs "
                f"eps={explainer.budget.total * len(seeds):.4g} but only "
                f"{balance.remaining:.4g} remains after the fit"
            )
    tokens: "list[int]" = []
    try:
        if accountant is not None:
            for i, seed in enumerate(seeds):
                tag = seed if isinstance(seed, int) else f"rng[{i}]"
                tokens.append(
                    accountant.spend(
                        explainer.budget.total,
                        f"pipeline explain {spec.slug()} seed={tag} "
                        f"eps=({explainer.budget.eps_cand_set},"
                        f"{explainer.budget.eps_top_comb},"
                        f"{explainer.budget.eps_hist})",
                    )
                )
        explanations = explain_batched(explainer, counts, seeds, context=ctx)
    except Exception:
        # A refused reservation *or* an engine failure rolls back this
        # call's own reservations (nothing was released); the already-
        # released fit stays charged.
        for token in tokens:
            accountant.refund(token)
        raise
    return PipelineSweep(clustering, counts, ctx, explanations)


# --------------------------------------------------------------------------- #
# the batched trial runner
# --------------------------------------------------------------------------- #


def run_trials_batched(
    counts: CountsProvider,
    selectors: Mapping[str, Selector],
    n_runs: int = 10,
    weights: Weights | None = None,
    rng: np.random.Generator | int | None = 0,
    reference: "AttributeCombination | None" = None,
    context: SweepContext | None = None,
) -> list[TrialResult]:
    """Batched :func:`~repro.evaluation.runner.run_trials_serial`.

    Consumes the same spawned child streams in the same order, so the
    results are exactly equal for ``|C| <= 6`` (see the module docstring).
    ``context`` lets a grid sweep share one :class:`SweepContext` across
    epsilon points of the same counts provider.
    """
    from ..baselines.tabee import TabEE

    w = weights or Weights()
    gen = ensure_rng(rng)
    ctx = context if context is not None else SweepContext(counts)
    if ctx.counts is not counts:
        raise ValueError("context was built for a different counts provider")
    if reference is None:
        reference = ctx.tabee_combination(TabEE(weights=w))

    results = []
    for name, selector in selectors.items():
        children = spawn(gen, n_runs)
        combinations = select_batched(selector, counts, children, ctx)
        qualities = [ctx.quality(w, tuple(c)) for c in combinations]
        errors = [mae(c, reference) for c in combinations]
        results.append(
            TrialResult(
                explainer=name,
                quality_mean=float(np.mean(qualities)),
                quality_std=float(np.std(qualities)),
                mae_mean=float(np.mean(errors)),
                n_runs=n_runs,
            )
        )
    return results


# --------------------------------------------------------------------------- #
# grid fan-out (dataset x method x epsilon)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _GridTask:
    """One (dataset, method) cell with its epsilon grid — a pool work unit.

    Grouping all epsilon points of a cell into one task lets the worker
    serve every grid point from one counts materialisation and one
    :class:`SweepContext`.  With ``stack_handle`` set, the worker attaches
    the parent's shared-memory :class:`~repro.core.engine.stacks.CountsStack`
    (a size-independent handle) instead of re-loading the dataset and
    re-fitting the clustering behind its own process-local caches.
    """

    dataset: str
    method: str
    eps_grid: tuple[float, ...]
    config: object
    n_clusters: int | None
    explainers: tuple[str, ...] | None
    stack_handle: "object | None" = None


def _run_grid_task(task: _GridTask) -> list[dict]:
    """Worker: all epsilon points of one (dataset, method) cell."""
    from ..experiments.common import clustered_counts, clustering_epsilon_for
    from .runner import make_selectors

    if task.stack_handle is not None:
        from ..core.engine.shm import attach_counts

        counts = attach_counts(task.stack_handle)
    else:
        counts = clustered_counts(
            task.dataset, task.method, task.config, task.n_clusters
        )
    ctx = SweepContext(counts)
    clustering_eps = clustering_epsilon_for(task.method)
    rows: list[dict] = []
    try:
        for eps in task.eps_grid:
            selectors = make_selectors(eps, task.config.n_candidates)
            if task.explainers is not None:
                selectors = {
                    name: sel
                    for name, sel in selectors.items()
                    if name in task.explainers
                }
            for r in run_trials_batched(
                counts,
                selectors,
                task.config.n_runs,
                rng=task.config.seed,
                context=ctx,
            ):
                rows.append(
                    {
                        "dataset": task.dataset,
                        "method": task.method,
                        "epsilon": eps,
                        # The clustering's own DP spend and the end-to-end
                        # epsilon: "epsilon" alone is only the selection budget
                        # and understates the privacy cost of DP-k-means cells.
                        "clustering_epsilon": clustering_eps,
                        "epsilon_total": eps + clustering_eps,
                        "explainer": r.explainer,
                        "quality": r.quality_mean,
                        "quality_std": r.quality_std,
                        "mae": r.mae_mean,
                    }
                )
    finally:
        if task.stack_handle is not None:
            counts.close()
    return rows


def run_grid(
    config,
    n_clusters: int | None = None,
    explainers: tuple[str, ...] | None = None,
    processes: int | None = None,
    share_stacks: bool = True,
) -> list[dict]:
    """The (dataset, method, epsilon) sweep behind Figures 5/6/11/12.

    Runs every cell through the batched trial runner; with ``processes > 1``
    the (dataset, method) cells fan out across a process pool.  By default
    the parent materialises each cell's counts once and hands workers the
    stack through shared memory (``share_stacks=True``): the only per-task
    payload is a segment name plus schema metadata, so fan-out cost is flat
    in dataset size and no worker duplicates the dataset, the clustering
    fit, or the ``lru``-cached loaders.  ``share_stacks=False`` restores
    the legacy re-materialise-per-worker path (each worker warming its own
    dataset/clustering caches).  Row order — and every row value — is
    deterministic and independent of the pool size and the handoff mode:
    the stack holds the exact integer counts, so scores and noisy releases
    are bit-identical either way.
    """
    from ..experiments.common import eps_grid_for, methods_for

    tasks = [
        _GridTask(
            dataset=dataset,
            method=method,
            eps_grid=tuple(eps_grid_for(dataset)),
            config=config,
            n_clusters=n_clusters,
            explainers=explainers,
        )
        for dataset in config.datasets
        for method in methods_for(dataset, config.methods)
    ]
    if processes is not None and processes > 1 and len(tasks) > 1:
        from concurrent.futures import ProcessPoolExecutor

        if not share_stacks:
            with ProcessPoolExecutor(max_workers=processes) as pool:
                per_task = list(pool.map(_run_grid_task, tasks))
            return [row for rows in per_task for row in rows]

        from dataclasses import replace

        from ..core.engine.shm import share_stack
        from ..experiments.common import clustered_counts

        shared = []
        try:
            handed = []
            for task in tasks:
                counts = clustered_counts(
                    task.dataset, task.method, task.config, task.n_clusters
                )
                seg = share_stack(counts.by_cluster_stack())
                shared.append(seg)
                handed.append(replace(task, stack_handle=seg.handle))
            with ProcessPoolExecutor(max_workers=processes) as pool:
                per_task = list(pool.map(_run_grid_task, handed))
        finally:
            for seg in shared:
                seg.close()
                seg.unlink()
    else:
        per_task = [_run_grid_task(t) for t in tasks]
    return [row for rows in per_task for row in rows]
