"""Statistical helpers for experiment reporting.

The paper averages each measurement over 10 runs; when *comparing* two
explainers on the same clustering, run-to-run noise is shared (the counts
are fixed, only the mechanisms' coins differ), so paired statistics are the
right tool.  These helpers provide bootstrap confidence intervals and a
paired sign/bootstrap comparison used by tests and report tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..privacy.rng import ensure_rng


@dataclass(frozen=True)
class Summary:
    """Mean with a bootstrap percentile confidence interval."""

    mean: float
    lo: float
    hi: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.4f} [{self.lo:.4f}, {self.hi:.4f}] (n={self.n})"


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    rng: np.random.Generator | int | None = 0,
) -> Summary:
    """Percentile-bootstrap CI of the mean."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    gen = ensure_rng(rng)
    if arr.size == 1:
        return Summary(float(arr[0]), float(arr[0]), float(arr[0]), 1)
    idx = gen.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return Summary(float(arr.mean()), float(lo), float(hi), int(arr.size))


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired bootstrap comparison of two samples."""

    mean_diff: float
    lo: float
    hi: float
    prob_first_better: float

    @property
    def significant(self) -> bool:
        """True when the CI of the paired difference excludes zero."""
        return self.lo > 0.0 or self.hi < 0.0


def paired_bootstrap(
    first: Sequence[float],
    second: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    rng: np.random.Generator | int | None = 0,
) -> PairedComparison:
    """Bootstrap the mean of paired differences ``first - second``.

    Pairs must come from matched runs (same seed/clustering per index).
    ``prob_first_better`` is the fraction of pairs where ``first`` wins
    (ties count half).
    """
    a = np.asarray(list(first), dtype=np.float64)
    b = np.asarray(list(second), dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("need equally many paired values")
    diffs = a - b
    summary = bootstrap_mean(diffs, confidence, n_resamples, rng)
    wins = float(np.mean((diffs > 0) + 0.5 * (diffs == 0)))
    return PairedComparison(summary.mean, summary.lo, summary.hi, wins)


def relative_gap(value: float, reference: float) -> float:
    """``(reference - value) / reference`` — the paper's percentage phrasing."""
    if reference == 0:
        return 0.0
    return (reference - value) / reference
