"""Repeated-trial infrastructure shared by the experiment harnesses.

The paper averages every measurement over 10 runs (Section 6.2).  A *trial*
fixes the dataset + clustering (hence the :class:`ClusteredCounts`), runs
each explainer with a fresh seed, and scores the selected attribute
combination with the sensitive ``Quality`` metric and the MAE against the
non-private TabEE reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.counts import ClusteredCounts, CountsProvider
from ..core.dpclustx import DPClustX
from ..core.hbe import AttributeCombination
from ..core.quality.scores import Weights
from ..privacy.budget import ExplanationBudget
from ..privacy.rng import ensure_rng, spawn
from .mae import mae
from .quality import QualityEvaluator

Selector = Callable[[CountsProvider, np.random.Generator], AttributeCombination]


class ExplainerSelector:
    """A selector callable that also exposes its underlying explainer.

    Calling it runs the serial one-seed path exactly as before; the batched
    sweep layer (:mod:`repro.evaluation.sweeps`) instead dispatches on the
    ``explainer`` instance to vectorise the whole seed dimension.  Unknown
    plain callables still work everywhere — they just fall back to the
    per-seed path.
    """

    __slots__ = ("explainer", "_call")

    def __init__(self, explainer: object, call: Selector):
        self.explainer = explainer
        self._call = call

    def __call__(
        self, counts: CountsProvider, rng: np.random.Generator
    ) -> AttributeCombination:
        return self._call(counts, rng)


def make_selectors(
    eps_selection: float,
    n_candidates: int = 3,
    weights: Weights | None = None,
) -> dict[str, Selector]:
    """The four explainers of Section 6.1 at a given *selection* budget.

    Following the paper's sweeps, ``eps_CandSet = eps_TopComb = eps/2`` for
    DPClustX and DP-TabEE, and DP-Naive gets the whole ``eps`` for its
    histogram releases.  TabEE ignores the budget.
    """
    # Imported here: baselines import the quality evaluator from this
    # package, so a module-level import would be circular.
    from ..baselines.dp_naive import DPNaive
    from ..baselines.dp_tabee import DPTabEE
    from ..baselines.tabee import TabEE

    w = weights or Weights()
    budget = ExplanationBudget.split_selection(eps_selection)
    dpclustx = DPClustX(n_candidates, w, budget)
    dp_tabee = DPTabEE(n_candidates, w, budget)
    dp_naive = DPNaive(eps_selection, n_candidates, w)
    tabee = TabEE(n_candidates, w)
    return {
        "DPClustX": ExplainerSelector(
            dpclustx,
            lambda counts, rng: dpclustx.select_combination(counts, rng).combination,
        ),
        "TabEE": ExplainerSelector(
            tabee, lambda counts, rng: tabee.select_combination(counts, rng)
        ),
        "DP-TabEE": ExplainerSelector(
            dp_tabee, lambda counts, rng: dp_tabee.select_combination(counts, rng)
        ),
        "DP-Naive": ExplainerSelector(
            dp_naive, lambda counts, rng: dp_naive.select_combination(counts, rng)
        ),
    }


@dataclass(frozen=True)
class TrialResult:
    """Aggregated measurements for one explainer at one configuration."""

    explainer: str
    quality_mean: float
    quality_std: float
    mae_mean: float
    n_runs: int


def run_trials(
    counts: ClusteredCounts,
    selectors: Mapping[str, Selector],
    n_runs: int = 10,
    weights: Weights | None = None,
    rng: np.random.Generator | int | None = 0,
    reference: "AttributeCombination | None" = None,
) -> list[TrialResult]:
    """Average Quality and MAE of each selector over ``n_runs`` fresh seeds.

    Routed through the batched sweep layer
    (:func:`repro.evaluation.sweeps.run_trials_batched`), which vectorises
    the seed dimension while consuming the same spawned child streams as
    the serial path — :func:`run_trials_serial` below — so results are
    unchanged (exactly equal whenever ``|C| <= 6``; see the sweep module).
    """
    from .sweeps import run_trials_batched

    return run_trials_batched(
        counts,
        selectors,
        n_runs=n_runs,
        weights=weights,
        rng=rng,
        reference=reference,
    )


def run_trials_serial(
    counts: ClusteredCounts,
    selectors: Mapping[str, Selector],
    n_runs: int = 10,
    weights: Weights | None = None,
    rng: np.random.Generator | int | None = 0,
    reference: "AttributeCombination | None" = None,
) -> list[TrialResult]:
    """The one-seed-at-a-time reference loop (the seed repo's ``run_trials``).

    Kept verbatim as the oracle the batched sweep layer is pinned against
    (``tests/test_sweeps.py``) and as the before-side of
    ``benchmarks/bench_sweeps.py``.
    """
    w = weights or Weights()
    gen = ensure_rng(rng)
    evaluator = QualityEvaluator(counts, w, 0)
    if reference is None:
        from ..baselines.tabee import TabEE

        reference = TabEE(weights=w).select_combination(counts, 0)

    results = []
    for name, selector in selectors.items():
        qualities = []
        errors = []
        for child in spawn(gen, n_runs):
            combination = selector(counts, child)
            qualities.append(evaluator.quality(tuple(combination)))
            errors.append(mae(combination, reference))
        results.append(
            TrialResult(
                explainer=name,
                quality_mean=float(np.mean(qualities)),
                quality_std=float(np.std(qualities)),
                mae_mean=float(np.mean(errors)),
                n_runs=n_runs,
            )
        )
    return results


def format_results_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str]
) -> str:
    """Fixed-width table used by every experiment's console output."""
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    lines = [header, sep]
    for r in rows:
        lines.append("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
