"""The sensitive ``Quality`` metric of Section 6.1, with memoisation.

``Quality = lambda_Int * Int + lambda_Suf * Suf + lambda_Div * Div`` where the
three terms are the *original, sensitive* quality functions of [8] — per the
paper, the low-sensitivity variants drive the DP algorithm, but evaluation is
always against the sensitive originals.  ``Div`` is the permutation-based
diversity normalised by ``|C|`` (footnote 6), so Quality lands in [0, 1].

:class:`QualityEvaluator` caches the per-(cluster, attribute) terms and the
per-(attribute, cluster-group) permutation diversities, which is what makes
TabEE-style exhaustive Stage-2 scans over ``k^|C|`` combinations affordable.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..core.counts import CountsProvider
from ..core.engine import scoring_engine
from ..core.quality.diversity import _avg_perm_div
from ..core.quality.scores import Weights
from ..privacy.rng import ensure_rng


class QualityEvaluator:
    """Memoised evaluator of the sensitive Quality metric over combinations.

    All per-(cluster, attribute) primitives are served by the batched
    scoring engine: the full sensitive-interestingness and sufficiency
    matrices are computed once per counts provider, and the per-attribute
    cluster-TVD squares back the permutation diversity.
    """

    def __init__(
        self,
        counts: CountsProvider,
        weights: Weights,
        rng: np.random.Generator | int | None = 0,
    ):
        self._counts = counts
        self._weights = weights
        self._rng = ensure_rng(rng)
        self._engine = scoring_engine(counts)
        self._group_div_cache: dict[tuple[str, tuple[int, ...]], float] = {}

    @property
    def counts(self) -> CountsProvider:
        return self._counts

    @property
    def weights(self) -> Weights:
        return self._weights

    # -- cached primitives ------------------------------------------------ #

    def _int(self, c: int, a: str) -> float:
        matrix = self._engine.interestingness_tvd_matrix()
        return float(matrix[c, self._engine.stack.index[a]])

    def _suf_p(self, c: int, a: str) -> float:
        matrix = self._engine.sufficiency_matrix()
        return float(matrix[c, self._engine.stack.index[a]])

    def _tvd_matrix(self, a: str) -> np.ndarray:
        """Pairwise TVDs between all cluster distributions on attribute ``a``."""
        return self._engine.cluster_tvd_square(a)

    def _group_diversity(self, a: str, group: tuple[int, ...]) -> float:
        """Average ``PermDiv_A`` over the clusters in ``group`` (Appendix A.3)."""
        key = (a, group)
        if key not in self._group_div_cache:
            if len(group) == 1:
                value = 1.0
            else:
                sub = self._tvd_matrix(a)[np.ix_(group, group)]
                value = _avg_perm_div(sub, self._rng)
            self._group_div_cache[key] = value
        return self._group_div_cache[key]

    # -- metric components ------------------------------------------------ #

    def interestingness(self, attributes: Sequence[str]) -> float:
        """Sensitive global interestingness: average per-cluster TVD."""
        k = self._counts.n_clusters
        return sum(self._int(c, a) for c, a in enumerate(attributes)) / k

    def sufficiency(self, attributes: Sequence[str]) -> float:
        """Sensitive global sufficiency via Proposition 4.7(1)."""
        acc = 0.0
        for c, a in enumerate(attributes):
            n = self._counts.total(a)
            if n > 0:
                acc += self._suf_p(c, a) / n
        return acc

    def diversity(self, attributes: Sequence[str]) -> float:
        """Sensitive permutation diversity, normalised by ``|C|``."""
        by_attr: dict[str, list[int]] = {}
        for c, a in enumerate(attributes):
            by_attr.setdefault(a, []).append(c)
        total = sum(
            self._group_diversity(a, tuple(g)) for a, g in by_attr.items()
        )
        return total / self._counts.n_clusters

    def quality(self, attributes: Sequence[str]) -> float:
        """The combined Quality score in [0, 1]."""
        if len(attributes) != self._counts.n_clusters:
            raise ValueError("need one attribute per cluster")
        w = self._weights
        score = 0.0
        if w.lambda_int:
            score += w.lambda_int * self.interestingness(attributes)
        if w.lambda_suf:
            score += w.lambda_suf * self.sufficiency(attributes)
        if w.lambda_div:
            score += w.lambda_div * self.diversity(attributes)
        return score

    # -- exhaustive search (TabEE Stage-2) --------------------------------- #

    def best_combination(
        self, candidate_sets: Sequence[Sequence[str]]
    ) -> tuple[tuple[str, ...], float]:
        """Arg-max Quality over the product of per-cluster candidate sets."""
        best: tuple[str, ...] | None = None
        best_score = -np.inf
        for combo in itertools.product(*candidate_sets):
            s = self.quality(combo)
            if s > best_score:
                best, best_score = combo, s
        if best is None:
            raise ValueError("no candidate combinations")
        return best, float(best_score)

    def all_scores(
        self, candidate_sets: Sequence[Sequence[str]]
    ) -> tuple[list[tuple[str, ...]], np.ndarray]:
        """All combinations with their Quality scores (for EM baselines)."""
        combos = list(itertools.product(*candidate_sets))
        scores = np.array([self.quality(c) for c in combos])
        return combos, scores


def quality(
    counts: CountsProvider,
    attributes: Sequence[str],
    weights: Weights | None = None,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Convenience one-shot Quality evaluation."""
    return QualityEvaluator(counts, weights or Weights(), rng).quality(attributes)
