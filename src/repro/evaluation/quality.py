"""The sensitive ``Quality`` metric of Section 6.1, with memoisation.

``Quality = lambda_Int * Int + lambda_Suf * Suf + lambda_Div * Div`` where the
three terms are the *original, sensitive* quality functions of [8] — per the
paper, the low-sensitivity variants drive the DP algorithm, but evaluation is
always against the sensitive originals.  ``Div`` is the permutation-based
diversity normalised by ``|C|`` (footnote 6), so Quality lands in [0, 1].

:class:`QualityEvaluator` caches the per-(cluster, attribute) terms and the
per-(attribute, cluster-group) permutation diversities, which is what makes
TabEE-style exhaustive Stage-2 scans over ``k^|C|`` combinations affordable.
"""

from __future__ import annotations

import itertools
import math
from functools import lru_cache
from typing import Sequence

import numpy as np

from ..core.counts import CountsProvider
from ..core.engine import scoring_engine
from ..core.quality.diversity import _avg_perm_div
from ..core.quality.scores import Weights
from ..privacy.rng import ensure_rng


@lru_cache(maxsize=64)
def _product_grid(shape: tuple[int, ...]) -> tuple[np.ndarray, ...]:
    """Flattened per-axis index grids of ``itertools.product`` enumeration.

    ``_product_grid((k_1, ..., k_C))[c][i]`` is the index drawn from axis
    ``c`` by the ``i``-th combination in row-major product order.  Cached:
    sweeps evaluate thousands of same-shape candidate-set families.
    """
    grids = np.meshgrid(
        *(np.arange(m, dtype=np.intp) for m in shape), indexing="ij"
    )
    return tuple(g.reshape(-1) for g in grids)


class QualityEvaluator:
    """Memoised evaluator of the sensitive Quality metric over combinations.

    All per-(cluster, attribute) primitives are served by the batched
    scoring engine: the full sensitive-interestingness and sufficiency
    matrices are computed once per counts provider, and the per-attribute
    cluster-TVD squares back the permutation diversity.
    """

    def __init__(
        self,
        counts: CountsProvider,
        weights: Weights,
        rng: np.random.Generator | int | None = 0,
    ):
        self._counts = counts
        self._weights = weights
        self._rng = ensure_rng(rng)
        self._engine = scoring_engine(counts)
        self._group_div_cache: dict[tuple[str, tuple[int, ...]], float] = {}

    @property
    def counts(self) -> CountsProvider:
        return self._counts

    @property
    def weights(self) -> Weights:
        return self._weights

    # -- cached primitives ------------------------------------------------ #

    def _int(self, c: int, a: str) -> float:
        matrix = self._engine.interestingness_tvd_matrix()
        return float(matrix[c, self._engine.stack.index[a]])

    def _suf_p(self, c: int, a: str) -> float:
        matrix = self._engine.sufficiency_matrix()
        return float(matrix[c, self._engine.stack.index[a]])

    def _tvd_matrix(self, a: str) -> np.ndarray:
        """Pairwise TVDs between all cluster distributions on attribute ``a``."""
        return self._engine.cluster_tvd_square(a)

    def _group_diversity(self, a: str, group: tuple[int, ...]) -> float:
        """Average ``PermDiv_A`` over the clusters in ``group`` (Appendix A.3)."""
        key = (a, group)
        if key not in self._group_div_cache:
            if len(group) == 1:
                value = 1.0
            else:
                idx = np.asarray(group, dtype=np.intp)
                sub = self._tvd_matrix(a)[idx[:, None], idx]
                value = _avg_perm_div(sub, self._rng)
            self._group_div_cache[key] = value
        return self._group_div_cache[key]

    # -- metric components ------------------------------------------------ #

    def interestingness(self, attributes: Sequence[str]) -> float:
        """Sensitive global interestingness: average per-cluster TVD."""
        k = self._counts.n_clusters
        return sum(self._int(c, a) for c, a in enumerate(attributes)) / k

    def sufficiency(self, attributes: Sequence[str]) -> float:
        """Sensitive global sufficiency via Proposition 4.7(1)."""
        acc = 0.0
        for c, a in enumerate(attributes):
            n = self._counts.total(a)
            if n > 0:
                acc += self._suf_p(c, a) / n
        return acc

    def diversity(self, attributes: Sequence[str]) -> float:
        """Sensitive permutation diversity, normalised by ``|C|``."""
        by_attr: dict[str, list[int]] = {}
        for c, a in enumerate(attributes):
            by_attr.setdefault(a, []).append(c)
        total = sum(
            self._group_diversity(a, tuple(g)) for a, g in by_attr.items()
        )
        return total / self._counts.n_clusters

    def quality(self, attributes: Sequence[str]) -> float:
        """The combined Quality score in [0, 1]."""
        if len(attributes) != self._counts.n_clusters:
            raise ValueError("need one attribute per cluster")
        w = self._weights
        score = 0.0
        if w.lambda_int:
            score += w.lambda_int * self.interestingness(attributes)
        if w.lambda_suf:
            score += w.lambda_suf * self.sufficiency(attributes)
        if w.lambda_div:
            score += w.lambda_div * self.diversity(attributes)
        return score

    # -- exhaustive search (TabEE Stage-2) --------------------------------- #

    def best_combination(
        self, candidate_sets: Sequence[Sequence[str]]
    ) -> tuple[tuple[str, ...], float]:
        """Arg-max Quality over the product of per-cluster candidate sets."""
        best: tuple[str, ...] | None = None
        best_score = -np.inf
        for combo in itertools.product(*candidate_sets):
            s = self.quality(combo)
            if s > best_score:
                best, best_score = combo, s
        if best is None:
            raise ValueError("no candidate combinations")
        return best, float(best_score)

    def all_scores(
        self, candidate_sets: Sequence[Sequence[str]]
    ) -> tuple[list[tuple[str, ...]], np.ndarray]:
        """All combinations with their Quality scores (for EM baselines)."""
        combos = list(itertools.product(*candidate_sets))
        scores = np.array([self.quality(c) for c in combos])
        return combos, scores

    # -- batched evaluation (the sweep layer's Stage-2) --------------------- #

    def quality_tensor(
        self, candidate_sets: Sequence[Sequence[str]]
    ) -> np.ndarray:
        """Sensitive Quality of *every* combination in one vectorised pass.

        Returns the flat ``(prod k_c,)`` score vector in
        ``itertools.product`` enumeration order — bit-for-bit identical to
        ``np.array([self.quality(c) for c in itertools.product(*sets)])``
        whenever every attribute group fits the exact permutation
        enumeration (always the case for ``|C| <= 6``): each accumulation
        below mirrors the scalar path's operation order, and the
        permutation-diversity leaves are served by the same memoised
        :meth:`_group_diversity`.  For larger Monte-Carlo-sampled groups the
        values depend on this evaluator's cache-miss order, so looping
        :meth:`quality` on a *fresh* evaluator may differ in the sampled
        diversity term.

        Int and Suf decompose per cluster and broadcast; the diversity term
        does not (it groups clusters sharing one attribute), so each
        combination's group structure is encoded as a per-attribute cluster
        bitmask and resolved through a lookup table of group diversities.
        """
        k = self._counts.n_clusters
        sets = [tuple(s) for s in candidate_sets]
        if len(sets) != k:
            raise ValueError("need one attribute per cluster")
        shape = tuple(len(s) for s in sets)
        n = math.prod(shape)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        stack = self._engine.stack
        index = stack.index
        cols = [
            np.array([index[a] for a in s], dtype=np.intp) for s in sets
        ]
        # (n, |C|): the attribute column chosen for each cluster, enumerated
        # in row-major itertools.product order.
        grids = _product_grid(shape)
        attr_cols = np.stack(
            [cols[c][g] for c, g in enumerate(grids)], axis=1
        )
        w = self._weights
        total = np.zeros(n, dtype=np.float64)
        if w.lambda_int:
            int_m = self._engine.interestingness_tvd_matrix()
            acc = np.zeros(n, dtype=np.float64)
            for c in range(k):
                acc += int_m[c, attr_cols[:, c]]
            total += w.lambda_int * (acc / k)
        if w.lambda_suf:
            suf_m = self._engine.sufficiency_matrix()
            totals = stack.totals
            acc = np.zeros(n, dtype=np.float64)
            for c in range(k):
                t = totals[attr_cols[:, c]]
                positive = t > 0
                acc += np.where(
                    positive,
                    suf_m[c, attr_cols[:, c]] / np.where(positive, t, 1.0),
                    0.0,
                )
            total += w.lambda_suf * acc
        if w.lambda_div:
            # div_terms[i, c] holds the group diversity of the attribute
            # first occurring at cluster c in combination i (0 elsewhere);
            # accumulating over c reproduces the scalar path's
            # insertion-order sum over ``by_attr``.
            div_terms = np.zeros((n, k), dtype=np.float64)
            powers = 1 << np.arange(k, dtype=np.int64)
            support: dict[int, list[int]] = {}
            for c, col in enumerate(cols):
                for a_col in col:
                    support.setdefault(int(a_col), []).append(c)
            for a_col, clusters in support.items():
                if len(clusters) == 1:
                    # Candidate of a single cluster: the group is always the
                    # singleton {c} with diversity 1 (the scalar path's
                    # len(group) == 1 shortcut) — one vectorised write.
                    c = clusters[0]
                    div_terms[attr_cols[:, c] == a_col, c] = 1.0
                    continue
                name = stack.names[a_col]
                eq = attr_cols == a_col
                mask = eq.astype(np.int64) @ powers
                present = mask > 0
                lut = np.zeros(1 << k, dtype=np.float64)
                for m_val in np.unique(mask[present]):
                    group = tuple(
                        int(c) for c in range(k) if (int(m_val) >> c) & 1
                    )
                    lut[m_val] = self._group_diversity(name, group)
                rows = np.flatnonzero(present)
                div_terms[rows, eq.argmax(axis=1)[rows]] = lut[mask[rows]]
            acc = np.zeros(n, dtype=np.float64)
            for c in range(k):
                acc += div_terms[:, c]
            total += w.lambda_div * (acc / k)
        return total

    def best_combination_batched(
        self, candidate_sets: Sequence[Sequence[str]]
    ) -> tuple[tuple[str, ...], float]:
        """Vectorised :meth:`best_combination` (first-max tie-break kept)."""
        sets = [tuple(s) for s in candidate_sets]
        scores = self.quality_tensor(sets)
        if scores.size == 0:
            raise ValueError("no candidate combinations")
        flat = int(np.argmax(scores))
        picks = np.unravel_index(flat, tuple(len(s) for s in sets))
        best = tuple(sets[c][int(j)] for c, j in enumerate(picks))
        return best, float(scores[flat])


def quality(
    counts: CountsProvider,
    attributes: Sequence[str],
    weights: Weights | None = None,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Convenience one-shot Quality evaluation."""
    return QualityEvaluator(counts, weights or Weights(), rng).quality(attributes)
