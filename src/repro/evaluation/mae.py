"""Discrete mean absolute error between attribute combinations (Section 6.1).

``MAE(AC) = (1/|C|) * sum_c 1{AC(c) != AC*(c)}`` where ``AC*`` is the
combination chosen by the non-private TabEE baseline.  All attributes count
as distinct regardless of correlation; MAE = 0 means an identical choice.
"""

from __future__ import annotations

from typing import Sequence

from ..core.hbe import AttributeCombination


def mae(
    combination: "AttributeCombination | Sequence[str]",
    reference: "AttributeCombination | Sequence[str]",
) -> float:
    """Fraction of clusters whose selected attribute differs from the reference."""
    a = list(combination)
    b = list(reference)
    if len(a) != len(b):
        raise ValueError("combinations must cover the same clusters")
    if not a:
        raise ValueError("combinations must be non-empty")
    return sum(1 for x, y in zip(a, b) if x != y) / len(a)
