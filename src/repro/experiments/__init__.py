"""Experiment harnesses — one module per figure/table of the paper.

Each module exposes ``run(config) -> rows`` and a CLI ``main()``:

* ``fig5_quality``   — Fig. 5 / Fig. 11: Quality vs epsilon
* ``fig6_mae``       — Fig. 6 / Fig. 12: MAE vs epsilon
* ``fig7_candidates``— Fig. 7: Quality vs candidate-set size k
* ``fig8_clusters``  — Fig. 8a/8b: Quality vs |C| and cluster size
* ``fig9_performance`` — Fig. 9a-d: execution-time trends
* ``fig10_case_study`` — Fig. 10 / Sec. 6.4: Census case study
* ``table1_weights`` — Table 1: Quality per weight configuration
* ``correlations``   — Sec. 6.2: correlated-attribute robustness
"""

from . import (
    binning,
    common,
    correlations,
    eda_comparison,
    fig5_quality,
    fig6_mae,
    fig7_candidates,
    fig8_clusters,
    fig9_performance,
    fig10_case_study,
    scale,
    table1_weights,
)
from .common import ExperimentConfig, quick_config

__all__ = [
    "binning",
    "common",
    "correlations",
    "eda_comparison",
    "fig5_quality",
    "fig6_mae",
    "fig7_candidates",
    "fig8_clusters",
    "fig9_performance",
    "fig10_case_study",
    "scale",
    "table1_weights",
    "ExperimentConfig",
    "quick_config",
]
