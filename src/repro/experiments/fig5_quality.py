"""Figure 5 (and appendix Figure 11): Quality vs. total selection budget eps.

For each dataset x clustering method, sweep the selection budget
``eps = eps_CandSet + eps_TopComb`` (split evenly, Section 6.2) and measure
the sensitive Quality of the attribute combination selected by DPClustX,
TabEE, DP-TabEE and DP-Naive, averaged over ``n_runs`` runs.  Histogram
generation is skipped — "this experiment examines the attribute choice".

Run: ``python -m repro.experiments.fig5_quality``
"""

from __future__ import annotations

import argparse

from ..evaluation.runner import format_results_table
from ..evaluation.sweeps import run_grid
from .common import ExperimentConfig

COLUMNS = (
    "dataset",
    "method",
    "epsilon",
    "clustering_epsilon",
    "epsilon_total",
    "explainer",
    "quality",
    "quality_std",
    "mae",
)


def run(
    config: ExperimentConfig | None = None,
    n_clusters: int | None = None,
    processes: int | None = None,
) -> list[dict]:
    """Produce the Figure 5 series (appendix Fig. 11 via ``n_clusters``).

    Routed through the batched sweep layer: every (dataset, method) cell
    shares one memoised counts/scoring context across its epsilon grid, and
    ``processes > 1`` fans the cells across a process pool.
    """
    config = config or ExperimentConfig()
    return run_grid(config, n_clusters=n_clusters, processes=processes)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--clusters", type=int, default=None,
                        help="override |C| (appendix Figure 11 uses 3 and 7)")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--processes", type=int, default=None,
                        help="fan (dataset, method) cells across a process pool")
    args = parser.parse_args()
    config = ExperimentConfig(n_runs=args.runs)
    if args.datasets:
        config = ExperimentConfig(n_runs=args.runs, datasets=tuple(args.datasets))
    rows = run(config, n_clusters=args.clusters, processes=args.processes)
    print("Figure 5 — Quality of the selected attribute combination vs epsilon")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
