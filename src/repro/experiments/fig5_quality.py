"""Figure 5 (and appendix Figure 11): Quality vs. total selection budget eps.

For each dataset x clustering method, sweep the selection budget
``eps = eps_CandSet + eps_TopComb`` (split evenly, Section 6.2) and measure
the sensitive Quality of the attribute combination selected by DPClustX,
TabEE, DP-TabEE and DP-Naive, averaged over ``n_runs`` runs.  Histogram
generation is skipped — "this experiment examines the attribute choice".

Run: ``python -m repro.experiments.fig5_quality``
"""

from __future__ import annotations

import argparse

from ..evaluation.runner import format_results_table, make_selectors, run_trials
from .common import (
    ExperimentConfig,
    clustered_counts,
    eps_grid_for,
    methods_for,
)

COLUMNS = ("dataset", "method", "epsilon", "explainer", "quality", "quality_std", "mae")


def run(
    config: ExperimentConfig | None = None, n_clusters: int | None = None
) -> list[dict]:
    """Produce the Figure 5 series (appendix Fig. 11 via ``n_clusters``)."""
    config = config or ExperimentConfig()
    rows: list[dict] = []
    for dataset_name in config.datasets:
        for method in methods_for(dataset_name, config.methods):
            counts = clustered_counts(dataset_name, method, config, n_clusters)
            for eps in eps_grid_for(dataset_name):
                selectors = make_selectors(eps, config.n_candidates)
                results = run_trials(
                    counts, selectors, config.n_runs, rng=config.seed
                )
                for r in results:
                    rows.append(
                        {
                            "dataset": dataset_name,
                            "method": method,
                            "epsilon": eps,
                            "explainer": r.explainer,
                            "quality": r.quality_mean,
                            "quality_std": r.quality_std,
                            "mae": r.mae_mean,
                        }
                    )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--clusters", type=int, default=None,
                        help="override |C| (appendix Figure 11 uses 3 and 7)")
    parser.add_argument("--datasets", nargs="*", default=None)
    args = parser.parse_args()
    config = ExperimentConfig(n_runs=args.runs)
    if args.datasets:
        config = ExperimentConfig(n_runs=args.runs, datasets=tuple(args.datasets))
    rows = run(config, n_clusters=args.clusters)
    print("Figure 5 — Quality of the selected attribute combination vs epsilon")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
