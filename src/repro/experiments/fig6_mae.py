"""Figure 6 (and appendix Figure 12): MAE of the selected combination vs eps.

Same sweep as Figure 5, reporting the discrete MAE against the non-private
TabEE reference combination.  MAE 0 means an identical attribute choice; all
attributes count as distinct even when correlated (Section 6.2).

Run: ``python -m repro.experiments.fig6_mae``
"""

from __future__ import annotations

import argparse

from ..evaluation.runner import format_results_table, make_selectors, run_trials
from .common import (
    ExperimentConfig,
    clustered_counts,
    eps_grid_for,
    methods_for,
)

COLUMNS = ("dataset", "method", "epsilon", "explainer", "mae")
DP_EXPLAINERS = ("DPClustX", "DP-TabEE", "DP-Naive")


def run(
    config: ExperimentConfig | None = None, n_clusters: int | None = None
) -> list[dict]:
    """Produce the Figure 6 series (appendix Fig. 12 via ``n_clusters``)."""
    config = config or ExperimentConfig()
    rows: list[dict] = []
    for dataset_name in config.datasets:
        for method in methods_for(dataset_name, config.methods):
            counts = clustered_counts(dataset_name, method, config, n_clusters)
            for eps in eps_grid_for(dataset_name):
                selectors = {
                    name: sel
                    for name, sel in make_selectors(eps, config.n_candidates).items()
                    if name in DP_EXPLAINERS
                }
                results = run_trials(counts, selectors, config.n_runs, rng=config.seed)
                for r in results:
                    rows.append(
                        {
                            "dataset": dataset_name,
                            "method": method,
                            "epsilon": eps,
                            "explainer": r.explainer,
                            "mae": r.mae_mean,
                        }
                    )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--clusters", type=int, default=None,
                        help="override |C| (appendix Figure 12 uses 3/5/7)")
    args = parser.parse_args()
    rows = run(ExperimentConfig(n_runs=args.runs), n_clusters=args.clusters)
    print("Figure 6 — MAE vs the non-private TabEE combination")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
