"""Figure 6 (and appendix Figure 12): MAE of the selected combination vs eps.

Same sweep as Figure 5, reporting the discrete MAE against the non-private
TabEE reference combination.  MAE 0 means an identical attribute choice; all
attributes count as distinct even when correlated (Section 6.2).

Run: ``python -m repro.experiments.fig6_mae``
"""

from __future__ import annotations

import argparse

from ..evaluation.runner import format_results_table
from ..evaluation.sweeps import run_grid
from .common import ExperimentConfig

COLUMNS = (
    "dataset",
    "method",
    "epsilon",
    "clustering_epsilon",
    "epsilon_total",
    "explainer",
    "mae",
)
DP_EXPLAINERS = ("DPClustX", "DP-TabEE", "DP-Naive")


def run(
    config: ExperimentConfig | None = None,
    n_clusters: int | None = None,
    processes: int | None = None,
) -> list[dict]:
    """Produce the Figure 6 series (appendix Fig. 12 via ``n_clusters``).

    Same batched grid sweep as Figure 5, restricted to the DP explainers
    and projected onto the MAE column.
    """
    config = config or ExperimentConfig()
    rows = run_grid(
        config,
        n_clusters=n_clusters,
        explainers=DP_EXPLAINERS,
        processes=processes,
    )
    return [{key: row[key] for key in COLUMNS} for row in rows]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--clusters", type=int, default=None,
                        help="override |C| (appendix Figure 12 uses 3/5/7)")
    parser.add_argument("--processes", type=int, default=None,
                        help="fan (dataset, method) cells across a process pool")
    args = parser.parse_args()
    rows = run(
        ExperimentConfig(n_runs=args.runs),
        n_clusters=args.clusters,
        processes=args.processes,
    )
    print("Figure 6 — MAE vs the non-private TabEE combination")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
