"""Scale experiment: how the DP-vs-non-private gap closes with dataset size.

Not a paper figure, but the quantitative backbone of this reproduction's
scale disclaimer (EXPERIMENTS.md): our stand-in datasets run at ~25k rows
versus the paper's 102k-2.46M, and every low-sensitivity score scales with
|D_c| while the selection noise is constant — so the Quality gap at fixed
epsilon must shrink as rows grow.  This harness measures exactly that:
DPClustX's relative Quality (vs TabEE on the same counts) across dataset
sizes at the default selection budget.

Run: ``python -m repro.experiments.scale`` (or ``python -m repro scale``)
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Mapping

import numpy as np

from ..baselines.tabee import TabEE
from ..core.counts import ClusteredCounts, StreamedCounts, StreamingCountsBuilder
from ..core.dpclustx import DPClustX
from ..core.quality.scores import Weights
from ..dataset.schema import Schema
from ..dataset.table import CODE_DTYPE, Dataset, chunk_spans
from ..evaluation.quality import QualityEvaluator
from ..evaluation.runner import format_results_table
from ..evaluation.sweeps import select_batched
from ..privacy.budget import ExplanationBudget
from ..privacy.rng import ensure_rng, spawn
from .common import ExperimentConfig, fit_clustering, load_dataset

COLUMNS = ("dataset", "n_rows", "avg_cluster", "quality_dp", "quality_tabee", "ratio")
ROW_GRID = (5_000, 10_000, 25_000, 60_000)
DEFAULT_EPS = 0.1  # the regime where Figure 5 shows the visible gap


# --------------------------------------------------------------------------- #
# chunked synthetic source for the large-n (1M-10M row) regime
# --------------------------------------------------------------------------- #

# Domain sizes cycled across attributes — mixed power-of-two classes so the
# resulting stack exercises several buckets, like the real datasets do.
_DOMAIN_CYCLE = (8, 12, 6, 16, 10, 5, 20, 9, 14, 7, 11)


def _peaked(m: int, peak: int, sharpness: float = 2.5) -> np.ndarray:
    """A unimodal categorical distribution over ``m`` values peaked at ``peak``."""
    x = np.arange(m, dtype=np.float64)
    w = 1.0 / (1.0 + np.abs(x - peak)) ** sharpness
    return w / w.sum()


@dataclass(frozen=True)
class ChunkedPlantedSource:
    """Deterministic planted-cluster rows generated chunk by chunk.

    The large-n counterpart of :mod:`repro.synth`: every row carries a
    planted group label and per-attribute values drawn from group-peaked
    categorical distributions, but rows are *generated* in fixed-size chunks
    so the 10M-row benchmarks never hold the full table — feed
    :meth:`chunks` straight into a
    :class:`~repro.core.counts.StreamingCountsBuilder`.

    Determinism: row ``i`` is a pure function of ``(seed, i)``.  Each row
    consumes a fixed, 4-aligned number of Philox draws, and each chunk
    resumes the counter at ``start * draws_per_row`` via
    ``Philox.advance`` — so the generated stream is *identical for every
    chunking*, not just for the default ``chunk_rows``.
    """

    n_rows: int
    n_attributes: int = 11
    n_groups: int = 8
    seed: int = 0
    chunk_rows: int = 262_144

    def __post_init__(self) -> None:
        if self.n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        if not 1 <= self.n_attributes:
            raise ValueError("need at least one attribute")
        if self.n_groups < 1:
            raise ValueError("need at least one group")

    @cached_property
    def schema(self) -> Schema:
        sizes = [
            _DOMAIN_CYCLE[j % len(_DOMAIN_CYCLE)] for j in range(self.n_attributes)
        ]
        return Schema.from_domains(
            {
                f"a{j}": tuple(f"v{v}" for v in range(m))
                for j, m in enumerate(sizes)
            }
        )

    @cached_property
    def _cdfs(self) -> tuple[np.ndarray, ...]:
        """Per-attribute ``(n_groups, m_j)`` CDF tables of the planted mixture."""
        cdfs = []
        for j, attr in enumerate(self.schema):
            m = attr.domain_size
            probs = np.stack(
                [_peaked(m, (g * (j + 3)) % m) for g in range(self.n_groups)]
            )
            cdfs.append(np.cumsum(probs, axis=1))
        return tuple(cdfs)

    @property
    def _draws_per_row(self) -> int:
        # 1 label word + 1 word per attribute, padded up to a multiple of 4:
        # Philox.advance() moves in 4-draw counter blocks, so a 4-aligned row
        # width is what makes mid-stream chunk starts land exactly.
        return -(-(self.n_attributes + 1) // 4) * 4

    def _generate_span(
        self, span: slice
    ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        length = span.stop - span.start
        bit_gen = np.random.Philox(key=self.seed)
        bit_gen.advance(span.start * self._draws_per_row // 4)
        u = np.random.Generator(bit_gen).random((length, self._draws_per_row))
        labels = np.minimum(
            (u[:, 0] * self.n_groups).astype(np.int64), self.n_groups - 1
        )
        columns: dict[str, np.ndarray] = {}
        for j, attr in enumerate(self.schema):
            cdf = self._cdfs[j]
            codes = np.empty(length, dtype=CODE_DTYPE)
            for g in range(self.n_groups):
                mask = labels == g
                codes[mask] = np.searchsorted(cdf[g], u[mask, j + 1], side="right")
            np.minimum(codes, attr.domain_size - 1, out=codes)
            columns[attr.name] = codes
        return columns, labels

    def chunks(
        self, chunk_rows: int | None = None
    ) -> Iterator[tuple[Mapping[str, np.ndarray], np.ndarray]]:
        """Yield ``(columns, labels)`` chunks covering all ``n_rows``."""
        for span in chunk_spans(self.n_rows, chunk_rows or self.chunk_rows):
            yield self._generate_span(span)

    def counts(self, chunk_rows: int | None = None) -> StreamedCounts:
        """Stream-materialise the exact planted-group counts (bounded memory)."""
        builder = StreamingCountsBuilder(self.schema, self.n_groups)
        for columns, labels in self.chunks(chunk_rows):
            builder.add_chunk(columns, labels)
        return builder.finalise()

    def dataset(self) -> tuple[Dataset, np.ndarray]:
        """The full in-RAM ``(Dataset, labels)`` — small ``n_rows`` only."""
        column_parts: dict[str, list[np.ndarray]] = {
            n: [] for n in self.schema.names
        }
        label_parts: list[np.ndarray] = []
        for columns, labels in self.chunks():
            for name in self.schema.names:
                column_parts[name].append(columns[name])
            label_parts.append(labels)
        columns = {
            n: np.concatenate(parts) if parts else np.empty(0, dtype=CODE_DTYPE)
            for n, parts in column_parts.items()
        }
        labels = (
            np.concatenate(label_parts) if label_parts else np.empty(0, np.int64)
        )
        return Dataset(self.schema, columns), labels


def streaming_materialise_stats(
    n_rows: int,
    n_attributes: int = 11,
    n_groups: int = 8,
    seed: int = 0,
    chunk_rows: int = 262_144,
) -> dict:
    """Stream-materialise ``n_rows`` planted rows and describe the result.

    Importable by name so benchmark harnesses can run it inside a fresh
    spawn child whose ``ru_maxrss`` high-water mark isolates this one
    materialisation.
    """
    source = ChunkedPlantedSource(
        n_rows=n_rows,
        n_attributes=n_attributes,
        n_groups=n_groups,
        seed=seed,
        chunk_rows=chunk_rows,
    )
    counts = source.counts()
    return {
        "rows": int(counts.n),
        "n_attributes": n_attributes,
        "n_clusters": n_groups,
        "chunk_rows": chunk_rows,
        "signature": counts.signature()[:16],
    }


def attach_and_score_stats(handle, gamma: tuple[float, float] = (0.5, 0.5)) -> dict:
    """One sweep worker's task body: attach to a shared stack and score it.

    Mirrors what a ``run_grid`` worker does under the shared-stack handoff —
    attach, build an engine, evaluate the Stage-1 matrix — and reports the
    time spent, so the fan-out benchmark can compare per-task cost across
    dataset sizes (it must be flat: nothing here depends on ``|D|``).
    """
    import time

    from ..core.engine import ScoringEngine, attach_counts

    t0 = time.perf_counter()
    counts = attach_counts(handle)
    try:
        engine = ScoringEngine(counts)
        matrix = engine.score_matrix(*gamma)
        elapsed = time.perf_counter() - t0
        return {
            "task_s": elapsed,
            "n_attributes": int(matrix.shape[1]),
            "n_clusters": int(matrix.shape[0]),
        }
    finally:
        counts.close()


def rematerialise_and_score_stats(
    n_rows: int, gamma: tuple[float, float] = (0.5, 0.5), **source_kwargs
) -> dict:
    """The legacy worker task body: regenerate counts, then score.

    What every pool worker paid before the shared-stack handoff — cost is
    linear in ``n_rows``, which is exactly the contrast the fan-out
    benchmark records.
    """
    import time

    from ..core.engine import ScoringEngine

    t0 = time.perf_counter()
    counts = ChunkedPlantedSource(n_rows=n_rows, **source_kwargs).counts()
    engine = ScoringEngine(counts)
    matrix = engine.score_matrix(*gamma)
    return {
        "task_s": time.perf_counter() - t0,
        "n_attributes": int(matrix.shape[1]),
        "n_clusters": int(matrix.shape[0]),
    }


def run(
    config: ExperimentConfig | None = None,
    row_grid: tuple[int, ...] = ROW_GRID,
    eps: float = DEFAULT_EPS,
) -> list[dict]:
    """Relative DPClustX quality per dataset size."""
    config = config or ExperimentConfig(datasets=("Diabetes",), methods=("k-means",))
    rows: list[dict] = []
    budget = ExplanationBudget.split_selection(eps)
    for dataset_name in config.datasets:
        for n_rows in row_grid:
            data = load_dataset(
                dataset_name, n_rows, n_groups=config.n_clusters, seed=config.seed
            )
            clustering = fit_clustering(
                "k-means", data, config.n_clusters, config.seed
            )
            counts = ClusteredCounts(data, clustering)
            evaluator = QualityEvaluator(counts, Weights(), 0)
            ref = TabEE(config.n_candidates).select_combination(counts, 0)
            q_ref = evaluator.quality(tuple(ref))
            explainer = DPClustX(config.n_candidates, budget=budget)
            gen = ensure_rng(config.seed)
            # All seeds in one batched pass (stream-identical to the
            # serial per-seed select_combination loop).
            combos = select_batched(
                explainer, counts, spawn(gen, config.n_runs)
            )
            qs = [evaluator.quality(tuple(c)) for c in combos]
            q_dp = float(np.mean(qs))
            rows.append(
                {
                    "dataset": dataset_name,
                    "n_rows": n_rows,
                    "avg_cluster": float(counts.sizes().mean()),
                    "quality_dp": q_dp,
                    "quality_tabee": q_ref,
                    "ratio": q_dp / q_ref if q_ref else 0.0,
                }
            )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--eps", type=float, default=DEFAULT_EPS)
    args = parser.parse_args()
    config = ExperimentConfig(
        n_runs=args.runs, datasets=("Diabetes",), methods=("k-means",)
    )
    rows = run(config, eps=args.eps)
    print(f"Scale experiment — DPClustX/TabEE quality ratio at eps = {args.eps}")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
