"""Scale experiment: how the DP-vs-non-private gap closes with dataset size.

Not a paper figure, but the quantitative backbone of this reproduction's
scale disclaimer (EXPERIMENTS.md): our stand-in datasets run at ~25k rows
versus the paper's 102k-2.46M, and every low-sensitivity score scales with
|D_c| while the selection noise is constant — so the Quality gap at fixed
epsilon must shrink as rows grow.  This harness measures exactly that:
DPClustX's relative Quality (vs TabEE on the same counts) across dataset
sizes at the default selection budget.

Run: ``python -m repro.experiments.scale`` (or ``python -m repro scale``)
"""

from __future__ import annotations

import argparse

import numpy as np

from ..baselines.tabee import TabEE
from ..core.counts import ClusteredCounts
from ..core.dpclustx import DPClustX
from ..core.quality.scores import Weights
from ..evaluation.quality import QualityEvaluator
from ..evaluation.runner import format_results_table
from ..evaluation.sweeps import select_batched
from ..privacy.budget import ExplanationBudget
from ..privacy.rng import ensure_rng, spawn
from .common import ExperimentConfig, fit_clustering, load_dataset

COLUMNS = ("dataset", "n_rows", "avg_cluster", "quality_dp", "quality_tabee", "ratio")
ROW_GRID = (5_000, 10_000, 25_000, 60_000)
DEFAULT_EPS = 0.1  # the regime where Figure 5 shows the visible gap


def run(
    config: ExperimentConfig | None = None,
    row_grid: tuple[int, ...] = ROW_GRID,
    eps: float = DEFAULT_EPS,
) -> list[dict]:
    """Relative DPClustX quality per dataset size."""
    config = config or ExperimentConfig(datasets=("Diabetes",), methods=("k-means",))
    rows: list[dict] = []
    budget = ExplanationBudget.split_selection(eps)
    for dataset_name in config.datasets:
        for n_rows in row_grid:
            data = load_dataset(
                dataset_name, n_rows, n_groups=config.n_clusters, seed=config.seed
            )
            clustering = fit_clustering(
                "k-means", data, config.n_clusters, config.seed
            )
            counts = ClusteredCounts(data, clustering)
            evaluator = QualityEvaluator(counts, Weights(), 0)
            ref = TabEE(config.n_candidates).select_combination(counts, 0)
            q_ref = evaluator.quality(tuple(ref))
            explainer = DPClustX(config.n_candidates, budget=budget)
            gen = ensure_rng(config.seed)
            # All seeds in one batched pass (stream-identical to the
            # serial per-seed select_combination loop).
            combos = select_batched(
                explainer, counts, spawn(gen, config.n_runs)
            )
            qs = [evaluator.quality(tuple(c)) for c in combos]
            q_dp = float(np.mean(qs))
            rows.append(
                {
                    "dataset": dataset_name,
                    "n_rows": n_rows,
                    "avg_cluster": float(counts.sizes().mean()),
                    "quality_dp": q_dp,
                    "quality_tabee": q_ref,
                    "ratio": q_dp / q_ref if q_ref else 0.0,
                }
            )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--eps", type=float, default=DEFAULT_EPS)
    args = parser.parse_args()
    config = ExperimentConfig(
        n_runs=args.runs, datasets=("Diabetes",), methods=("k-means",)
    )
    rows = run(config, eps=args.eps)
    print(f"Scale experiment — DPClustX/TabEE quality ratio at eps = {args.eps}")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
