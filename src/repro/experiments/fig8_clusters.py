"""Figure 8: Quality vs number of clusters (8a) and vs cluster size (8b).

8a sweeps ``|C| in {3, 5, 7, 9, 11}`` under k-means; 8b subsamples an
``eta``-fraction of every cluster (eta in 1e-3..1) and explains the sampled
data.  Expected shapes: quality decreases with more clusters even without
privacy; DP methods degrade as clusters shrink while TabEE stays stable, with
DPClustX dominating the DP baselines throughout (Section 6.2).

Both parts run through ``run_trials``, i.e. the batched sweep layer
(``repro.evaluation.sweeps``): every grid point's ``n_runs`` seeds are
selected in one vectorised pass per explainer.  Note for 8a: at ``|C| in
{7, 9, 11}`` permutation-diversity groups can exceed the exact enumeration
limit (6), where the batched layer's Monte-Carlo permutation stream
differs from the old serial loop's — values at those grid points are
deterministic but not comparable digit-for-digit with pre-sweep-layer
outputs (``|C| <= 6`` points are exactly unchanged).

Run: ``python -m repro.experiments.fig8_clusters``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.counts import ClusteredCounts
from ..evaluation.runner import format_results_table, make_selectors, run_trials
from ..privacy.rng import ensure_rng
from .common import (
    ExperimentConfig,
    clustered_counts,
    fit_clustering,
    load_dataset,
)

CLUSTER_GRID = (3, 5, 7, 9, 11)
ETA_GRID = (0.001, 0.00316, 0.01, 0.0316, 0.1, 0.316, 1.0)
DEFAULT_EPS = 0.2  # eps_CandSet = eps_TopComb = 0.1 (Section 6.1 defaults)

COLUMNS_8A = ("dataset", "n_clusters", "explainer", "quality")
COLUMNS_8B = ("dataset", "eta", "avg_cluster_size", "explainer", "quality")


def run_num_clusters(
    config: ExperimentConfig | None = None, method: str = "k-means"
) -> list[dict]:
    """Figure 8a: Quality vs |C| for all four explainers."""
    config = config or ExperimentConfig(datasets=("Diabetes", "Census"))
    rows: list[dict] = []
    for dataset_name in config.datasets:
        for n_clusters in CLUSTER_GRID:
            counts = clustered_counts(dataset_name, method, config, n_clusters)
            selectors = make_selectors(DEFAULT_EPS, config.n_candidates)
            for r in run_trials(counts, selectors, config.n_runs, rng=config.seed):
                rows.append(
                    {
                        "dataset": dataset_name,
                        "n_clusters": n_clusters,
                        "explainer": r.explainer,
                        "quality": r.quality_mean,
                    }
                )
    return rows


def run_cluster_size(
    config: ExperimentConfig | None = None, method: str = "k-means"
) -> list[dict]:
    """Figure 8b: Quality vs per-cluster sampling rate eta."""
    config = config or ExperimentConfig(datasets=("Diabetes", "Census"))
    rows: list[dict] = []
    for dataset_name in config.datasets:
        dataset = load_dataset(
            dataset_name, config.rows[dataset_name],
            n_groups=config.n_clusters, seed=config.seed,
        )
        clustering = fit_clustering(method, dataset, config.n_clusters, config.seed)
        labels = clustering.assign(dataset)
        gen = ensure_rng(config.seed)
        for eta in ETA_GRID:
            keep = np.zeros(len(dataset), dtype=bool)
            for c in range(config.n_clusters):  # sample eta within each cluster
                members = np.flatnonzero(labels == c)
                m = max(int(round(eta * len(members))), 1) if len(members) else 0
                if m:
                    keep[gen.choice(members, size=m, replace=False)] = True
            sampled = dataset.subset(keep)
            counts = ClusteredCounts(sampled, clustering)
            avg_size = float(counts.sizes().mean())
            selectors = make_selectors(DEFAULT_EPS, config.n_candidates)
            for r in run_trials(counts, selectors, config.n_runs, rng=config.seed):
                rows.append(
                    {
                        "dataset": dataset_name,
                        "eta": eta,
                        "avg_cluster_size": avg_size,
                        "explainer": r.explainer,
                        "quality": r.quality_mean,
                    }
                )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--part", choices=("a", "b", "both"), default="both")
    args = parser.parse_args()
    config = ExperimentConfig(n_runs=args.runs, datasets=("Diabetes", "Census"))
    if args.part in ("a", "both"):
        print("Figure 8a — Quality vs number of clusters (k-means)")
        print(format_results_table(run_num_clusters(config), COLUMNS_8A))
    if args.part in ("b", "both"):
        print("\nFigure 8b — Quality vs per-cluster sampling rate (k-means)")
        print(format_results_table(run_cluster_size(config), COLUMNS_8B))


if __name__ == "__main__":
    main()
