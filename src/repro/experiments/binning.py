"""Future-work ablation (Section 8, #3): impact of binning granularity.

Coarsens every attribute's domain by merge factors {1, 2, 4} and measures how
DPClustX's selected-combination Quality responds at the default budget.  The
expected mechanics: coarser bins concentrate counts (less relative DP noise
per bin, helping small clusters) but blur the distributional differences the
explanation is meant to surface — so quality is not monotone in granularity.

Quality is always evaluated against the *same* re-binned counts the selector
saw, making the numbers comparable across factors.

Run: ``python -m repro.experiments.binning`` (or ``python -m repro binning``)
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.counts import ClusteredCounts
from ..core.dpclustx import DPClustX
from ..core.quality.scores import Weights
from ..dataset.rebin import rebin_dataset
from ..evaluation.quality import QualityEvaluator
from ..evaluation.runner import format_results_table
from ..privacy.rng import ensure_rng, spawn
from .common import ExperimentConfig, fit_clustering, load_dataset

COLUMNS = ("dataset", "merge_factor", "avg_domain_size", "quality", "quality_vs_tabee")
FACTORS = (1, 2, 4)


def run(config: ExperimentConfig | None = None) -> list[dict]:
    """Quality of DPClustX per binning coarseness factor."""
    from ..baselines.tabee import TabEE

    config = config or ExperimentConfig(datasets=("Diabetes", "StackOverflow"))
    rows: list[dict] = []
    for dataset_name in config.datasets:
        base = load_dataset(
            dataset_name, config.rows[dataset_name],
            n_groups=config.n_clusters, seed=config.seed,
        )
        clustering = fit_clustering("k-means", base, config.n_clusters, config.seed)
        labels = clustering.assign(base)
        for factor in FACTORS:
            data = rebin_dataset(base, factor)
            counts = ClusteredCounts(data, labels, config.n_clusters)
            evaluator = QualityEvaluator(counts, Weights(), 0)
            ref = TabEE(config.n_candidates).select_combination(counts, 0)
            ref_q = evaluator.quality(tuple(ref))
            explainer = DPClustX(config.n_candidates)
            gen = ensure_rng(config.seed)
            qualities = [
                evaluator.quality(
                    tuple(explainer.select_combination(counts, child).combination)
                )
                for child in spawn(gen, config.n_runs)
            ]
            avg_domain = float(
                np.mean([data.schema.attribute(n).domain_size for n in data.schema.names])
            )
            q = float(np.mean(qualities))
            rows.append(
                {
                    "dataset": dataset_name,
                    "merge_factor": factor,
                    "avg_domain_size": avg_domain,
                    "quality": q,
                    "quality_vs_tabee": q / ref_q if ref_q else 0.0,
                }
            )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    args = parser.parse_args()
    config = ExperimentConfig(
        n_runs=args.runs, datasets=("Diabetes", "StackOverflow")
    )
    rows = run(config)
    print("Section 8 ablation — binning granularity vs explanation quality")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
