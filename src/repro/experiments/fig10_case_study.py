"""Figure 10 / Section 6.4: the Census case study.

The Census-like data is clustered into 3 clusters with k-means; DPClustX
(default parameters) and non-private TabEE each produce a full explanation.
The paper's observation to reproduce: the two explanations may *disagree on
attributes* (MAE up to 2/3) while conveying the *same insight*, because the
employment attributes (iRlabor, iWork89, dHours, iYearwrk, iMeans) are
mutually correlated — and the Quality gap stays negligible.

Run: ``python -m repro.experiments.fig10_case_study``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..baselines.tabee import TabEE
from ..core.counts import ClusteredCounts
from ..core.dpclustx import DPClustX
from ..core.hbe import GlobalExplanation
from ..core.textual import describe
from ..evaluation.mae import mae
from ..evaluation.quality import QualityEvaluator
from .common import ExperimentConfig, fit_clustering, load_dataset


@dataclass(frozen=True)
class CaseStudyResult:
    """Everything Figure 10 shows, plus the Quality/MAE commentary."""

    dp_explanation: GlobalExplanation
    tabee_explanation: GlobalExplanation
    dp_quality: float
    tabee_quality: float
    mae: float

    @property
    def quality_gap_pct(self) -> float:
        """Relative Quality deficit of DPClustX vs TabEE, in percent."""
        if self.tabee_quality == 0:
            return 0.0
        return 100.0 * (self.tabee_quality - self.dp_quality) / self.tabee_quality


def run(
    config: ExperimentConfig | None = None, seed: int = 0
) -> CaseStudyResult:
    """Run the 3-cluster Census case study end to end."""
    config = config or ExperimentConfig(datasets=("Census",))
    dataset = load_dataset("Census", config.rows["Census"], n_groups=3, seed=config.seed)
    clustering = fit_clustering("k-means", dataset, 3, config.seed)
    counts = ClusteredCounts(dataset, clustering)

    dp_expl = DPClustX().explain(dataset, clustering, rng=seed, counts=counts)
    tabee_expl = TabEE().explain(dataset, clustering, counts=counts)

    evaluator = QualityEvaluator(counts, DPClustX().weights, 0)
    return CaseStudyResult(
        dp_explanation=dp_expl,
        tabee_explanation=tabee_expl,
        dp_quality=evaluator.quality(tuple(dp_expl.combination)),
        tabee_quality=evaluator.quality(tuple(tabee_expl.combination)),
        mae=mae(dp_expl.combination, tabee_expl.combination),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    result = run(seed=args.seed)
    print("Figure 10 — US Census case study (3 clusters, k-means)\n")
    print("(a) DPClustX explanation:", tuple(result.dp_explanation.combination))
    print(result.dp_explanation.render(width=30))
    print("\nTextual description (Figure 2b style):")
    print(describe(result.dp_explanation))
    print("\n(b) Non-private TabEE explanation:",
          tuple(result.tabee_explanation.combination))
    print(result.tabee_explanation.render(width=30))
    print(
        f"\nMAE = {result.mae:.3f}; Quality: DPClustX {result.dp_quality:.4f} "
        f"vs TabEE {result.tabee_quality:.4f} "
        f"(gap {result.quality_gap_pct:.2f}%)"
    )


if __name__ == "__main__":
    main()
