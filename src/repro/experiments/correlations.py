"""Section 6.2 (text): robustness to attribute correlations.

Following the paper's protocol: for each original attribute, add a correlated
copy (random perturbation tuned to Cramér's V ~ 0.85), re-cluster, and run
DPClustX on both the extended and original attribute sets.  The paper finds
<2% Quality difference on average (mostly attributable to the diversity term,
since an attribute and its correlated copy count as different), and <0.1%
when only interestingness + sufficiency are scored.

Run: ``python -m repro.experiments.correlations``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.counts import ClusteredCounts
from ..core.dpclustx import DPClustX
from ..core.quality.scores import Weights
from ..evaluation.quality import QualityEvaluator
from ..evaluation.runner import format_results_table
from ..privacy.rng import ensure_rng, spawn
from ..synth.correlation import add_correlated_attributes
from .common import ExperimentConfig, fit_clustering, load_dataset

COLUMNS = ("dataset", "weights", "quality_original", "quality_extended", "diff_pct")


def _avg_quality(
    counts: ClusteredCounts, weights: Weights, n_runs: int, seed: int
) -> float:
    explainer = DPClustX(weights=weights)
    evaluator = QualityEvaluator(counts, weights, 0)
    gen = ensure_rng(seed)
    vals = [
        evaluator.quality(tuple(explainer.select_combination(counts, child).combination))
        for child in spawn(gen, n_runs)
    ]
    return float(np.mean(vals))


def run(
    config: ExperimentConfig | None = None, target_v: float = 0.85
) -> list[dict]:
    """Quality with vs without injected correlated attributes."""
    config = config or ExperimentConfig()
    weight_configs = {
        "equal": Weights.equal(),
        "int+suf only": Weights.without("div"),
    }
    rows: list[dict] = []
    for dataset_name in config.datasets:
        dataset = load_dataset(
            dataset_name, config.rows[dataset_name],
            n_groups=config.n_clusters, seed=config.seed,
        )
        extended = add_correlated_attributes(dataset, target_v, rng=config.seed)
        # Cluster the *extended* data (the paper clusters after adding the
        # correlated attributes), then score both attribute pools.
        clustering = fit_clustering(
            "k-means", extended, config.n_clusters, config.seed
        )
        counts_ext = ClusteredCounts(extended, clustering)
        counts_orig = ClusteredCounts(
            dataset, clustering.assign(extended), config.n_clusters
        )
        for label, weights in weight_configs.items():
            q_orig = _avg_quality(counts_orig, weights, config.n_runs, config.seed)
            q_ext = _avg_quality(counts_ext, weights, config.n_runs, config.seed)
            diff = 100.0 * abs(q_ext - q_orig) / max(q_orig, 1e-12)
            rows.append(
                {
                    "dataset": dataset_name,
                    "weights": label,
                    "quality_original": q_orig,
                    "quality_extended": q_ext,
                    "diff_pct": diff,
                }
            )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--cramers-v", type=float, default=0.85)
    args = parser.parse_args()
    rows = run(ExperimentConfig(n_runs=args.runs), target_v=args.cramers_v)
    print("Section 6.2 — impact of attribute correlations on Quality")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
