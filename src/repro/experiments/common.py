"""Shared configuration and plumbing for the experiment harnesses.

Every harness exposes ``run(config) -> list[dict]`` returning the rows the
paper's corresponding figure/table plots, and a ``main()`` that prints them.
Scales default to laptop-friendly sizes; ``paper_scale=True`` switches to the
paper's row counts (Section 6.1) where that is feasible.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace

import numpy as np

from ..clustering import (
    Agglomerative,
    ClusteringFunction,
    DPKMeans,
    GaussianMixture,
    KMeans,
    KModes,
)
from ..core.counts import ClusteredCounts
from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng
from ..synth import census_like, diabetes_like, stackoverflow_like

DP_KMEANS_EPSILON = 1.0  # "The budget for DP-k-means is set to eps = 1" (6.1)

DEFAULT_EPS_GRID = (0.01, 0.0316, 0.1, 0.316, 1.0)  # 1e-2 .. 1e0, log-spaced
CENSUS_EPS_GRID = (0.001, 0.00316, 0.01, 0.0316, 0.1)  # 1e-3 .. 1e-1

DATASET_ROWS = {"Diabetes": 20_000, "Census": 30_000, "StackOverflow": 20_000}
DATASET_ROWS_PAPER = {
    "Diabetes": 101_766,
    "Census": 2_458_285,
    "StackOverflow": 98_855,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all harnesses (paper defaults from Section 6.1)."""

    datasets: tuple[str, ...] = ("Diabetes", "Census", "StackOverflow")
    methods: tuple[str, ...] = (
        "k-means",
        "DP-k-means",
        "k-modes",
        "GMMs",
        "Agglomerative",
    )
    n_clusters: int = 5
    n_candidates: int = 3
    n_runs: int = 10
    seed: int = 0
    rows: dict[str, int] = field(default_factory=lambda: dict(DATASET_ROWS))

    def scaled(self, factor: float) -> "ExperimentConfig":
        """Shrink row counts uniformly (used by the pytest-benchmark wrappers)."""
        rows = {k: max(2_000, int(v * factor)) for k, v in self.rows.items()}
        return replace(self, rows=rows)


def quick_config(n_runs: int = 2) -> ExperimentConfig:
    """A small configuration for smoke tests and benchmarks."""
    return ExperimentConfig(
        datasets=("Diabetes",),
        methods=("k-means",),
        n_runs=n_runs,
        rows={"Diabetes": 6_000, "Census": 6_000, "StackOverflow": 6_000},
    )


@functools.lru_cache(maxsize=8)
def load_dataset(name: str, n_rows: int, n_groups: int = 5, seed: int = 0) -> Dataset:
    """Materialise one of the three synthetic stand-in datasets.

    Memoised (LRU, bounded): epsilon/k/weight sweeps hit the same
    ``(name, n_rows, n_groups, seed)`` cell for every grid point, and
    regenerating identical rows dominated short sweeps.  Callers treat
    datasets as immutable (every ``Dataset`` op returns a new object), so
    sharing one instance is safe; process-pool grid workers each hold their
    own worker-local cache.
    """
    factories = {
        "Diabetes": diabetes_like,
        "Census": census_like,
        "StackOverflow": stackoverflow_like,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}") from None
    return factory(n_rows=n_rows, n_groups=n_groups, seed=seed)


def fit_clustering(
    method: str,
    dataset: Dataset,
    n_clusters: int,
    rng: np.random.Generator | int | None = 0,
) -> ClusteringFunction:
    """Fit one of the five clustering methods of Section 6.1."""
    gen = ensure_rng(rng)
    if method == "k-means":
        return KMeans(n_clusters).fit(dataset, gen)
    if method == "DP-k-means":
        return DPKMeans(n_clusters, epsilon=DP_KMEANS_EPSILON).fit(dataset, gen)
    if method == "k-modes":
        return KModes(n_clusters).fit(dataset, gen)
    if method == "GMMs":
        return GaussianMixture(n_clusters, max_iter=25).fit(dataset, gen)
    if method == "Agglomerative":
        return Agglomerative(n_clusters).fit(dataset, gen)
    raise ValueError(f"unknown clustering method {method!r}")


@functools.lru_cache(maxsize=6)
def _clustered_counts_cached(
    dataset_name: str, n_rows: int, method: str, n_clusters: int, seed: int
) -> ClusteredCounts:
    """Memoised dataset + clustering + counts, keyed on the generating cell.

    The counts (and the scoring-engine stack hanging off them) are pure
    functions of ``(dataset, rows, method, n_clusters, seed)``, so sweeps
    over epsilon or candidate-set size reuse one materialisation instead of
    refitting the clustering per grid point.  Bounded LRU keeps at most a
    handful of cells alive; process-pool workers populate their own copy.
    """
    dataset = load_dataset(dataset_name, n_rows, n_groups=n_clusters, seed=seed)
    clustering = fit_clustering(method, dataset, n_clusters, seed)
    return ClusteredCounts(dataset, clustering)


def clustered_counts(
    dataset_name: str,
    method: str,
    config: ExperimentConfig,
    n_clusters: int | None = None,
) -> ClusteredCounts:
    """Dataset + clustering + counts for one experimental cell (memoised)."""
    k = n_clusters if n_clusters is not None else config.n_clusters
    return _clustered_counts_cached(
        dataset_name, config.rows[dataset_name], method, k, config.seed
    )


def clustering_epsilon_for(method: str) -> float:
    """The DP spend of the *clustering* step itself for one method.

    Only DP-k-means consumes privacy budget while clustering
    (``DP_KMEANS_EPSILON``, Section 6.1); the other four methods are
    non-private and cost 0.  Emitted per result row so the figures report
    the real end-to-end epsilon, not just the explanation's share.
    """
    return DP_KMEANS_EPSILON if method == "DP-k-means" else 0.0


def methods_for(dataset_name: str, methods: tuple[str, ...]) -> tuple[str, ...]:
    """Agglomerative is skipped on Census (Section 6.1's scalability note)."""
    if dataset_name == "Census":
        return tuple(m for m in methods if m != "Agglomerative")
    return methods


def eps_grid_for(dataset_name: str) -> tuple[float, ...]:
    """Census sweeps 1e-3..1e-1; the other datasets sweep 1e-2..1 (Fig. 5)."""
    return CENSUS_EPS_GRID if dataset_name == "Census" else DEFAULT_EPS_GRID
