"""Figure 7: Quality as the Stage-1 candidate-set size k varies (1..5).

The paper finds quality peaks by k = 3 and stabilises (k-modes on Diabetes
gains ~8% from 1 to 3; GMMs on Census gains ~40% from 1 to 2), supporting
the default k = 3 — larger k only inflates Stage-2's k^|C| search
(Figure 9b).

Run: ``python -m repro.experiments.fig7_candidates``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.dpclustx import DPClustX
from ..evaluation.quality import QualityEvaluator
from ..evaluation.runner import format_results_table
from ..evaluation.sweeps import SweepContext, select_batched
from ..privacy.budget import ExplanationBudget
from ..privacy.rng import ensure_rng, spawn
from .common import ExperimentConfig, clustered_counts, methods_for

COLUMNS = ("dataset", "method", "k", "quality")
K_GRID = (1, 2, 3, 4, 5)


def run(config: ExperimentConfig | None = None) -> list[dict]:
    """Quality of DPClustX's selection for each candidate-set size k.

    The per-seed loop runs through the batched sweep layer: one shared
    scoring context serves every k, and all ``n_runs`` seeds of a k are
    selected in one vectorised pass (stream-identical to the serial loop).
    """
    config = config or ExperimentConfig(datasets=("Diabetes", "Census"))
    rows: list[dict] = []
    for dataset_name in config.datasets:
        for method in methods_for(dataset_name, config.methods):
            counts = clustered_counts(dataset_name, method, config)
            evaluator = QualityEvaluator(counts, DPClustX().weights, 0)
            ctx = SweepContext(counts)
            for k in K_GRID:
                explainer = DPClustX(n_candidates=k, budget=ExplanationBudget())
                gen = ensure_rng(config.seed)
                children = spawn(gen, config.n_runs)
                combos = select_batched(explainer, counts, children, ctx)
                qualities = [evaluator.quality(tuple(c)) for c in combos]
                rows.append(
                    {
                        "dataset": dataset_name,
                        "method": method,
                        "k": k,
                        "quality": float(np.mean(qualities)),
                    }
                )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    args = parser.parse_args()
    rows = run(ExperimentConfig(n_runs=args.runs, datasets=("Diabetes", "Census")))
    print("Figure 7 — Quality vs candidate-set size k (DPClustX)")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
