"""Motivation experiment (Section 1 / Example 1.1): manual EDA vs DPClustX.

The paper's opening argument is that manual exploration "exhausts the
privacy budget" while DPClustX spends it surgically.  This harness sweeps
the total budget and compares the sensitive Quality of the attribute
combinations reached by (a) a simulated manual EDA session
(:class:`repro.baselines.manual_eda.ManualEDASession`) and (b) DPClustX's
two-stage selection, at identical total epsilon.

Run: ``python -m repro.experiments.eda_comparison`` (or ``python -m repro eda``)
"""

from __future__ import annotations

import argparse

import numpy as np

from ..baselines.manual_eda import ManualEDASession
from ..core.dpclustx import DPClustX
from ..core.quality.scores import Weights
from ..evaluation.quality import QualityEvaluator
from ..evaluation.runner import format_results_table
from ..privacy.budget import ExplanationBudget
from ..privacy.rng import ensure_rng, spawn
from .common import ExperimentConfig, clustered_counts, methods_for

COLUMNS = ("dataset", "method", "epsilon", "workflow", "quality", "attributes_seen")
EPS_GRID = (0.05, 0.1, 0.3, 1.0)
PROBE_FRACTION = 20  # eps_probe = eps / (2 * PROBE_FRACTION) -> 20 rounds


def run(config: ExperimentConfig | None = None) -> list[dict]:
    """Quality per workflow per budget."""
    config = config or ExperimentConfig(datasets=("Diabetes",), methods=("k-means",))
    rows: list[dict] = []
    for dataset_name in config.datasets:
        for method in methods_for(dataset_name, config.methods):
            counts = clustered_counts(dataset_name, method, config)
            evaluator = QualityEvaluator(counts, Weights(), 0)
            n_attrs = len(counts.names)
            for eps in EPS_GRID:
                eda = ManualEDASession(
                    epsilon=eps, eps_probe=eps / (2 * PROBE_FRACTION)
                )
                explainer = DPClustX(
                    config.n_candidates, budget=ExplanationBudget.split_selection(eps)
                )
                gen = ensure_rng(config.seed)
                q_eda, q_x = [], []
                for child in spawn(gen, config.n_runs):
                    q_eda.append(
                        evaluator.quality(tuple(eda.select_combination(counts, child)))
                    )
                    q_x.append(
                        evaluator.quality(
                            tuple(explainer.select_combination(counts, child).combination)
                        )
                    )
                rows.append(
                    {
                        "dataset": dataset_name,
                        "method": method,
                        "epsilon": eps,
                        "workflow": "manual-EDA",
                        "quality": float(np.mean(q_eda)),
                        "attributes_seen": min(eda.n_rounds, n_attrs),
                    }
                )
                rows.append(
                    {
                        "dataset": dataset_name,
                        "method": method,
                        "epsilon": eps,
                        "workflow": "DPClustX",
                        "quality": float(np.mean(q_x)),
                        "attributes_seen": n_attrs,
                    }
                )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    args = parser.parse_args()
    config = ExperimentConfig(
        n_runs=args.runs, datasets=("Diabetes",), methods=("k-means",)
    )
    rows = run(config)
    print("Section 1 motivation — manual EDA session vs DPClustX at equal budget")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
