"""Table 1: Quality under different weight configurations.

For ``|C| in {3, 5, 7}`` and every clustering method, compare DPClustX and
TabEE under four lambda configurations: Equal (1/3 each), and one weight
zeroed with the other two at 1/2.  The paper reports differences of a
fraction of a percent on average — DPClustX keeps TabEE's flexibility in
weight selection.

Run: ``python -m repro.experiments.table1_weights``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..baselines.tabee import TabEE
from ..core.dpclustx import DPClustX
from ..core.quality.scores import Weights
from ..evaluation.quality import QualityEvaluator
from ..evaluation.runner import format_results_table
from ..privacy.budget import ExplanationBudget
from ..privacy.rng import ensure_rng, spawn
from .common import ExperimentConfig, clustered_counts, methods_for

WEIGHT_CONFIGS: dict[str, Weights] = {
    "Equal": Weights.equal(),
    "lInt=0": Weights.without("int"),
    "lSuf=0": Weights.without("suf"),
    "lDiv=0": Weights.without("div"),
}
CLUSTER_GRID = (3, 5, 7)
COLUMNS = ("dataset", "n_clusters", "method", "explainer",
           "Equal", "lInt=0", "lSuf=0", "lDiv=0")


def run(
    config: ExperimentConfig | None = None,
    cluster_grid: tuple[int, ...] = CLUSTER_GRID,
) -> list[dict]:
    """Produce Table 1's rows (one per dataset x |C| x method x explainer)."""
    config = config or ExperimentConfig(datasets=("Diabetes", "Census"))
    rows: list[dict] = []
    for dataset_name in config.datasets:
        for n_clusters in cluster_grid:
            for method in methods_for(dataset_name, config.methods):
                counts = clustered_counts(dataset_name, method, config, n_clusters)
                dp_row = {"dataset": dataset_name, "n_clusters": n_clusters,
                          "method": method, "explainer": "DPClustX"}
                tab_row = {"dataset": dataset_name, "n_clusters": n_clusters,
                           "method": method, "explainer": "TabEE"}
                for label, weights in WEIGHT_CONFIGS.items():
                    evaluator = QualityEvaluator(counts, weights, 0)
                    tabee = TabEE(config.n_candidates, weights)
                    tab_combo = tabee.select_combination(counts, 0, evaluator=evaluator)
                    tab_row[label] = evaluator.quality(tuple(tab_combo))
                    explainer = DPClustX(
                        config.n_candidates, weights, ExplanationBudget()
                    )
                    gen = ensure_rng(config.seed)
                    qualities = [
                        evaluator.quality(
                            tuple(explainer.select_combination(counts, child).combination)
                        )
                        for child in spawn(gen, config.n_runs)
                    ]
                    dp_row[label] = float(np.mean(qualities))
                rows.append(dp_row)
                rows.append(tab_row)
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10)
    args = parser.parse_args()
    config = ExperimentConfig(n_runs=args.runs, datasets=("Diabetes", "Census"))
    rows = run(config)
    print("Table 1 — Quality under different weight configurations")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
