"""Figure 9: DPClustX execution-time trends (a: |C|, b: k, c: %attrs, d: %rows).

The paper's absolute numbers come from a 24-core Xeon; ours from this
container — the *trends* are what reproduce: Stage-2 enumerates k^|C|
combinations, so runtime grows exponentially in |C| (9a) and k (9b), while
the Stage-1 score evaluations are linear in attributes (9c) and rows (9d).
Timings measure the full selection (Stages 1-2) plus histogram generation,
i.e. a complete Algorithm 2 run.

Run: ``python -m repro.experiments.fig9_performance``
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from ..core.counts import ClusteredCounts
from ..core.dpclustx import DPClustX
from ..evaluation.runner import format_results_table
from ..privacy.rng import ensure_rng, spawn
from .common import ExperimentConfig, fit_clustering, load_dataset

COLUMNS = ("dataset", "method", "parameter", "value", "seconds")
CLUSTER_GRID = (3, 5, 7, 9, 11)
CANDIDATE_GRID = (1, 2, 3, 4, 5)
FRACTION_GRID = (0.2, 0.4, 0.6, 0.8, 1.0)
PERF_METHODS = ("k-means", "GMMs")  # the two that scale (Section 6.3)


def _timed_explains(
    counts: ClusteredCounts, explainer: DPClustX, n_runs: int, seed: int
) -> float:
    gen = ensure_rng(seed)
    times = []
    dataset = counts.dataset
    children = spawn(gen, n_runs + 1)
    # Warm-up run (not timed): populates the counts caches so every timed
    # configuration measures the algorithm, not allocator/cache effects.
    explainer.explain(dataset, _Precomputed(counts), children[0], counts=counts)
    for child in children[1:]:
        start = time.perf_counter()
        explainer.explain(dataset, _Precomputed(counts), child, counts=counts)
        times.append(time.perf_counter() - start)
    return float(np.mean(times))


class _Precomputed:
    """Adapter: counts already hold the labels; explain() never re-assigns."""

    def __init__(self, counts: ClusteredCounts):
        self._counts = counts

    @property
    def n_clusters(self) -> int:
        return self._counts.n_clusters

    def assign(self, dataset) -> np.ndarray:  # pragma: no cover - not reached
        return self._counts.labels


def run(
    config: ExperimentConfig | None = None,
    parts: tuple[str, ...] = ("a", "b", "c", "d"),
) -> list[dict]:
    """Produce Figure 9's four timing series."""
    config = config or ExperimentConfig(n_runs=3)
    rows: list[dict] = []
    for dataset_name in config.datasets:
        dataset = load_dataset(
            dataset_name, config.rows[dataset_name], n_groups=9, seed=config.seed
        )
        for method in PERF_METHODS:
            if "a" in parts:  # time vs number of clusters, k = 3
                for n_clusters in CLUSTER_GRID:
                    clustering = fit_clustering(method, dataset, n_clusters, config.seed)
                    counts = ClusteredCounts(dataset, clustering)
                    sec = _timed_explains(counts, DPClustX(3), config.n_runs, config.seed)
                    rows.append(_row(dataset_name, method, "n_clusters", n_clusters, sec))
            clustering9 = fit_clustering(method, dataset, 9, config.seed)
            counts9 = ClusteredCounts(dataset, clustering9)
            if "b" in parts:  # time vs candidate-set size, 9 clusters
                for k in CANDIDATE_GRID:
                    sec = _timed_explains(counts9, DPClustX(k), config.n_runs, config.seed)
                    rows.append(_row(dataset_name, method, "n_candidates", k, sec))
            if "c" in parts:  # time vs % of attributes sampled
                all_names = dataset.schema.names
                gen = ensure_rng(config.seed)
                for frac in FRACTION_GRID:
                    m = max(int(round(frac * len(all_names))), 9)
                    names = tuple(
                        all_names[i]
                        for i in sorted(gen.choice(len(all_names), m, replace=False))
                    )
                    projected = dataset.project(names)
                    counts = ClusteredCounts(projected, clustering9.assign(dataset), 9)
                    sec = _timed_explains(counts, DPClustX(3), config.n_runs, config.seed)
                    rows.append(_row(dataset_name, method, "attr_fraction", frac, sec))
            if "d" in parts:  # time vs % of rows sampled
                gen = ensure_rng(config.seed)
                for frac in FRACTION_GRID:
                    sampled = dataset.sample(frac, gen)
                    counts = ClusteredCounts(sampled, clustering9)
                    sec = _timed_explains(counts, DPClustX(3), config.n_runs, config.seed)
                    rows.append(_row(dataset_name, method, "row_fraction", frac, sec))
    return rows


def _row(dataset: str, method: str, parameter: str, value, seconds: float) -> dict:
    return {
        "dataset": dataset,
        "method": method,
        "parameter": parameter,
        "value": value,
        "seconds": seconds,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--parts", default="abcd", help="subset of 'abcd'")
    args = parser.parse_args()
    config = ExperimentConfig(n_runs=args.runs)
    rows = run(config, parts=tuple(args.parts))
    print("Figure 9 — DPClustX execution time trends")
    print(format_results_table(rows, COLUMNS))


if __name__ == "__main__":
    main()
