"""``repro.analysis`` — the repro-lint static-analysis framework.

A stdlib-``ast`` checker for this codebase's DP and serving invariants
(charge-before-release, integer-grid epsilon arithmetic, explicit RNG
streams, trace-key hygiene, monotonic deadlines, locked ledger mutation,
in-hook journal durability, copy-on-write cached envelopes).  Run it with
``python -m repro lint [paths] [--format=text|json] [--rule=NAME]``; it is
wired into ``scripts/ci.sh`` as a hard gate.

Public surface: :func:`lint_paths` / :class:`Linter` to run,
:class:`Finding` / :class:`LintResult` to consume results, ``ALL_RULES`` /
``RULE_NAMES`` for the shipping rule suite, and the suppression helpers
(:func:`parse_suppression_comment`, :func:`render_suppression`).
"""

from .engine import (
    ENGINES,
    FRAMEWORK_RULES,
    Linter,
    format_json,
    format_text,
    known_rule_names,
    lint_paths,
    rules_for_engine,
)
from .loader import (
    Module,
    RULE_NAME_RE,
    Suppression,
    iter_python_files,
    load_module,
    parse_suppression_comment,
    parse_suppressions,
    render_suppression,
)
from .model import (
    Finding,
    JSON_SCHEMA_VERSION,
    LintResult,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SuppressedFinding,
    TraceHop,
    parse_trace,
    render_trace,
    sort_findings,
)
from .rules import ALL_RULES, LintContext, RULE_NAMES, Rule

__all__ = [
    "ALL_RULES",
    "ENGINES",
    "FRAMEWORK_RULES",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintContext",
    "LintResult",
    "Linter",
    "Module",
    "RULE_NAMES",
    "RULE_NAME_RE",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SuppressedFinding",
    "Suppression",
    "TraceHop",
    "format_json",
    "format_text",
    "iter_python_files",
    "known_rule_names",
    "lint_paths",
    "load_module",
    "parse_suppression_comment",
    "parse_suppressions",
    "parse_trace",
    "render_suppression",
    "render_trace",
    "rules_for_engine",
    "sort_findings",
]
