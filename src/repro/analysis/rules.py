"""The repro-lint rule suite: this codebase's DP and serving invariants.

Every rule here encodes a convention the repo already paid a bugfix PR for
(or a guarantee a later PR's correctness silently leans on):

==============================  =============================================
rule                            invariant (origin)
==============================  =============================================
charge-before-release           no noise draw reachable in an accounting
                                ``fit``/``release``/``explain`` body before
                                the accountant charge on every path (PR 4)
no-float-epsilon-arithmetic     no float comparison / floor-division /
                                tolerance slack on epsilon values outside
                                ``privacy/budget.py`` — decisions route
                                through ``quantize_epsilon`` units (PR 5)
no-global-rng                   no argless ``default_rng()`` / module-level
                                ``np.random.*`` — byte-reproducibility
trace-key-hygiene               ``trace_id`` must not reach engine/cache key
                                or fingerprint constructions (PR 8)
monotonic-deadlines             ``time.time()`` is wall clock; deadlines use
                                ``time.monotonic()`` (PR 3 review)
locked-ledger-mutation          accountant ledger state mutates only under
                                ``with self._lock`` (PR 3/5)
fsync-in-hook                   journal appends happen inside the accountant
                                mutation hook, never after ``spend`` returns
                                (PR 5 durability contract)
no-cached-envelope-mutation     objects from cache ``.get`` paths are
                                copy-on-write, never mutated in place (PR 8)
==============================  =============================================

Heuristics are scoped to keep the signal clean (see each rule's docstring);
intentional exceptions carry ``# repro-lint: disable=<rule> — <reason>``.
"""

from __future__ import annotations

import ast
import re

from dataclasses import dataclass

from .callgraph import CallGraph, FunctionInfo
from .loader import Module
from .model import Finding, SEVERITY_ERROR, SEVERITY_WARNING


class Rule:
    """Base class: a named check producing findings for one module."""

    name: str = ""
    severity: str = SEVERITY_ERROR
    description: str = ""

    def check(self, module: Module, ctx: "LintContext") -> "list[Finding]":
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
            severity=self.severity,
        )


@dataclass
class LintContext:
    """Shared state handed to every rule."""

    modules: "list[Module]"
    callgraph: CallGraph


# --------------------------------------------------------------------------- #
# shared AST helpers
# --------------------------------------------------------------------------- #

def _attr_chain(node: ast.AST) -> "list[str]":
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a pure name chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _receiver_tail(func: ast.Attribute) -> str:
    """The innermost receiver name of ``<recv>.method`` (or '')."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return ""


def _walk_no_lambda(node: ast.AST):
    """``ast.walk`` that does not descend into lambda/nested-def bodies."""
    stack = [node]
    while stack:
        n = stack.pop()
        yield n
        for child in ast.iter_child_nodes(n):
            if isinstance(
                child, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            stack.append(child)


def _calls_in_order(node: ast.AST) -> "list[ast.Call]":
    calls = [n for n in _walk_no_lambda(node) if isinstance(n, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def _iter_functions(module: Module):
    """Yield ``(func_node, class_name)`` for every def, including methods."""
    def scope(node: ast.AST, class_name: "str | None"):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, class_name
                yield from scope(child, class_name)
            elif isinstance(child, ast.ClassDef):
                yield from scope(child, child.name)
            else:
                yield from scope(child, class_name)

    yield from scope(module.tree, None)


def _norm_path(path: str) -> str:
    return path.replace("\\", "/")


# --------------------------------------------------------------------------- #
# charge-before-release
# --------------------------------------------------------------------------- #

#: Methods that charge a ledger.
CHARGE_METHODS = {"spend", "parallel"}

#: Receiver names that look like a ``numpy.random.Generator``.
GEN_NAME_RE = re.compile(r"^(gen|rng|g)$|(_rng|_gen)$|^generator$")

#: ``Generator`` sampling methods (drawing on one of these advances the
#: noise stream — i.e. it *is* the release, for accounting purposes).
GEN_DRAW_METHODS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
    "integers", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_hypergeometric", "multivariate_normal",
    "negative_binomial", "noncentral_chisquare", "noncentral_f", "normal",
    "pareto", "permutation", "permuted", "poisson", "power", "random",
    "rayleigh", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "triangular",
    "uniform", "vonmises", "wald", "weibull", "zipf",
}

#: Mechanism methods/functions that draw noise internally.  ``release`` and
#: ``select`` additionally require at least one argument — ``lock.release()``
#: and GUI-ish ``x.select()`` are zero-arg, mechanism releases never are.
MECH_DRAW_METHODS = {
    "randomise", "randomize", "sample_noise", "noisy_scores", "release",
    "release_rows", "release_blocks", "release_column", "gumbel_rows",
    "select", "select_index", "select_indices", "select_batch",
}
_ARG_REQUIRED = {"release", "select"}

#: Plumbing that touches generators without drawing from them.
NEUTRAL_FUNCS = {
    "ensure_rng", "default_rng", "spawn", "check_epsilon",
    "quantize_epsilon", "batch_score_rows",
}


def _is_charge_call(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in CHARGE_METHODS
    )


def _is_draw_call(call: ast.Call) -> bool:
    func = call.func
    has_args = bool(call.args or call.keywords)
    if isinstance(func, ast.Attribute):
        if func.attr in MECH_DRAW_METHODS:
            return func.attr not in _ARG_REQUIRED or has_args
        if func.attr in GEN_DRAW_METHODS and GEN_NAME_RE.search(
            _receiver_tail(func)
        ):
            return True
        return False
    if isinstance(func, ast.Name):
        return func.id in MECH_DRAW_METHODS and (
            func.id not in _ARG_REQUIRED or has_args
        )
    return False


def _references_accountant(node: ast.AST) -> bool:
    for n in _walk_no_lambda(node):
        if isinstance(n, ast.Name) and n.id == "accountant":
            return True
        if isinstance(n, ast.Attribute) and n.attr in (
            "accountant", "_accountant"
        ):
            return True
        if isinstance(n, ast.keyword) and n.arg == "accountant":
            return True
    return False


@dataclass
class _FlowSummary:
    """What a callee does to the charge/draw ordering, any-path."""

    charges: bool = False
    uncharged_draw: "ast.Call | None" = None


class ChargeBeforeReleaseRule(Rule):
    """PR 4's invariant, machine-checked.

    Scope: every function that references an accountant (parameter, local,
    ``self._accountant`` attribute, or ``accountant=`` keyword) — i.e. the
    functions *responsible* for accounting.  Within one, walking statements
    in order (descending into loop/branch bodies; a charge on any branch of
    an ``if`` counts, which is exactly the ``if accountant is not None:``
    idiom), every noise draw must be preceded by a ledger charge.  Calls are
    followed up to two hops through the intra-package call graph, so a
    ``fit`` that delegates its draws to ``self._release_counts`` is still
    caught.  Mechanism primitives that take no accountant (``mech.release``)
    are classified as draws at the call site by name.
    """

    name = "charge-before-release"
    severity = SEVERITY_ERROR
    description = (
        "noise must never be drawn before the accountant charge that funds "
        "it has been admitted (a BudgetError after a release has been "
        "sampled burns privacy the ledger never saw)"
    )

    _MAX_HOPS = 2

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        self._summaries: dict[tuple[str, str], _FlowSummary] = {}
        self._in_progress: set[tuple[str, str]] = set()
        for func, class_name in _iter_functions(module):
            if not _references_accountant(func):
                continue
            offending: list[tuple[ast.Call, str]] = []
            self._scan_body(
                func.body, False, offending, module, class_name, ctx,
                self._MAX_HOPS,
            )
            for call, via in offending:
                where = f" (via {via})" if via else ""
                findings.append(
                    self.finding(
                        module,
                        call,
                        f"noise draw{where} reachable in "
                        f"{class_name + '.' if class_name else ''}{func.name} "
                        "before any accountant.spend/parallel charge — "
                        "charge the ledger first, then sample",
                    )
                )
        return findings

    # -- ordered-statement flow scan ---------------------------------- #

    def _scan_body(self, body, charged, offending, module, class_name,
                   ctx, hops) -> bool:
        for stmt in body:
            charged = self._scan_stmt(
                stmt, charged, offending, module, class_name, ctx, hops
            )
        return charged

    def _scan_stmt(self, stmt, charged, offending, module, class_name,
                   ctx, hops) -> bool:
        scan_body = self._scan_body
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            head = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                else stmt.test
            charged = self._scan_expr(
                head, charged, offending, module, class_name, ctx, hops
            )
            after = scan_body(
                stmt.body, charged, offending, module, class_name, ctx, hops
            )
            after = scan_body(
                stmt.orelse, after, offending, module, class_name, ctx, hops
            )
            return charged or after
        if isinstance(stmt, ast.If):
            charged = self._scan_expr(
                stmt.test, charged, offending, module, class_name, ctx, hops
            )
            then = scan_body(
                stmt.body, charged, offending, module, class_name, ctx, hops
            )
            other = scan_body(
                stmt.orelse, charged, offending, module, class_name, ctx, hops
            )
            # Any-path: `if accountant is not None: accountant.spend(...)`
            # is the repo's charging idiom — the uncharged branch is the
            # accountant-less run, which has nothing to fund.
            return then or other
        if isinstance(stmt, ast.Try):
            after = scan_body(
                stmt.body, charged, offending, module, class_name, ctx, hops
            )
            for handler in stmt.handlers:
                scan_body(
                    handler.body, charged, offending, module, class_name,
                    ctx, hops,
                )
            after = scan_body(
                stmt.orelse, after, offending, module, class_name, ctx, hops
            )
            return scan_body(
                stmt.finalbody, after, offending, module, class_name, ctx,
                hops,
            )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                charged = self._scan_expr(
                    item.context_expr, charged, offending, module,
                    class_name, ctx, hops,
                )
            return scan_body(
                stmt.body, charged, offending, module, class_name, ctx, hops
            )
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return charged  # nested scopes are their own analysis unit
        return self._scan_expr(
            stmt, charged, offending, module, class_name, ctx, hops
        )

    def _scan_expr(self, node, charged, offending, module, class_name,
                   ctx, hops) -> bool:
        for call in _calls_in_order(node):
            func = call.func
            callee_name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else ""
            )
            if callee_name in NEUTRAL_FUNCS:
                continue
            if _is_charge_call(call):
                charged = True
                continue
            if _is_draw_call(call):
                if not charged:
                    offending.append((call, ""))
                continue
            if hops <= 0:
                continue
            info = ctx.callgraph.resolve(call, module, class_name)
            if info is None:
                continue
            summary = self._summarize(info, ctx, hops - 1)
            if summary.uncharged_draw is not None and not charged:
                offending.append((call, f"{info.qualname} draws first"))
            if summary.charges:
                charged = True
        return charged

    def _summarize(self, info: FunctionInfo, ctx: LintContext,
                   hops: int) -> _FlowSummary:
        key = (info.module.path, info.qualname)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:  # recursion: assume nothing
            return _FlowSummary()
        self._in_progress.add(key)
        offending: list[tuple[ast.Call, str]] = []
        charged = self._scan_body(
            info.node.body, False, offending, info.module, info.class_name,
            ctx, hops,
        )
        summary = _FlowSummary(
            charges=charged,
            uncharged_draw=offending[0][0] if offending else None,
        )
        self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary


# --------------------------------------------------------------------------- #
# no-float-epsilon-arithmetic
# --------------------------------------------------------------------------- #

EPS_NAME_RE = re.compile(r"(^|_)eps", re.IGNORECASE)


def _node_names(node: ast.AST) -> "list[str]":
    names: list[str] = []
    for n in _walk_no_lambda(node):
        if isinstance(n, ast.Name):
            names.append(n.id)
        elif isinstance(n, ast.Attribute):
            names.append(n.attr)
        elif isinstance(n, ast.Call) and isinstance(n.func, ast.Name):
            names.append(n.func.id)
        elif isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute):
            names.append(n.func.attr)
    return names


def _mentions_eps(node: ast.AST) -> bool:
    return any(EPS_NAME_RE.search(name) for name in _node_names(node))


def _routes_through_units(node: ast.AST) -> bool:
    return any(
        name == "quantize_epsilon" or "units" in name.lower()
        for name in _node_names(node)
    )


def _is_zero_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


class FloatEpsilonArithmeticRule(Rule):
    """PR 5's invariant: epsilon *decisions* happen on the integer grid.

    Budget splits (``eps / T``, ``eps / 2``) are mechanism parameterization
    and stay float — they feed noise scales, not admission decisions.  What
    this rule forbids, outside ``privacy/budget.py``:

    * ordering comparisons (``<``, ``<=``, ``>``, ``>=``) whose operands
      mention an ``eps*``/``epsilon*`` name — unless the expression routes
      through ``quantize_epsilon``/``*units*`` values, or compares against
      a literal ``0`` (sign checks are float-exact);
    * floor-division / modulo on epsilon values (``eps // (2 * probe)``
      mis-counts: ``0.3 // 0.1 == 2.0`` in binary floats);
    * any ``TOLERANCE`` name — the pre-PR-5 slack must never come back.
    """

    name = "no-float-epsilon-arithmetic"
    severity = SEVERITY_ERROR
    description = (
        "epsilon comparisons and floor-divisions outside privacy/budget.py "
        "must route through quantize_epsilon / integer units"
    )

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        if _norm_path(module.path).endswith("privacy/budget.py"):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name) and "TOLERANCE" in node.id:
                findings.append(
                    self.finding(
                        module, node,
                        f"tolerance slack {node.id!r} on the admission path "
                        "— the ledger's integer grid has no tolerance window",
                    )
                )
            elif isinstance(node, ast.Compare):
                if not any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in node.ops
                ):
                    continue
                operands = [node.left, *node.comparators]
                if not any(_mentions_eps(o) for o in operands):
                    continue
                if any(_is_zero_literal(o) for o in operands):
                    continue  # sign check against literal zero: exact
                if _routes_through_units(node):
                    continue
                findings.append(
                    self.finding(
                        module, node,
                        "float ordering comparison on an epsilon value — "
                        "compare quantize_epsilon() integer units instead",
                    )
                )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.FloorDiv, ast.Mod)
            ):
                if not _mentions_eps(node):
                    continue
                if _routes_through_units(node):
                    continue
                op = "floor-division" if isinstance(node.op, ast.FloorDiv) \
                    else "modulo"
                findings.append(
                    self.finding(
                        module, node,
                        f"float {op} on an epsilon value mis-counts on "
                        "binary floats (0.3 // 0.1 == 2.0) — divide "
                        "quantize_epsilon() integer units instead",
                    )
                )
        return findings


# --------------------------------------------------------------------------- #
# no-global-rng
# --------------------------------------------------------------------------- #

_NP_MODULE_RNG = GEN_DRAW_METHODS | {
    "seed", "rand", "randn", "randint", "random_sample", "ranf", "sample",
    "random_integers",
}
_STDLIB_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}


class GlobalRngRule(Rule):
    """Byte-reproducibility: all randomness flows from explicit generators.

    Flags an **argless** ``default_rng()`` (fresh OS entropy — two runs of
    the same release can never be byte-compared) and any call on the
    module-level ``np.random.*`` / stdlib ``random.*`` global state (shared
    across threads, reseedable from anywhere — the opposite of the
    per-request seed streams the service's byte-identity contract needs).
    """

    name = "no-global-rng"
    severity = SEVERITY_WARNING
    description = (
        "argless default_rng() / module-level np.random or random.* calls "
        "break byte-reproducibility of releases"
    )

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        np_aliases = {"numpy"}
        random_aliases = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        np_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random":
                        random_aliases.add(alias.asname or "random")
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if (
                len(chain) == 3
                and chain[0] in np_aliases
                and chain[1] == "random"
            ):
                method = chain[2]
                if method == "default_rng" and not (node.args or node.keywords):
                    findings.append(
                        self.finding(
                            module, node,
                            "argless default_rng() seeds from OS entropy — "
                            "releases stop being byte-reproducible; pass an "
                            "explicit seed or Generator",
                        )
                    )
                elif method in _NP_MODULE_RNG:
                    findings.append(
                        self.finding(
                            module, node,
                            f"np.random.{method} uses the process-global "
                            "RNG — draw from an explicit "
                            "numpy.random.Generator instead",
                        )
                    )
            elif (
                len(chain) == 2
                and chain[0] in random_aliases
                and chain[1] in _STDLIB_RANDOM_FNS
            ):
                findings.append(
                    self.finding(
                        module, node,
                        f"random.{chain[1]} uses the process-global RNG — "
                        "draw from an explicit numpy.random.Generator "
                        "instead",
                    )
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id == "default_rng"
                and not (node.args or node.keywords)
            ):
                findings.append(
                    self.finding(
                        module, node,
                        "argless default_rng() seeds from OS entropy — "
                        "releases stop being byte-reproducible; pass an "
                        "explicit seed or Generator",
                    )
                )
        return findings


# --------------------------------------------------------------------------- #
# trace-key-hygiene
# --------------------------------------------------------------------------- #

_KEY_FUNC_RE = re.compile(r"(^|_)(engine_key|cache_key|key)$|fingerprint|^signature$")
_OBS_FIELDS = {"trace_id", "last_trace_id"}


class TraceKeyHygieneRule(Rule):
    """PR 8's contract: tracing never splits coalescing or misses caches.

    Inside any function whose name looks like a key/fingerprint constructor
    (``engine_key``, ``cache_key``, ``*_key``, ``fingerprint*``,
    ``signature``), any reference to ``trace_id`` — as a name, an attribute,
    or the literal string ``"trace_id"`` — is flagged: a trace id in a cache
    or engine key would split request coalescing, miss every cache, and
    (worst) let observability metadata perturb which DP release a request
    maps to.
    """

    name = "trace-key-hygiene"
    severity = SEVERITY_ERROR
    description = (
        "trace_id/observability fields must not appear in engine_key/"
        "cache_key/fingerprint constructions"
    )

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for func, class_name in _iter_functions(module):
            if not _KEY_FUNC_RE.search(func.name):
                continue
            qual = f"{class_name + '.' if class_name else ''}{func.name}"
            for node in _walk_no_lambda(func):
                hit = None
                if isinstance(node, ast.Name) and node.id in _OBS_FIELDS:
                    hit = node.id
                elif isinstance(node, ast.Attribute) and node.attr in _OBS_FIELDS:
                    hit = node.attr
                elif isinstance(node, ast.Constant) and node.value in _OBS_FIELDS:
                    hit = node.value
                if hit is not None:
                    findings.append(
                        self.finding(
                            module, node,
                            f"{hit!r} referenced inside key constructor "
                            f"{qual} — observability fields are excluded "
                            "from release identity (they would split "
                            "coalescing and miss caches)",
                        )
                    )
        return findings


# --------------------------------------------------------------------------- #
# monotonic-deadlines
# --------------------------------------------------------------------------- #

class MonotonicDeadlinesRule(Rule):
    """Deadlines and timeouts must be immune to wall-clock steps.

    Flags **every** ``time.time()`` call: a wall-clock read that feeds any
    deadline, timeout, or duration arithmetic breaks under NTP steps and
    DST. ``time.monotonic()`` (or ``time.perf_counter()`` for spans) is the
    correct source.  Genuine wall-clock timestamps (e.g. a ``*_unix`` field
    exported for humans) are rare enough to carry an explicit suppression
    stating they never enter deadline math.
    """

    name = "monotonic-deadlines"
    severity = SEVERITY_ERROR
    description = (
        "time.time() is wall clock; deadline/timeout arithmetic uses "
        "time.monotonic() — display timestamps need an explicit suppression"
    )

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        imported_bare_time = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "time"
            and any(a.name == "time" and a.asname is None for a in node.names)
            for a_node in [module.tree]
            for node in ast.walk(a_node)
        )
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            is_time_time = chain == ["time", "time"] or (
                imported_bare_time
                and isinstance(node.func, ast.Name)
                and node.func.id == "time"
            )
            if is_time_time:
                findings.append(
                    self.finding(
                        module, node,
                        "time.time() is wall clock (steps under NTP/DST) — "
                        "use time.monotonic() for deadlines/timeouts; a "
                        "genuine display timestamp needs a suppression "
                        "saying so",
                    )
                )
        return findings


# --------------------------------------------------------------------------- #
# locked-ledger-mutation
# --------------------------------------------------------------------------- #

_LEDGER_ATTR_RE = re.compile(
    r"^_(charges|tokens|spent_units|next_token|limit|limit_units|observer)$"
)
_MUTATING_METHODS = {"append", "pop", "insert", "remove", "clear", "extend"}
_LOCK_NAME_RE = re.compile(r"lock", re.IGNORECASE)


class LockedLedgerMutationRule(Rule):
    """The accountant's atomic check-and-charge contract (PR 3/5).

    Scope: classes whose name contains ``Accountant``.  Every write to
    ledger state (``_charges``, ``_tokens``, ``_spent_units``,
    ``_next_token``, ``_limit*``, ``_observer`` — assignment, aug-assign,
    ``del``, subscript store, or ``.append/.pop/...`` call) must be:

    * lexically inside a ``with ...lock...:`` block, or
    * in ``__init__`` (the object is not shared before construction
      returns), or
    * in a private helper whose every intra-module call site is itself
      under a lock or in an exempt method — the "caller holds the lock"
      idiom (``_append``, ``_remove_at``), verified instead of trusted.
    """

    name = "locked-ledger-mutation"
    severity = SEVERITY_ERROR
    description = (
        "accountant/ledger state mutates only under the ledger lock "
        "(atomic check-and-charge; racing spenders must never interleave "
        "past the cap)"
    )

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and "Accountant" in node.name:
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: Module, cls: ast.ClassDef):
        methods = {
            n.name: n
            for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # method name -> list of (caller method, under lock / exempt?)
        call_sites: dict[str, list[bool]] = {}
        for name, method in methods.items():
            exempt = name == "__init__"
            for call, locked in self._calls_with_lock_state(method):
                if (
                    isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == "self"
                    and call.func.attr in methods
                ):
                    call_sites.setdefault(call.func.attr, []).append(
                        locked or exempt
                    )
        findings: list[Finding] = []
        for name, method in methods.items():
            if name == "__init__":
                continue
            private_ok = name.startswith("_") and all(
                call_sites.get(name, [])
            )
            for node, locked in self._mutations_with_lock_state(method):
                if locked or private_ok:
                    continue
                findings.append(
                    self.finding(
                        module, node,
                        f"ledger state mutated in {cls.name}.{name} outside "
                        "a `with self._lock` scope (and not a private "
                        "helper whose callers all hold the lock)",
                    )
                )
        return findings

    # -- lock-aware traversal ------------------------------------------ #

    def _walk_with_lock(self, node: ast.AST, locked: bool):
        """Yield (node, locked) pairs, tracking `with *lock*` scopes."""
        yield node, locked
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or any(
                any(
                    _LOCK_NAME_RE.search(n)
                    for n in _node_names(item.context_expr)
                )
                for item in node.items
            )
            for item in node.items:
                yield from self._walk_with_lock(item.context_expr, locked)
            for child in node.body:
                yield from self._walk_with_lock(child, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                locked is not None:
            pass
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Lambda,)):
                continue
            yield from self._walk_with_lock(child, locked)

    def _calls_with_lock_state(self, method):
        seen = set()
        for node, locked in self._walk_with_lock(method, False):
            if isinstance(node, ast.Call) and id(node) not in seen:
                seen.add(id(node))
                yield node, locked

    def _mutations_with_lock_state(self, method):
        seen = set()
        for node, locked in self._walk_with_lock(method, False):
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for t in targets:
                    if self._is_ledger_target(t):
                        yield node, locked
                        break
            elif isinstance(node, ast.Delete):
                if any(self._is_ledger_target(t) for t in node.targets):
                    yield node, locked
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"
                    and _LEDGER_ATTR_RE.match(func.value.attr)
                ):
                    yield node, locked

    @staticmethod
    def _is_ledger_target(t: ast.AST) -> bool:
        if isinstance(t, (ast.Subscript,)):
            t = t.value
        return (
            isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
            and bool(_LEDGER_ATTR_RE.match(t.attr))
        )


# --------------------------------------------------------------------------- #
# fsync-in-hook
# --------------------------------------------------------------------------- #

_JOURNAL_APPEND_METHODS = {
    "append", "append_event", "append_record", "record", "write_event",
}
_JOURNAL_RECV_RE = re.compile(r"journal|store|ledger", re.IGNORECASE)


class FsyncInHookRule(Rule):
    """PR 5's durability contract: charges are on disk before spend returns.

    The journal record for a charge is written (and fsync'd) *inside* the
    accountant's mutation observer, under the ledger lock — so by the time
    ``spend()`` returns, the charge is durable and no noise has been drawn
    against an unpersisted reservation.  This rule flags the anti-pattern
    that would silently re-open the crash window: a journal/store append
    (or raw ``os.fsync``/``_fsync_write``) issued *after* a
    ``spend``/``parallel`` call in the same function body — durability
    bolted on after the charge already returned.
    """

    name = "fsync-in-hook"
    severity = SEVERITY_ERROR
    description = (
        "journal appends belong inside the accountant mutation hook, not "
        "after spend() has already returned (crash between the two loses "
        "the charge)"
    )

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for func, class_name in _iter_functions(module):
            charged_line: "int | None" = None
            for call in _calls_in_order(func):
                if _is_charge_call(call):
                    charged_line = charged_line or call.lineno
                    continue
                if charged_line is None:
                    continue
                if self._is_journal_append(call):
                    qual = f"{class_name + '.' if class_name else ''}{func.name}"
                    findings.append(
                        self.finding(
                            module, call,
                            f"journal append in {qual} after the charge on "
                            f"line {charged_line} returned — write it in "
                            "the accountant's mutation hook instead, so a "
                            "crash cannot separate the charge from its "
                            "durability record",
                        )
                    )
        return findings

    @staticmethod
    def _is_journal_append(call: ast.Call) -> bool:
        func = call.func
        chain = _attr_chain(func)
        if chain[-2:] == ["os", "fsync"] or chain == ["os", "fsync"]:
            return True
        if isinstance(func, ast.Name) and func.id == "_fsync_write":
            return True
        if isinstance(func, ast.Attribute) and \
                func.attr in _JOURNAL_APPEND_METHODS:
            receiver = _receiver_tail(func)
            return bool(_JOURNAL_RECV_RE.search(receiver))
        return False


# --------------------------------------------------------------------------- #
# no-cached-envelope-mutation
# --------------------------------------------------------------------------- #

_CACHE_RECV_RE = re.compile(r"cache|cached", re.IGNORECASE)
_DICT_MUTATORS = {"update", "setdefault", "pop", "popitem", "clear"}


class CachedEnvelopeMutationRule(Rule):
    """PR 8's copy-on-write contract for cached payloads.

    A value fetched through a cache ``.get`` path is shared: mutating it in
    place (subscript store, ``del``, ``.update/.setdefault/.pop/...``)
    poisons every future hit — the bug class PR 8 closed by attaching
    ``trace_id`` copy-on-write.  Tracked per function: names bound from a
    ``<...cache...>.get(...)`` call; mutations of a tracked name (until it
    is rebound) are flagged.  ``entry.payload()`` copies are deliberately
    not tracked — that is the sanctioned mutation route.
    """

    name = "no-cached-envelope-mutation"
    severity = SEVERITY_ERROR
    description = (
        "objects returned from cache .get paths are shared — mutate a "
        "copy (dict(x) / entry.payload()), never the cached object"
    )

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for func, class_name in _iter_functions(module):
            qual = f"{class_name + '.' if class_name else ''}{func.name}"
            tracked: set[str] = set()
            for stmt in self._linear_statements(func):
                self._scan_statement(module, stmt, tracked, qual, findings)
        return findings

    def _linear_statements(self, func):
        """Every statement in the function, in source order."""
        stmts = []
        for node in _walk_no_lambda(func):
            if isinstance(node, ast.stmt) and node is not func:
                stmts.append(node)
        stmts.sort(key=lambda s: (s.lineno, s.col_offset))
        return stmts

    def _scan_statement(self, module, stmt, tracked, qual, findings):
        def msg(name):
            return (
                f"{name!r} came from a cache .get path in {qual} — mutating "
                "it in place poisons every future cache hit; mutate a copy "
                "(dict(x) / entry.payload()) instead"
            )

        if isinstance(stmt, ast.Assign):
            from_cache = any(
                self._is_cache_get(c) for c in _calls_in_order(stmt.value)
            )
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    if from_cache:
                        tracked.add(t.id)
                    else:
                        tracked.discard(t.id)
                elif isinstance(t, ast.Subscript) and \
                        self._names_tracked_base(t.value, tracked):
                    findings.append(self.finding(
                        module, stmt, msg(self._base_name(t.value))))
                elif isinstance(t, ast.Subscript) and any(
                    self._is_cache_get(c) for c in _calls_in_order(t.value)
                ):
                    findings.append(self.finding(
                        module, stmt,
                        f"subscript store into a cache .get result in {qual}"
                        " — mutate a copy, never the cached object"))
        elif isinstance(stmt, ast.AugAssign):
            t = stmt.target
            if isinstance(t, ast.Subscript) and \
                    self._names_tracked_base(t.value, tracked):
                findings.append(self.finding(
                    module, stmt, msg(self._base_name(t.value))))
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Subscript) and \
                        self._names_tracked_base(t.value, tracked):
                    findings.append(self.finding(
                        module, stmt, msg(self._base_name(t.value))))
        elif isinstance(stmt, ast.Expr):
            for call in _calls_in_order(stmt):
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _DICT_MUTATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in tracked
                ):
                    findings.append(self.finding(
                        module, call, msg(func.value.id)))

    @staticmethod
    def _is_cache_get(call: ast.Call) -> bool:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "get"):
            return False
        return any(
            _CACHE_RECV_RE.search(part) for part in _attr_chain(func.value)
        )

    @staticmethod
    def _base_name(node: ast.AST) -> str:
        return node.id if isinstance(node, ast.Name) else "<expr>"

    @staticmethod
    def _names_tracked_base(node: ast.AST, tracked: "set[str]") -> bool:
        return isinstance(node, ast.Name) and node.id in tracked


#: The shipping rule suite, in catalogue order.
ALL_RULES: "tuple[Rule, ...]" = (
    ChargeBeforeReleaseRule(),
    FloatEpsilonArithmeticRule(),
    GlobalRngRule(),
    TraceKeyHygieneRule(),
    MonotonicDeadlinesRule(),
    LockedLedgerMutationRule(),
    FsyncInHookRule(),
    CachedEnvelopeMutationRule(),
)

RULE_NAMES: "tuple[str, ...]" = tuple(rule.name for rule in ALL_RULES)
