"""SARIF 2.1.0 emission for ``repro lint`` results.

One :class:`~repro.analysis.model.LintResult` renders to both the native
JSON report (``model.report()``) and this SARIF document — same findings,
same suppressions, two consumers: the native schema for the repo's own CI
gate and diffing, SARIF for code-scanning UIs that ingest the standard
format.

Mapping choices (the minimal valid profile, nothing speculative):

* every rule that ran gets a ``tool.driver.rules`` entry (id + short
  description), so result ``ruleIndex`` references resolve;
* a flow trace becomes one ``codeFlow`` with a single ``threadFlow`` whose
  locations carry the hop notes — source first, sink last;
* a suppressed finding is still a ``result``, with a ``suppressions``
  entry of kind ``inSource`` and the mandatory reason as justification —
  SARIF consumers show it greyed out instead of losing it;
* columns are 0-based internally, 1-based in SARIF regions.
"""

from __future__ import annotations

import json

from .model import Finding, LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptions() -> "dict[str, str]":
    from .engine import FRAMEWORK_RULES
    from .flow import FLOW_RULES
    from .rules import ALL_RULES

    out = {r.name: r.description for r in ALL_RULES}
    out.update({r.name: r.description for r in FLOW_RULES})
    out.setdefault("parse-error", "file does not parse")
    out.setdefault(
        "bad-suppression",
        "malformed or unknown-rule inline suppression",
    )
    for name in FRAMEWORK_RULES:
        out.setdefault(name, name)
    return out


def _location(path: str, line: int, col: int, message: "str | None" = None):
    loc = {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {"startLine": max(line, 1),
                       "startColumn": max(col, 0) + 1},
        }
    }
    if message is not None:
        loc["message"] = {"text": message}
    return loc


def _result(finding: Finding, rule_index: "dict[str, int]",
            suppression_reason: "str | None" = None) -> dict:
    result = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    if finding.trace:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": _location(
                                    hop.path, hop.line, 0, hop.note
                                )
                            }
                            for hop in finding.trace
                        ]
                    }
                ]
            }
        ]
    if suppression_reason is not None:
        result["suppressions"] = [
            {"kind": "inSource", "justification": suppression_reason}
        ]
    return result


def to_sarif(result: LintResult) -> dict:
    """The SARIF 2.1.0 document for one lint run."""
    descriptions = _rule_descriptions()
    rule_ids = sorted(
        set(result.rules_run)
        | {f.rule for f in result.findings}
        | {s.finding.rule for s in result.suppressed}
    )
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = [
        {
            "id": rid,
            "shortDescription": {"text": descriptions.get(rid, rid)},
        }
        for rid in rule_ids
    ]
    results = [_result(f, rule_index) for f in result.findings]
    results.extend(
        _result(s.finding, rule_index, suppression_reason=s.reason)
        for s in result.suppressed
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(result: LintResult) -> str:
    return json.dumps(to_sarif(result), indent=2, sort_keys=False)
