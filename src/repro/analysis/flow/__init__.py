"""``repro.analysis.flow`` — the interprocedural flow engine (``--engine=flow``).

Two rule families on one fixpoint dataflow substrate:

* **Privacy taint** (``taint.py`` over ``dataflow.py``): sources are the raw
  row/count accessors, sanitizers are the mechanism release methods declared
  in :mod:`repro.privacy.manifest` (new backends self-register), sinks are
  the serving tier's output channels.  Any source → sink path that never
  crosses a sanitizer is a ``taint-unsanitized-release`` finding; tainted
  values in exception messages / error envelopes are
  ``taint-error-envelope`` findings.  Findings carry a full flow trace
  (source → hops → sink) in the v2 JSON schema.

* **Lockset** (``lockset.py``): infers guarded-by relations for shared
  mutable attributes in classes that own locks, verifies the
  caller-holds-lock helper idiom by fixpoint, and reports accesses outside
  the inferred lockset (``lockset-unguarded-access``) plus inconsistent
  lock-acquisition orders (``lockset-order-cycle``).

The rules plug into the same :class:`~repro.analysis.engine.Linter`
framework as the AST engine: same Finding/suppression model, same report
schema, same CLI.
"""

from .dataflow import FlowAnalysis, FunctionSummary, Taint, TaintConfig, fixpoint
from .lockset import LocksetOrderCycleRule, LocksetUnguardedAccessRule
from .taint import (
    TaintErrorEnvelopeRule,
    TaintUnsanitizedReleaseRule,
    load_taint_config,
)

#: The flow-engine rule suite, in catalogue order.
FLOW_RULES = (
    TaintUnsanitizedReleaseRule(),
    TaintErrorEnvelopeRule(),
    LocksetUnguardedAccessRule(),
    LocksetOrderCycleRule(),
)

FLOW_RULE_NAMES = tuple(rule.name for rule in FLOW_RULES)

__all__ = [
    "FLOW_RULES",
    "FLOW_RULE_NAMES",
    "FlowAnalysis",
    "FunctionSummary",
    "LocksetOrderCycleRule",
    "LocksetUnguardedAccessRule",
    "Taint",
    "TaintConfig",
    "TaintErrorEnvelopeRule",
    "TaintUnsanitizedReleaseRule",
    "fixpoint",
    "load_taint_config",
]
