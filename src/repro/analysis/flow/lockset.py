"""Lockset inference: guarded-by relations for shared mutable state.

Eraser-style, adapted to this codebase's idioms.  Scope: classes that
create locks in ``__init__`` (``self._lock = threading.Lock()``, RLock,
Condition, ...).  For each such class:

* **guarded-by inference** — an attribute accessed at least once inside a
  ``with self.<lock>:`` scope is *lock-associated*; every write to it
  outside any lock scope (and outside ``__init__``, where the object is
  not yet shared) is a ``lockset-unguarded-access`` finding.  Attributes
  never accessed under a lock are treated as thread-confined and skipped.
* **caller-holds-lock helpers** — a private method whose every intra-class
  call site holds a lock (or is itself such a helper, or ``__init__``) is
  *verified* by fixpoint iteration; accesses inside it count as locked.
  This is the ``_append``/``_release_claim`` idiom the PR-9 serving tier
  leans on — verified, not trusted.
* **acquisition order** — acquiring lock B while holding lock A adds an
  A → B edge (lexical nesting, plus one hop through resolved intra-class
  calls).  Any cycle in the per-class edge graph is a
  ``lockset-order-cycle`` finding at each acquisition site on the cycle:
  two threads taking the locks in opposite orders deadlock.

Findings carry a two-hop v2 trace: the locked access that established the
guarded-by relation, then the offending access.
"""

from __future__ import annotations

import ast
import re

from dataclasses import dataclass, field

from ..loader import Module
from ..model import Finding, SEVERITY_ERROR, TraceHop
from ..rules import LintContext, Rule

#: Constructors whose result is a lock-like object.
_LOCK_FACTORIES = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
}
_LOCK_NAME_RE = re.compile(r"lock|_cv$|condition", re.IGNORECASE)

#: Container methods that mutate their receiver.
_MUTATING_METHODS = {
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "setdefault", "update",
}


@dataclass
class _Access:
    attr: str
    method: str
    node: ast.AST
    locks: "frozenset[str]"
    is_write: bool


@dataclass
class _ClassFacts:
    """Everything the two rules need about one lock-owning class."""

    name: str
    node: ast.ClassDef
    lock_attrs: "set[str]" = field(default_factory=set)
    accesses: "list[_Access]" = field(default_factory=list)
    #: method -> [(caller method, locks held at the call site)]
    call_sites: "dict[str, list[tuple[str, frozenset[str]]]]" = field(
        default_factory=dict
    )
    #: private methods verified to run with a caller-held lock
    verified_helpers: "set[str]" = field(default_factory=set)
    #: (held lock, acquired lock) -> acquisition node (first seen)
    order_edges: "dict[tuple[str, str], ast.AST]" = field(default_factory=dict)
    methods: "dict[str, ast.AST]" = field(default_factory=dict)


def _is_lock_factory(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    return name in _LOCK_FACTORIES


def _self_attr(node: ast.AST) -> "str | None":
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _with_locks(stmt: "ast.With | ast.AsyncWith",
                lock_attrs: "set[str]") -> "list[tuple[str, ast.AST]]":
    out = []
    for item in stmt.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and attr in lock_attrs:
            out.append((attr, item.context_expr))
    return out


def _collect_class(module: Module,
                   cls: ast.ClassDef) -> "_ClassFacts | None":
    facts = _ClassFacts(name=cls.name, node=cls)
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.methods[node.name] = node
    init = facts.methods.get("__init__")
    if init is None:
        return None
    # Lock attributes: created in __init__ by a lock factory, or assigned
    # there under a lock-shaped name.
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                attr = _self_attr(t)
                if attr and (_is_lock_factory(node.value)
                             or _LOCK_NAME_RE.search(attr)):
                    facts.lock_attrs.add(attr)
    if not facts.lock_attrs:
        return None

    for name, method in facts.methods.items():
        _walk_method(module, facts, name, method.body, frozenset())

    _verify_helpers(facts)
    return facts


def _walk_method(module: Module, facts: _ClassFacts, method: str,
                 body, locks: "frozenset[str]") -> None:
    for stmt in body:
        _walk_stmt(module, facts, method, stmt, locks)


def _walk_stmt(module: Module, facts: _ClassFacts, method: str,
               stmt: ast.stmt, locks: "frozenset[str]") -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return  # nested scopes are separate analysis units
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        acquired = _with_locks(stmt, facts.lock_attrs)
        for attr, node in acquired:
            for held in locks:
                if held != attr:
                    facts.order_edges.setdefault((held, attr), node)
        inner = locks | {a for a, _ in acquired}
        for item in stmt.items:
            _scan_exprs(module, facts, method, item.context_expr, locks)
        _walk_method(module, facts, method, stmt.body, inner)
        return
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            _walk_stmt(module, facts, method, child, locks)
        elif isinstance(child, (ast.expr, ast.excepthandler)):
            _scan_exprs(module, facts, method, child, locks)
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for t in targets:
            _record_store(facts, method, t, locks)
    elif isinstance(stmt, ast.Delete):
        for t in stmt.targets:
            _record_store(facts, method, t, locks)


def _record_store(facts: _ClassFacts, method: str, target: ast.AST,
                  locks: "frozenset[str]") -> None:
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    attr = _self_attr(node)
    if attr and attr not in facts.lock_attrs:
        facts.accesses.append(_Access(attr, method, target, locks, True))
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _record_store(facts, method, elt, locks)


def _scan_exprs(module: Module, facts: _ClassFacts, method: str,
                node: ast.AST, locks: "frozenset[str]") -> None:
    for n in ast.walk(node):
        if isinstance(n, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(n, ast.Call):
            func = n.func
            # self.method(...) call sites feed helper verification.
            if isinstance(func, ast.Attribute):
                recv_attr = _self_attr(func)
                if recv_attr is None and _self_attr(func.value) is not None:
                    # self.<attr>.<mutator>(...): a write to the attribute.
                    attr = _self_attr(func.value)
                    if func.attr in _MUTATING_METHODS and \
                            attr not in facts.lock_attrs:
                        facts.accesses.append(
                            _Access(attr, method, n, locks, True)
                        )
                elif recv_attr is not None and recv_attr in facts.methods:
                    facts.call_sites.setdefault(recv_attr, []).append(
                        (method, locks)
                    )
                    # One-hop acquisition-order edges through the callee.
                    for acquired in _acquires(facts, recv_attr):
                        for held in locks:
                            if held != acquired:
                                facts.order_edges.setdefault(
                                    (held, acquired), n
                                )
        elif isinstance(n, ast.Attribute) and isinstance(n.ctx, ast.Load):
            attr = _self_attr(n)
            if attr and attr not in facts.lock_attrs and \
                    attr not in facts.methods:
                facts.accesses.append(_Access(attr, method, n, locks, False))


def _acquires(facts: _ClassFacts, method: str) -> "set[str]":
    node = facts.methods.get(method)
    if node is None:
        return set()
    out: "set[str]" = set()
    for n in ast.walk(node):
        if isinstance(n, (ast.With, ast.AsyncWith)):
            out.update(a for a, _ in _with_locks(n, facts.lock_attrs))
    return out


def _verify_helpers(facts: _ClassFacts) -> None:
    """Greatest fixpoint of "every call site holds a lock"."""
    from .dataflow import fixpoint

    candidates = {
        name
        for name in facts.methods
        if name.startswith("_") and not name.startswith("__")
        and facts.call_sites.get(name)
    }

    def step() -> bool:
        dropped = set()
        for name in candidates:
            for caller, locks in facts.call_sites.get(name, ()):
                site_ok = (
                    bool(locks)
                    or caller == "__init__"
                    or caller in candidates
                )
                if not site_ok:
                    dropped.add(name)
                    break
        if dropped:
            candidates.difference_update(dropped)
            return True
        return False

    fixpoint(step)
    facts.verified_helpers = candidates


def _class_facts(module: Module, ctx: LintContext) -> "list[_ClassFacts]":
    cache = getattr(ctx, "_lockset_facts", None)
    if cache is None:
        cache = {}
        ctx._lockset_facts = cache
    if module.path not in cache:
        facts = []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                f = _collect_class(module, node)
                if f is not None:
                    facts.append(f)
        cache[module.path] = facts
    return cache[module.path]


class LocksetUnguardedAccessRule(Rule):
    """Writes to lock-associated attributes must hold the lock.

    An attribute of a lock-owning class that is ever accessed under a
    ``with self.<lock>:`` scope is shared state; writing it with no lock
    held — outside ``__init__`` and outside a verified caller-holds-lock
    helper — is a race (lost update, or a reader observing a half-applied
    transition).
    """

    name = "lockset-unguarded-access"
    severity = SEVERITY_ERROR
    description = (
        "a lock-associated attribute is written with no lock held — "
        "every access to shared mutable state goes through its inferred "
        "guarding lock (or a verified caller-holds-lock helper)"
    )

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for facts in _class_facts(module, ctx):
            guarded: "dict[str, tuple[str, int]]" = {}
            for acc in facts.accesses:
                if acc.locks and acc.attr not in guarded:
                    guarded[acc.attr] = (
                        sorted(acc.locks)[0],
                        getattr(acc.node, "lineno", 1),
                    )
            for acc in facts.accesses:
                if not acc.is_write or acc.locks:
                    continue
                if acc.method == "__init__" or \
                        acc.method in facts.verified_helpers:
                    continue
                guard = guarded.get(acc.attr)
                if guard is None:
                    continue  # never locked anywhere: thread-confined
                lock, locked_line = guard
                findings.append(
                    Finding(
                        path=module.path,
                        line=getattr(acc.node, "lineno", 1),
                        col=getattr(acc.node, "col_offset", 0),
                        rule=self.name,
                        message=(
                            f"{facts.name}.{acc.attr} is written in "
                            f"{acc.method} with no lock held, but is "
                            f"guarded by self.{lock} elsewhere (line "
                            f"{locked_line}) — take the lock or route "
                            "through a verified caller-holds-lock helper"
                        ),
                        severity=self.severity,
                        trace=(
                            TraceHop(
                                module.path, locked_line,
                                f"guarded-by inferred: {acc.attr} accessed "
                                f"under self.{lock}",
                            ),
                            TraceHop(
                                module.path,
                                getattr(acc.node, "lineno", 1),
                                f"unguarded write in {acc.method}",
                            ),
                        ),
                    )
                )
        return findings


class LocksetOrderCycleRule(Rule):
    """Lock acquisition order must be acyclic per class.

    If one code path takes A then B and another takes B then A, two
    threads can each hold one and wait forever on the other.  Edges come
    from lexical ``with`` nesting plus one hop through resolved
    intra-class calls.
    """

    name = "lockset-order-cycle"
    severity = SEVERITY_ERROR
    description = (
        "inconsistent lock-acquisition order (A→B on one path, B→A on "
        "another) — a two-thread deadlock waiting to happen"
    )

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for facts in _class_facts(module, ctx):
            edges = facts.order_edges
            adj: "dict[str, set[str]]" = {}
            for (a, b) in edges:
                adj.setdefault(a, set()).add(b)
            for (a, b), node in sorted(
                edges.items(),
                key=lambda kv: (getattr(kv[1], "lineno", 1), kv[0]),
            ):
                if self._reaches(adj, b, a):
                    findings.append(
                        Finding(
                            path=module.path,
                            line=getattr(node, "lineno", 1),
                            col=getattr(node, "col_offset", 0),
                            rule=self.name,
                            message=(
                                f"{facts.name}: acquiring self.{b} while "
                                f"holding self.{a} closes an acquisition-"
                                f"order cycle (self.{b} → … → self.{a} "
                                "elsewhere) — pick one global order"
                            ),
                            severity=self.severity,
                            trace=(
                                TraceHop(
                                    module.path,
                                    getattr(node, "lineno", 1),
                                    f"acquires self.{b} holding self.{a}",
                                ),
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _reaches(adj: "dict[str, set[str]]", src: str, dst: str) -> bool:
        seen = {src}
        stack = [src]
        while stack:
            cur = stack.pop()
            if cur == dst:
                return True
            for nxt in adj.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False
