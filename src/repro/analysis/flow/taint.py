"""Privacy-taint rules over the interprocedural dataflow engine.

Two rules share one :class:`~repro.analysis.flow.dataflow.FlowAnalysis`
(computed once per lint run, cached on the :class:`LintContext`):

``taint-unsanitized-release``
    A value derived from raw rows/counts (a *source* per the privacy
    manifest) reaches an output channel — envelope, log, metrics label,
    journal record, frame payload, trace attachment — without crossing a
    registered DP mechanism release (*sanitizer*).  This is the paper's
    core guarantee, checked statically on every path the call graph can
    see.

``taint-error-envelope``
    The error-path companion: raw data in a raised exception's message, or
    broadly-caught exception text (``except Exception as exc`` — ``exc``
    may embed raw values interpolated by arbitrary callees) forwarded into
    envelopes/logs/sinks.  The sanctioned redaction is ``type(exc).__name__``
    (``type`` is a clean builtin) plus a stable error code.

Both emit v2 findings carrying the full source → hops → sink trace.
"""

from __future__ import annotations

import ast

from ..loader import Module
from ..model import Finding, SEVERITY_ERROR
from ..rules import LintContext, Rule
from .dataflow import (
    FlowAnalysis,
    TAG_DATA,
    TAG_EXC,
    TaintConfig,
)

#: Channels whose data-tagged hits are unsanitized releases; the
#: ``exception`` channel (raise-site messages) belongs to the error rule.
RELEASE_CHANNELS = {
    "envelope", "log", "metric-label", "journal", "frame", "trace",
}

_REGISTER_FUNCS = {
    "register_source": "source",
    "register_sanitizer": "sanitizer",
    "register_sink": "sink",
}


def load_taint_config(modules: "list[Module]") -> TaintConfig:
    """The manifest vocabularies: runtime import plus static scan.

    The import picks up everything the shipped ``repro.privacy`` package
    registers; the scan over the *analysed* tree picks up
    ``register_sanitizer("x")`` calls in code the linter only parses (an
    out-of-tree backend, a fixture).  Literal string arguments only — the
    linter never executes analysed code.
    """
    try:
        from repro.privacy import manifest
    except Exception:  # pragma: no cover - manifest is part of this repo
        manifest = None

    sources: "set[str]" = set()
    source_attrs: "set[str]" = set()
    sanitizers: "set[str]" = set()
    sinks: "dict[str, set[str]]" = {}
    if manifest is not None:
        sources |= manifest.TAINT_SOURCE_METHODS
        source_attrs |= manifest.TAINT_SOURCE_ATTRS
        sanitizers |= manifest.SANITIZER_METHODS
        for channel, names in manifest.SINK_CHANNELS.items():
            sinks.setdefault(channel, set()).update(names)
        recv_re = manifest.TAINT_SOURCE_RECV_RE
    else:  # pragma: no cover
        import re

        recv_re = re.compile(r"dataset|counts|stack|table", re.IGNORECASE)

    for module in modules:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, (ast.Name, ast.Attribute))):
                continue
            fname = node.func.id if isinstance(node.func, ast.Name) \
                else node.func.attr
            kind = _REGISTER_FUNCS.get(fname)
            if kind is None:
                continue
            literals = [
                a.value for a in node.args
                if isinstance(a, ast.Constant) and isinstance(a.value, str)
            ]
            if kind == "source" and literals:
                sources.add(literals[-1])
            elif kind == "sanitizer" and literals:
                sanitizers.add(literals[-1])
            elif kind == "sink" and len(literals) >= 2:
                sinks.setdefault(literals[0], set()).add(literals[1])

    return TaintConfig(
        source_methods=frozenset(sources),
        source_attrs=frozenset(source_attrs),
        source_recv_re=recv_re,
        sanitizers=frozenset(sanitizers),
        sink_channels={k: frozenset(v) for k, v in sinks.items()},
    )


def flow_analysis(ctx: LintContext) -> FlowAnalysis:
    """The per-run analysis, computed once and shared by every flow rule."""
    cached = getattr(ctx, "_flow_analysis", None)
    if cached is None:
        cached = FlowAnalysis(
            ctx.modules, ctx.callgraph, load_taint_config(ctx.modules)
        )
        cached.run()
        ctx._flow_analysis = cached
    return cached


_CHANNEL_NOUN = {
    "envelope": "a response envelope",
    "log": "a log call",
    "metric-label": "a metrics label",
    "journal": "a journal record",
    "frame": "a frame/HTTP payload",
    "trace": "a trace attachment",
    "exception": "a raised exception message",
}


class _FlowRule(Rule):
    """Shared plumbing: pick this rule's hits for one module, deduped."""

    def _hits_for(self, module: Module, ctx: LintContext):
        analysis = flow_analysis(ctx)
        picked = [
            (info, hit)
            for mod, info, hit in analysis.hits
            if mod.path == module.path and self._selects(hit)
        ]
        # One finding per (location, function): keep the shortest trace so
        # reports are deterministic under set-iteration order.
        best: dict = {}
        for info, hit in picked:
            key = (hit.node_line, hit.node_col, info.qualname)
            trace = hit.taint.trace
            rendered = tuple((h.path, h.line, h.note) for h in trace)
            prior = best.get(key)
            if prior is None or (len(trace), rendered) < prior[0]:
                best[key] = ((len(trace), rendered), info, hit)
        return [best[k][1:] for k in sorted(best)]

    def _selects(self, hit) -> bool:
        raise NotImplementedError

    def _finding(self, module: Module, info, hit, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=hit.node_line,
            col=hit.node_col,
            rule=self.name,
            message=message,
            severity=self.severity,
            trace=hit.taint.trace,
        )


class TaintUnsanitizedReleaseRule(_FlowRule):
    """No raw-data path may reach an output channel unsanitized.

    Sources, sanitizers, and sinks come from :mod:`repro.privacy.manifest`
    (mechanism backends self-register their release methods).  Paths are
    followed through the call graph via context-insensitive summaries, so a
    helper that builds an envelope from its argument is reported at the
    caller that fed it raw counts.
    """

    name = "taint-unsanitized-release"
    severity = SEVERITY_ERROR
    description = (
        "a value derived from raw rows/counts reaches an output channel "
        "(envelope/log/metrics label/journal/frame/trace) without crossing "
        "a registered DP mechanism release"
    )

    def _selects(self, hit) -> bool:
        return hit.channel in RELEASE_CHANNELS and hit.taint.tag == TAG_DATA

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for info, hit in self._hits_for(module, ctx):
            origin = hit.taint.trace[0].note if hit.taint.trace else "a source"
            findings.append(
                self._finding(
                    module, info, hit,
                    f"raw value ({origin}) reaches "
                    f"{_CHANNEL_NOUN.get(hit.channel, hit.channel)} in "
                    f"{info.qualname} without crossing a DP sanitizer — "
                    "release through a registered mechanism first",
                )
            )
        return findings


class TaintErrorEnvelopeRule(_FlowRule):
    """Raw data must not leak through error paths.

    Flags (a) tainted values interpolated into a raised exception's
    message, and (b) broadly-caught exception text (``except Exception as
    exc``) forwarded into envelopes, logs, or other sinks — an exception
    raised by a deeper layer can embed raw counts in its ``str()``.  Redact
    with ``type(exc).__name__`` and a stable error code.
    """

    name = "taint-error-envelope"
    severity = SEVERITY_ERROR
    description = (
        "tainted values in exception messages, or unredacted broad-caught "
        "exception text in error envelopes/logs — redact to "
        "type(exc).__name__ plus a stable code"
    )

    def _selects(self, hit) -> bool:
        return hit.channel == "exception" or hit.taint.tag == TAG_EXC

    def check(self, module: Module, ctx: LintContext) -> "list[Finding]":
        findings: list[Finding] = []
        for info, hit in self._hits_for(module, ctx):
            if hit.channel == "exception":
                msg = (
                    f"tainted value interpolated into a raised exception "
                    f"message in {info.qualname} — exception text ends up "
                    "in error envelopes and logs; raise with a stable "
                    "error code instead"
                )
            else:
                msg = (
                    f"unredacted exception text reaches "
                    f"{_CHANNEL_NOUN.get(hit.channel, hit.channel)} in "
                    f"{info.qualname} — a deep exception's str() can embed "
                    "raw values; redact to type(exc).__name__ plus a "
                    "stable code"
                )
            findings.append(self._finding(module, info, hit, msg))
        return findings
