"""The fixpoint interprocedural dataflow engine behind ``--engine=flow``.

One analysis unit is a function body.  The transfer function walks its
statements in source order, carrying an environment that maps local names
(and ``self.<attr>`` pseudo-names) to sets of :class:`Taint` values.  Taint
enters at *sources* (raw row/count accessors from the privacy manifest),
stops at *sanitizers* (mechanism release methods), and is reported when it
reaches a *sink* (envelope constructions, logging, metrics label values,
journal records, frame writers, trace attachments, exception messages).

Interprocedural propagation is context-insensitive: each function gets a
:class:`FunctionSummary` saying (a) what its return value's taint is in
terms of its parameters and any internal sources, and (b) which parameters
flow into sinks inside it.  Summaries are computed over the extended call
graph (``analysis/callgraph.py`` — ``name()``, ``self.m()``, ``Cls.m()``,
``super().m()``, ``pkg.mod.fn()``) by iterating :func:`fixpoint` until no
summary changes; summaries only ever grow, so termination is by
monotonicity plus the trace/set caps below.

Every taint carries a bounded trace of :class:`~repro.analysis.model.
TraceHop` — the evidence path rendered into the v2 JSON schema.
"""

from __future__ import annotations

import ast

from dataclasses import dataclass, field

from ..callgraph import CallGraph, FunctionInfo
from ..loader import Module
from ..model import TraceHop

#: Caps keeping the lattice finite: hops per trace, taints per value.
MAX_TRACE_HOPS = 16
MAX_TAINTS = 32
#: Fixpoint iteration bound (reached only by pathological call cycles).
MAX_ROUNDS = 12

TAG_DATA = "data"   # derived from raw rows/counts
TAG_EXC = "exc"     # text of a broadly-caught exception (may embed raw data)

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}

#: Builtins whose results never carry their arguments' data.
CLEAN_FUNCS = {
    "type", "isinstance", "issubclass", "hasattr", "callable", "super",
    "range", "enumerate", "id", "iter", "next", "property", "classmethod",
    "staticmethod",
}


@dataclass(frozen=True)
class TaintConfig:
    """The vocabularies the transfer function classifies call sites with."""

    source_methods: "frozenset[str]"
    source_attrs: "frozenset[str]"
    source_recv_re: "object"          # compiled regex over receiver names
    sanitizers: "frozenset[str]"
    sink_channels: "dict[str, frozenset[str]]"


@dataclass(frozen=True)
class Taint:
    """One tracked taint on a value.

    ``kind`` is ``"source"`` (originates inside the analysed body or a
    callee) or ``"param"`` (flows from the enclosing function's parameter
    ``param`` — the currency of summaries).  ``tag`` distinguishes raw
    row/count data from broad-exception text, which feed different rules.
    """

    kind: str            # "source" | "param"
    tag: str = TAG_DATA
    param: int = -1
    trace: "tuple[TraceHop, ...]" = ()

    def with_hop(self, hop: TraceHop) -> "Taint":
        if len(self.trace) >= MAX_TRACE_HOPS:
            return self
        return Taint(self.kind, self.tag, self.param, self.trace + (hop,))

    def sort_key(self):
        return (self.kind, self.tag, self.param, len(self.trace),
                tuple((h.path, h.line, h.note) for h in self.trace))


@dataclass(frozen=True)
class SinkHit:
    """A taint reaching a sink — a finding (source-kind) or a summary entry
    (param-kind, reported at whichever caller supplies tainted data)."""

    channel: str
    node_line: int
    node_col: int
    taint: Taint
    hop: TraceHop  # the sink hop itself


@dataclass(frozen=True)
class FunctionSummary:
    """Context-insensitive effect of calling one function."""

    #: Taints of the return value (param-kind entries mean flow-through).
    returns: "frozenset[Taint]" = frozenset()
    #: (param index, channel, hops from param entry to sink incl. sink hop).
    param_sinks: "frozenset[tuple[int, str, tuple[TraceHop, ...]]]" = frozenset()


def fixpoint(step, max_rounds: int = MAX_ROUNDS) -> int:
    """Iterate ``step()`` (returns True when anything changed) to stability.

    The shared driver for taint summaries and the lockset caller-holds-lock
    inference.  Returns the number of rounds taken.
    """
    for i in range(max_rounds):
        if not step():
            return i + 1
    return max_rounds


def _limit(taints: "set[Taint]") -> "frozenset[Taint]":
    if len(taints) <= MAX_TAINTS:
        return frozenset(taints)
    return frozenset(sorted(taints, key=Taint.sort_key)[:MAX_TAINTS])


def _receiver_tail(node: ast.AST) -> str:
    """The innermost receiver name of ``<recv>.attr`` (or '')."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _receiver_tail(node.func)
    return ""


def _const_keys(node: ast.Dict) -> "set[str]":
    return {
        k.value
        for k in node.keys
        if isinstance(k, ast.Constant) and isinstance(k.value, str)
    }


class FlowAnalysis:
    """Whole-tree taint analysis: summaries by fixpoint, then findings.

    Construct once per lint run (the flow rules share one instance through
    the :class:`~repro.analysis.rules.LintContext` cache), then read
    ``sink_hits`` — every source-kind taint that reached a sink, attributed
    to the module/function where source and sink met.
    """

    def __init__(self, modules: "list[Module]", callgraph: CallGraph,
                 config: TaintConfig):
        self.modules = modules
        self.callgraph = callgraph
        self.config = config
        self.summaries: "dict[tuple[str, str], FunctionSummary]" = {}
        #: (module path) -> list of resolved sink hits with their functions
        self.hits: "list[tuple[Module, FunctionInfo, SinkHit]]" = []
        self._ran = False

    # ------------------------------------------------------------------ #

    def run(self) -> None:
        if self._ran:
            return
        self._ran = True
        infos = list(self.callgraph.functions.values())

        def round_() -> bool:
            changed = False
            for info in infos:
                new = self._analyze(info, collect=None)
                key = (info.module.path, info.qualname)
                if self.summaries.get(key) != new:
                    self.summaries[key] = new
                    changed = True
            return changed

        fixpoint(round_)
        # Reporting pass with stable summaries.
        for info in infos:
            hits: "list[SinkHit]" = []
            self._analyze(info, collect=hits)
            for hit in hits:
                self.hits.append((info.module, info, hit))

    # ------------------------------------------------------------------ #
    # per-function transfer
    # ------------------------------------------------------------------ #

    def _analyze(self, info: FunctionInfo,
                 collect: "list[SinkHit] | None") -> FunctionSummary:
        node = info.node
        env: "dict[str, set[Taint]]" = {}
        params = [a.arg for a in (
            list(node.args.posonlyargs) + list(node.args.args)
        )]
        offset = 1 if params and params[0] in ("self", "cls") else 0
        for i, name in enumerate(params[offset:]):
            env[name] = {Taint("param", param=i)}
        state = _State(self, info, env, collect)
        state.exec_stmts(node.body)
        return FunctionSummary(
            returns=_limit(state.returns),
            param_sinks=frozenset(state.param_sinks),
        )


class _State:
    """Mutable walk state for one function body."""

    def __init__(self, analysis: FlowAnalysis, info: FunctionInfo,
                 env: "dict[str, set[Taint]]",
                 collect: "list[SinkHit] | None"):
        self.a = analysis
        self.info = info
        self.env = env
        self.collect = collect
        self.returns: "set[Taint]" = set()
        self.param_sinks: "set[tuple[int, str, tuple[TraceHop, ...]]]" = set()

    @property
    def path(self) -> str:
        return self.info.module.path

    # -- statements ----------------------------------------------------- #

    def exec_stmts(self, stmts) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are their own analysis unit
        if isinstance(stmt, ast.Assign):
            taints = self.eval_expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval_expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taints = self.eval_expr(stmt.value) | self._read_target(stmt.target)
            self._bind(stmt.target, taints, weak=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.Raise):
            self._exec_raise(stmt)
        elif isinstance(stmt, ast.If):
            self.eval_expr(stmt.test)
            self._branch([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taints = self.eval_expr(stmt.iter)
            self._bind(stmt.target, iter_taints)
            # Two passes pick up loop-carried one-step chains.
            self._branch([stmt.body])
            self._branch([stmt.body])
            self.exec_stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval_expr(stmt.test)
            self._branch([stmt.body])
            self._branch([stmt.body])
            self.exec_stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.eval_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints)
            self.exec_stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._branch([stmt.body])
            for handler in stmt.handlers:
                saved = {k: set(v) for k, v in self.env.items()}
                if handler.name:
                    self.env[handler.name] = self._exception_taint(handler)
                self.exec_stmts(handler.body)
                for k, v in saved.items():
                    self.env.setdefault(k, set()).update(v)
            self.exec_stmts(stmt.orelse)
            self.exec_stmts(stmt.finalbody)
        elif isinstance(stmt, (ast.Expr, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval_expr(child)
        # Pass/Import/Global/Nonlocal/Break/Continue: nothing to do.

    def _branch(self, bodies) -> None:
        merged: "dict[str, set[Taint]]" = {
            k: set(v) for k, v in self.env.items()
        }
        base = {k: set(v) for k, v in self.env.items()}
        for body in bodies:
            self.env = {k: set(v) for k, v in base.items()}
            self.exec_stmts(body)
            for k, v in self.env.items():
                merged.setdefault(k, set()).update(v)
        self.env = merged

    def _exception_taint(self, handler: ast.ExceptHandler) -> "set[Taint]":
        """A broadly-caught exception's text may embed raw values."""
        types = []
        t = handler.type
        if isinstance(t, ast.Tuple):
            types = list(t.elts)
        elif t is not None:
            types = [t]
        broad = t is None or any(
            isinstance(x, ast.Name) and x.id in _BROAD_EXCEPTIONS
            for x in types
        )
        if not broad:
            return set()
        hop = TraceHop(
            self.path, handler.lineno,
            "broad `except Exception` binds unredacted exception text",
        )
        return {Taint("source", tag=TAG_EXC, trace=(hop,))}

    def _exec_raise(self, stmt: ast.Raise) -> None:
        if stmt.exc is None:
            return  # bare re-raise keeps the original object: fine
        if isinstance(stmt.exc, ast.Call):
            for arg in list(stmt.exc.args) + [
                k.value for k in stmt.exc.keywords
            ]:
                taints = self.eval_expr(arg)
                self._sink("exception", stmt.exc, taints,
                           "tainted value in a raised exception message")
            self.eval_expr(stmt.exc)
        else:
            self.eval_expr(stmt.exc)

    # -- binding -------------------------------------------------------- #

    def _bind(self, target: ast.AST, taints: "set[Taint]",
              weak: bool = False) -> None:
        if isinstance(target, ast.Name):
            if weak:
                self.env.setdefault(target.id, set()).update(taints)
            else:
                self.env[target.id] = set(taints)
        elif isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            key = f"self.{target.attr}"
            self.env.setdefault(key, set()).update(taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taints, weak=weak)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taints, weak=weak)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                self.env.setdefault(base.id, set()).update(taints)
            elif isinstance(base, ast.Attribute) and \
                    isinstance(base.value, ast.Name) and \
                    base.value.id == "self":
                self.env.setdefault(f"self.{base.attr}", set()).update(taints)

    def _read_target(self, target: ast.AST) -> "set[Taint]":
        if isinstance(target, ast.Name):
            return set(self.env.get(target.id, ()))
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            return set(self.env.get(f"self.{target.attr}", ()))
        return set()

    # -- expressions ---------------------------------------------------- #

    def eval_expr(self, node: ast.expr) -> "set[Taint]":
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Dict):
            return self._eval_dict(node)
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test)
            return self.eval_expr(node.body) | self.eval_expr(node.orelse)
        # Generic: union over child expressions (BinOp, BoolOp, Compare,
        # JoinedStr, Subscript, Tuple, List, Set, Starred, UnaryOp, ...).
        out: "set[Taint]" = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval_expr(child)
        return out

    def _eval_attribute(self, node: ast.Attribute) -> "set[Taint]":
        cfg = self.a.config
        out: "set[Taint]" = set()
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            out |= self.env.get(f"self.{node.attr}", set())
        out |= self.eval_expr(node.value)
        if node.attr in cfg.source_attrs and cfg.source_recv_re.search(
            _receiver_tail(node.value) or ""
        ):
            hop = TraceHop(
                self.path, node.lineno,
                f"source: {_receiver_tail(node.value)}.{node.attr}",
            )
            out = set(out)
            out.add(Taint("source", trace=(hop,)))
        return out

    def _eval_comprehension(self, node) -> "set[Taint]":
        out: "set[Taint]" = set()
        for gen in node.generators:
            taints = self.eval_expr(gen.iter)
            self._bind(gen.target, taints)
            for cond in gen.ifs:
                self.eval_expr(cond)
        if isinstance(node, ast.DictComp):
            out |= self.eval_expr(node.key) | self.eval_expr(node.value)
        else:
            out |= self.eval_expr(node.elt)
        return out

    def _eval_dict(self, node: ast.Dict) -> "set[Taint]":
        out: "set[Taint]" = set()
        keys = _const_keys(node)
        is_envelope = "status" in keys and ({"error", "result", "code"} & keys)
        for key, value in zip(node.keys, node.values):
            if key is not None:
                self.eval_expr(key)
            if value is None:
                continue
            taints = self.eval_expr(value)
            out |= taints
            if is_envelope and taints:
                self._sink(
                    "envelope", value, taints,
                    "tainted value in a response/error envelope",
                )
        return out

    # -- calls ---------------------------------------------------------- #

    def _eval_call(self, node: ast.Call) -> "set[Taint]":
        cfg = self.a.config
        func = node.func
        callee_name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else ""
        )
        arg_nodes = list(node.args) + [k.value for k in node.keywords]
        arg_taints = [self.eval_expr(a) for a in arg_nodes]
        union_args: "set[Taint]" = set()
        for t in arg_taints:
            union_args |= t

        # Sinks first: a sanitizer name can never be a sink in this suite.
        self._check_call_sinks(node, callee_name, arg_nodes, arg_taints)

        # Sanitizer: the returned value is differentially private.
        if callee_name in cfg.sanitizers:
            return set()

        # Source accessor.
        if callee_name in cfg.source_methods and isinstance(
            func, ast.Attribute
        ) and cfg.source_recv_re.search(_receiver_tail(func.value) or ""):
            hop = TraceHop(
                self.path, node.lineno,
                f"source: {_receiver_tail(func.value)}.{callee_name}()",
            )
            return {Taint("source", trace=(hop,))}

        # Resolved callee: substitute its summary.
        info = self.a.callgraph.resolve(
            node, self.info.module, self.info.class_name
        )
        if info is not None:
            return self._apply_summary(node, info, arg_nodes, arg_taints)

        if callee_name in CLEAN_FUNCS:
            return set()
        # Unresolved: conservative pass-through of argument taint, plus the
        # receiver's own taint for method calls (str(x), x.format(...), ...).
        if isinstance(func, ast.Attribute):
            union_args |= self.eval_expr(func.value)
        return union_args

    def _apply_summary(self, node: ast.Call, info: FunctionInfo,
                       arg_nodes, arg_taints) -> "set[Taint]":
        key = (info.module.path, info.qualname)
        summary = self.a.summaries.get(key, FunctionSummary())
        params = [a.arg for a in (
            list(info.node.args.posonlyargs) + list(info.node.args.args)
        )]
        offset = 1 if params and params[0] in ("self", "cls") else 0
        names = params[offset:]

        def taints_of_param(i: int) -> "set[Taint]":
            # Map the callee's param index back to this call's arguments.
            pos = 0
            for arg_node, taints in zip(arg_nodes, arg_taints):
                kw = None
                for k in node.keywords:
                    if k.value is arg_node:
                        kw = k.arg
                        break
                if kw is not None:
                    if i < len(names) and names[i] == kw:
                        return taints
                else:
                    if pos == i:
                        return taints
                    pos += 1
            return set()

        call_hop = TraceHop(
            self.path, node.lineno, f"call: {info.qualname}"
        )
        out: "set[Taint]" = set()
        for t in summary.returns:
            if t.kind == "source":
                out.add(t.with_hop(call_hop))
            else:
                for at in taints_of_param(t.param):
                    out.add(at.with_hop(call_hop))
        for param_idx, channel, hops in summary.param_sinks:
            for at in taints_of_param(param_idx):
                routed = at.with_hop(call_hop)
                for hop in hops:
                    routed = routed.with_hop(hop)
                self._record_hit(channel, node, routed)
        return out

    # -- sinks ---------------------------------------------------------- #

    def _check_call_sinks(self, node: ast.Call, callee_name: str,
                          arg_nodes, arg_taints) -> None:
        cfg = self.a.config
        func = node.func
        recv = _receiver_tail(func.value) if isinstance(func, ast.Attribute) \
            else ""
        channels = cfg.sink_channels

        def flag(channel: str, nodes_and_taints, note: str) -> None:
            for arg_node, taints in nodes_and_taints:
                self._sink(channel, arg_node, taints, note)

        pairs = list(zip(arg_nodes, arg_taints))
        if callee_name in channels.get("log", ()) and (
            recv.lower().endswith(("log", "logger", "logging"))
            or recv in ("logging",)
        ):
            flag("log", pairs, "tainted value in a log call")
        if callee_name in channels.get("metric-label", ()):
            for k, (arg_node, taints) in zip(node.keywords, pairs[len(node.args):]):
                if k.arg == "labels":
                    flag("metric-label", [(arg_node, taints)],
                         "tainted value used as a metrics label")
        if callee_name in channels.get("journal", ()) and (
            "journal" in recv.lower() or "store" in recv.lower()
            or "ledger" in recv.lower()
        ):
            flag("journal", pairs, "tainted value in a journal record")
        if callee_name in channels.get("frame", ()):
            flag("frame", pairs, "tainted value in a frame/HTTP payload")
        if callee_name in channels.get("trace", ()):
            # attach_trace(envelope, trace_id): the trace id is the sink.
            flag("trace", pairs[1:], "tainted value attached to a trace")

    def _sink(self, channel: str, node: ast.AST, taints: "set[Taint]",
              note: str) -> None:
        for taint in taints:
            hop = TraceHop(
                self.path, getattr(node, "lineno", 1), f"sink: {note}"
            )
            self._record_hit(channel, node, taint.with_hop(hop))

    def _record_hit(self, channel: str, node: ast.AST, taint: Taint) -> None:
        if taint.kind == "param":
            # Report at the caller that supplies tainted data: publish the
            # path from our parameter to this sink in the summary.
            self.param_sinks.add((taint.param, channel, taint.trace))
            return
        if self.collect is not None:
            self.collect.append(
                SinkHit(
                    channel=channel,
                    node_line=getattr(node, "lineno", 1),
                    node_col=getattr(node, "col_offset", 0),
                    taint=taint,
                    hop=taint.trace[-1] if taint.trace else TraceHop(
                        self.path, getattr(node, "lineno", 1), "sink"
                    ),
                )
            )
