"""Module loading and inline-suppression parsing for ``repro lint``.

The loader walks the given paths, parses every ``*.py`` with the stdlib
``ast`` module (nothing is ever imported or executed — linting a file with
import-time side effects is safe), and extracts inline suppressions from the
comment stream via ``tokenize``.

Suppression grammar
-------------------

::

    # repro-lint: disable=<rule>[,<rule>...] — <reason>

* The separator between the rule list and the reason is an em-dash (``—``)
  or a spaced double hyphen (`` -- ``).  The spaced form is required for
  the ASCII spelling because rule names themselves contain single hyphens.
* The **reason is mandatory**: a disable with a missing/empty reason is
  itself a ``bad-suppression`` finding (error severity), so the CI gate
  can assert "zero unexplained suppressions" by asserting zero findings.
* Rule names must match ``[a-z][a-z0-9]*(-[a-z0-9]+)*``; anything else in
  the rule list is a ``bad-suppression`` finding.
* Placement: a suppression covers findings on its own line; a comment that
  stands alone on a line additionally covers the next line.  (Put the
  disable at the end of the offending line, or on the line directly above.)

:func:`render_suppression` is the exact inverse of
:func:`parse_suppression_comment` — the round-trip the property tests in
``tests/test_lint.py`` pin with hypothesis.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize

from dataclasses import dataclass, field

from .model import Finding, SEVERITY_ERROR

#: Legal rule-name grammar (single hyphens only — the ASCII separator is a
#: *spaced* double hyphen precisely so it can never be confused with a name).
RULE_NAME_RE = re.compile(r"^[a-z][a-z0-9]*(?:-[a-z0-9]+)*$")

_MARKER_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_DISABLE_RE = re.compile(
    r"^disable=(?P<rules>[^\s].*?)\s*(?:—|\s--\s)\s*(?P<reason>.*)$",
    re.DOTALL,
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    standalone: bool  # nothing but the comment on its line -> covers line+1

    def covers(self, line: int) -> bool:
        return line == self.line or (self.standalone and line == self.line + 1)


@dataclass
class Module:
    """One parsed source file plus its comment-derived suppression table."""

    path: str
    source: str
    tree: ast.AST
    suppressions: tuple[Suppression, ...] = ()
    bad_suppressions: tuple[Finding, ...] = ()
    _lines: "list[str] | None" = field(default=None, repr=False)

    @property
    def lines(self) -> "list[str]":
        if self._lines is None:
            self._lines = self.source.splitlines()
        return self._lines

    def suppression_for(self, rule: str, line: int) -> "Suppression | None":
        for sup in self.suppressions:
            if rule in sup.rules and sup.covers(line):
                return sup
        return None


def render_suppression(rules: "tuple[str, ...] | list[str]", reason: str) -> str:
    """The canonical comment for suppressing ``rules`` with ``reason``.

    Inverse of :func:`parse_suppression_comment`; the hypothesis round-trip
    test generates arbitrary legal rule lists and reasons through this pair.
    """
    return f"# repro-lint: disable={','.join(rules)} — {reason}"


def parse_suppression_comment(
    comment: str,
) -> "tuple[tuple[str, ...], str] | str | None":
    """Parse one comment string.

    Returns ``None`` when the comment is not a repro-lint marker at all,
    an error-message ``str`` when it is a malformed marker, and a
    ``(rules, reason)`` tuple on success.
    """
    marker = _MARKER_RE.search(comment)
    if marker is None:
        return None
    body = marker.group("body").strip()
    m = _DISABLE_RE.match(body)
    if m is None:
        if body.startswith("disable"):
            return (
                "suppression is missing its mandatory reason — write "
                "'# repro-lint: disable=<rule> — <why this is safe>'"
            )
        return f"unknown repro-lint directive {body.split('=')[0]!r}"
    rules = tuple(r.strip() for r in m.group("rules").split(","))
    for r in rules:
        if not RULE_NAME_RE.match(r):
            return f"illegal rule name {r!r} in suppression"
    reason = m.group("reason").strip()
    if not reason:
        return (
            "suppression is missing its mandatory reason — write "
            "'# repro-lint: disable=<rule> — <why this is safe>'"
        )
    return rules, reason


def parse_suppressions(
    path: str, source: str
) -> "tuple[tuple[Suppression, ...], tuple[Finding, ...]]":
    """Extract every suppression (and every malformed one) from a file."""
    sups: list[Suppression] = []
    bad: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return (), ()  # the ast parse reports the syntax error
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        parsed = parse_suppression_comment(tok.string)
        if parsed is None:
            continue
        line, col = tok.start
        if isinstance(parsed, str):
            bad.append(
                Finding(
                    path=path,
                    line=line,
                    col=col,
                    rule="bad-suppression",
                    message=parsed,
                    severity=SEVERITY_ERROR,
                )
            )
            continue
        rules, reason = parsed
        prefix = tok.line[: col] if tok.line else ""
        sups.append(
            Suppression(
                line=line,
                rules=rules,
                reason=reason,
                standalone=not prefix.strip(),
            )
        )
    return tuple(sups), tuple(bad)


def load_module(path: str) -> "tuple[Module | None, Finding | None]":
    """Parse one file; a syntax error becomes a ``parse-error`` finding."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            path=path,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 0),
            rule="parse-error",
            message=f"file does not parse: {exc.msg}",
            severity=SEVERITY_ERROR,
        )
    sups, bad = parse_suppressions(path, source)
    return Module(path=path, source=source, tree=tree,
                  suppressions=sups, bad_suppressions=bad), None


def iter_python_files(paths: "list[str]") -> "list[str]":
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    out: list[str] = []
    seen: set[str] = set()
    for p in paths:
        if os.path.isfile(p):
            candidates = [p]
        elif os.path.isdir(p):
            candidates = []
            for root, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                candidates.extend(
                    os.path.join(root, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        else:
            raise FileNotFoundError(f"no such file or directory: {p!r}")
        for c in candidates:
            norm = os.path.normpath(c)
            if norm not in seen and norm.endswith(".py"):
                seen.add(norm)
                out.append(norm)
    return sorted(out)
