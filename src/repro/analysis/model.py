"""Finding model and the stable JSON report schema of ``repro lint``.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects with a total ordering (path, line, col, rule) so reports
are deterministic regardless of rule-execution order — the property the CI
gate's archived ``LINT_report.json`` diffs rely on.

JSON report schema (``--format=json``), version 1 — **stable**: fields are
only ever added, never renamed or removed, so downstream tooling can pin on
``version``::

    {
      "version": 1,
      "tool": "repro-lint",
      "files": <int: python files analysed>,
      "findings": [            # active findings, sorted
        {"rule": str, "path": str, "line": int, "col": int,
         "severity": "error"|"warning", "message": str}
      ],
      "suppressed": [          # findings silenced by an inline disable
        {... same fields ..., "reason": str}
      ],
      "summary": {
        "total": <int: len(findings)>,
        "suppressed": <int: len(suppressed)>,
        "by_rule": {rule: count, ...},       # active findings only
        "rules_run": [rule, ...]             # every rule that executed
      }
    }

The CI gate asserts ``summary.total == 0`` and that every entry in
``suppressed`` carries a non-empty ``reason`` (the linter itself refuses
reason-less suppressions with a ``bad-suppression`` finding, so the second
assertion is belt-and-braces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: Bump only when a field is renamed/removed (never done lightly; additions
#: keep the version).
JSON_SCHEMA_VERSION = 1

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form: ``path:line:col: rule severity: message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )


@dataclass(frozen=True)
class SuppressedFinding:
    """A finding silenced by an inline ``# repro-lint: disable=`` comment."""

    finding: Finding
    reason: str

    def as_dict(self) -> dict:
        out = self.finding.as_dict()
        out["reason"] = self.reason
        return out


@dataclass(frozen=True)
class LintResult:
    """The outcome of one lint run over a set of paths."""

    findings: tuple[Finding, ...]
    suppressed: tuple[SuppressedFinding, ...]
    files: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def report(self) -> dict:
        by_rule: dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro-lint",
            "files": self.files,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [s.as_dict() for s in self.suppressed],
            "summary": {
                "total": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": by_rule,
                "rules_run": list(self.rules_run),
            },
        }


def sort_findings(findings: Iterable[Finding]) -> tuple[Finding, ...]:
    """Deterministic report order: (path, line, col, rule)."""
    return tuple(sorted(findings))
