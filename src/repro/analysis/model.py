"""Finding model and the stable JSON report schema of ``repro lint``.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects with a total ordering (path, line, col, rule) so reports
are deterministic regardless of rule-execution order — the property the CI
gate's archived ``LINT_report.json`` diffs rely on.

JSON report schema (``--format=json``), version 2 — **stable**: fields are
only ever added, never renamed or removed, so downstream tooling can pin on
``version``.  Version 2 added the per-finding ``trace`` array (the flow
engine's source → hops → sink path; empty for AST-engine findings); every
v1 field is untouched, so a v1 consumer reads a v2 report unchanged — the
compatibility the ``test_v1_consumer_reads_v2_report`` test pins::

    {
      "version": 2,
      "tool": "repro-lint",
      "files": <int: python files analysed>,
      "findings": [            # active findings, sorted
        {"rule": str, "path": str, "line": int, "col": int,
         "severity": "error"|"warning", "message": str,
         "trace": [            # v2: flow path, source first, sink last
           {"path": str, "line": int, "note": str}
         ]}
      ],
      "suppressed": [          # findings silenced by an inline disable
        {... same fields ..., "reason": str}
      ],
      "summary": {
        "total": <int: len(findings)>,
        "suppressed": <int: len(suppressed)>,
        "by_rule": {rule: count, ...},       # active findings only
        "rules_run": [rule, ...]             # every rule that executed
      }
    }

The CI gate asserts ``summary.total == 0`` and that every entry in
``suppressed`` carries a non-empty ``reason`` (the linter itself refuses
reason-less suppressions with a ``bad-suppression`` finding, so the second
assertion is belt-and-braces).
"""

from __future__ import annotations

import re

from dataclasses import dataclass, field
from typing import Iterable

#: Bump when the schema changes shape.  v2 (flow traces) is purely additive:
#: v1 consumers keep working — see the module docstring.
JSON_SCHEMA_VERSION = 2

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True)
class TraceHop:
    """One step of a flow trace: where a tainted value was, and why.

    ``note`` is free text (``source: counts.cluster_size``, ``call:
    _describe``, ``sink: error envelope``) restricted only by the render
    grammar: no newlines and no literal ``" -> "`` separator.
    """

    path: str
    line: int
    note: str

    def as_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "note": self.note}

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.note}"


#: Separator between hops in the one-line text rendering of a trace.
TRACE_SEP = " -> "

#: Non-greedy path: the *first* ``:<digits>: `` splits path from note, so a
#: free-text note may itself contain that motif (paths never do — they have
#: no spaces).
_HOP_RE = re.compile(r"^(?P<path>.+?):(?P<line>\d+): (?P<note>.*)$", re.DOTALL)


def render_trace(hops: "Iterable[TraceHop]") -> str:
    """One-line text form of a flow trace: ``path:line: note -> ...``.

    Exact inverse of :func:`parse_trace` for hops whose ``note`` contains
    neither a newline nor the literal ``" -> "`` separator, and whose
    ``path`` contains no ``:<digits>: `` motif (the grammar the hypothesis
    round-trip test pins).
    """
    return TRACE_SEP.join(h.render() for h in hops)


def parse_trace(text: str) -> "tuple[TraceHop, ...]":
    """Parse :func:`render_trace` output back into hops.

    Raises ``ValueError`` on malformed hops; an empty string is the empty
    trace.
    """
    if not text:
        return ()
    hops = []
    for part in text.split(TRACE_SEP):
        m = _HOP_RE.match(part)
        if m is None:
            raise ValueError(f"malformed trace hop {part!r}")
        hops.append(
            TraceHop(
                path=m.group("path"),
                line=int(m.group("line")),
                note=m.group("note"),
            )
        )
    return tuple(hops)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``trace`` (v2) is the flow engine's evidence path — source first, sink
    last; empty for purely syntactic findings.  It is excluded from the
    ordering so report determinism keeps depending only on the location.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR
    trace: "tuple[TraceHop, ...]" = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "trace": [h.as_dict() for h in self.trace],
        }

    def render(self) -> str:
        """The one-line text form: ``path:line:col: rule severity: message``.

        Findings with a flow trace append it on an indented second line.
        """
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )
        if self.trace:
            return f"{head}\n    trace: {render_trace(self.trace)}"
        return head


@dataclass(frozen=True)
class SuppressedFinding:
    """A finding silenced by an inline ``# repro-lint: disable=`` comment."""

    finding: Finding
    reason: str

    def as_dict(self) -> dict:
        out = self.finding.as_dict()
        out["reason"] = self.reason
        return out


@dataclass(frozen=True)
class LintResult:
    """The outcome of one lint run over a set of paths."""

    findings: tuple[Finding, ...]
    suppressed: tuple[SuppressedFinding, ...]
    files: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def report(self) -> dict:
        by_rule: dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro-lint",
            "files": self.files,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [s.as_dict() for s in self.suppressed],
            "summary": {
                "total": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": by_rule,
                "rules_run": list(self.rules_run),
            },
        }


def sort_findings(findings: Iterable[Finding]) -> tuple[Finding, ...]:
    """Deterministic report order: (path, line, col, rule)."""
    return tuple(sorted(findings))
