"""Diff-scoped linting: changed files plus their call-graph dependents.

``repro lint --diff <base-ref>`` asks git which ``*.py`` files changed
since ``base-ref``, then widens that set with every analysed module that
can *reach* a changed module through the intra-package call graph or an
import edge — the modules whose findings could change because a callee
changed.  The widened set is what gets linted; everything else is skipped.

Without a usable git (no repository, unknown ref, no binary), the scope
silently falls back to the full tree — a diff run must never be *weaker*
than a full run because the environment is odd; it may only be faster.
The returned note says which of the two happened so the CLI can surface
it on stderr.
"""

from __future__ import annotations

import ast
import os
import subprocess

from .callgraph import build_callgraph
from .loader import iter_python_files, load_module


def _git(args: "list[str]", cwd: str) -> "str | None":
    try:
        proc = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def changed_python_files(base_ref: str, cwd: str = ".") -> "set[str] | None":
    """Absolute paths of ``*.py`` files changed vs ``base_ref`` (or None).

    Includes uncommitted changes (``git diff`` against the ref covers both
    committed and working-tree edits).  ``None`` means git could not
    answer — callers fall back to the full tree.
    """
    top = _git(["rev-parse", "--show-toplevel"], cwd)
    if top is None:
        return None
    root = top.strip()
    out = _git(["diff", "--name-only", base_ref, "--"], cwd)
    if out is None:
        return None
    return {
        os.path.abspath(os.path.join(root, line.strip()))
        for line in out.splitlines()
        if line.strip().endswith(".py")
    }


def _module_dependencies(modules, graph) -> "dict[str, set[str]]":
    """caller module path -> callee/imported module paths."""
    deps: "dict[str, set[str]]" = {}
    for info in graph.functions.values():
        mod = info.module
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            callee = graph.resolve(node, mod, info.class_name)
            if callee is not None and callee.module.path != mod.path:
                deps.setdefault(mod.path, set()).add(callee.module.path)
    # Import edges catch dependencies the call resolver is conservative
    # about (constants, classes, decorators).
    for path, aliases in graph.module_aliases.items():
        for dotted in aliases.values():
            target = graph.modules_by_dotted.get(dotted)
            if target is not None and target != path:
                deps.setdefault(path, set()).add(target)
    return deps


def select_diff_paths(
    paths: "list[str]", base_ref: str, cwd: str = "."
) -> "tuple[list[str], str]":
    """The file subset to lint for ``--diff base_ref``, plus a scope note."""
    files = iter_python_files(paths)
    changed = changed_python_files(base_ref, cwd)
    if changed is None:
        return files, (
            f"--diff {base_ref}: git unavailable or unknown ref — "
            "falling back to the full tree"
        )

    modules = []
    for path in files:
        module, _err = load_module(path)
        if module is not None:
            modules.append(module)
    graph = build_callgraph(modules)
    deps = _module_dependencies(modules, graph)
    dependents: "dict[str, set[str]]" = {}
    for src, dsts in deps.items():
        for dst in dsts:
            dependents.setdefault(dst, set()).add(src)

    selected = {p for p in files if os.path.abspath(p) in changed}
    frontier = list(selected)
    while frontier:
        cur = frontier.pop()
        for dep in dependents.get(cur, ()):
            if dep not in selected:
                selected.add(dep)
                frontier.append(dep)

    chosen = sorted(selected)
    return chosen, (
        f"--diff {base_ref}: {len(chosen)}/{len(files)} files in scope "
        "(changed + call-graph dependents)"
    )
