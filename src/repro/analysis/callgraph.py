"""Intra-package call-graph construction for interprocedural lint rules.

Static DP invariants are rarely confined to one function body: the PR-4
charge-after-release bug would have survived a purely local checker the
moment ``fit`` delegated its noise draws to a ``_release_counts`` helper.
This module indexes every function/method definition across the analysed
modules and resolves the call shapes that matter inside one package:

* ``name(...)``        — a module-level function in the same module, or (when
  the name is imported via ``from .x import name`` / unique package-wide) a
  function in a sibling module;
* ``self.name(...)``   — a method of the lexically enclosing class;
* ``Class.name(...)``  — an explicitly class-qualified method (same module
  first, else the unique definition package-wide);
* ``super().name(...)`` — the nearest base-class definition of ``name``,
  walked through the indexed class hierarchy (depth-bounded);
* ``pkg.mod.fn(...)``  — a module-qualified function, resolved through the
  importing module's ``import pkg.mod [as m]`` / ``from pkg import mod``
  alias table against the dotted names of the analysed files.

Resolution is deliberately conservative: calls on arbitrary objects
(``mech.release(...)``, ``topk.select(...)``) are *not* resolved here —
rules classify those by name heuristics instead — and an ambiguous bare
name (defined in several sibling modules, none imported) resolves to
nothing rather than to a guess.  Rules follow resolved edges a bounded
number of hops (see ``rules.py``); the flow engine (``analysis/flow``)
iterates summaries over the full graph to a fixpoint.
"""

from __future__ import annotations

import ast
import os

from dataclasses import dataclass, field

from .loader import Module

#: How far up a class hierarchy ``super().m(...)`` resolution will walk.
_MRO_DEPTH = 8


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, with enough context to recurse."""

    module: Module
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    qualname: str  # "func" or "Class.method"
    class_name: "str | None"

    @property
    def name(self) -> str:
        return self.node.name


def module_dotted_suffixes(path: str) -> "list[str]":
    """Every dotted name a file path can be imported as.

    ``src/repro/privacy/budget.py`` -> ``["budget", "privacy.budget",
    "repro.privacy.budget", "src.repro.privacy.budget"]`` — callers match
    the longest suffix they know, so the graph never needs to guess where
    the package root sits on disk.
    """
    norm = path.replace("\\", "/")
    if norm.endswith(".py"):
        norm = norm[: -len(".py")]
    parts = [p for p in norm.split("/") if p not in ("", ".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return [".".join(parts[i:]) for i in range(len(parts) - 1, -1, -1)]


@dataclass
class CallGraph:
    """Index of definitions plus the import tables needed to resolve calls."""

    #: (module path, qualname) -> definition
    functions: "dict[tuple[str, str], FunctionInfo]" = field(default_factory=dict)
    #: bare name -> every definition with that name (any module, incl. methods)
    by_name: "dict[str, list[FunctionInfo]]" = field(default_factory=dict)
    #: module path -> {local name: imported function name} for
    #: ``from <anywhere> import name [as alias]`` statements.
    imports: "dict[str, dict[str, str]]" = field(default_factory=dict)
    #: module path -> {local name: dotted module name} for
    #: ``import pkg.mod [as m]`` / ``from pkg import mod`` statements.
    module_aliases: "dict[str, dict[str, str]]" = field(default_factory=dict)
    #: dotted module suffix -> path (None when ambiguous across files).
    modules_by_dotted: "dict[str, str | None]" = field(default_factory=dict)
    #: class name -> [(module path, ClassDef)] for every class definition.
    classes: "dict[str, list[tuple[str, ast.ClassDef]]]" = field(
        default_factory=dict
    )
    #: (module path, class name) -> base-class name expressions (as strings).
    class_bases: "dict[tuple[str, str], tuple[str, ...]]" = field(
        default_factory=dict
    )

    def add(self, info: FunctionInfo) -> None:
        self.functions[(info.module.path, info.qualname)] = info
        self.by_name.setdefault(info.name, []).append(info)

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #

    def resolve(
        self,
        call: ast.Call,
        module: Module,
        class_name: "str | None",
    ) -> "FunctionInfo | None":
        """Resolve a call node to a definition, or ``None`` when unknown."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(func.id, module)
        if isinstance(func, ast.Attribute):
            value = func.value
            # self.method(...)
            if (
                isinstance(value, ast.Name)
                and value.id == "self"
                and class_name is not None
            ):
                info = self.functions.get(
                    (module.path, f"{class_name}.{func.attr}")
                )
                if info is not None:
                    return info
                # Inherited: fall back to the base-class chain.
                return self._resolve_in_bases(
                    module.path, class_name, func.attr, _MRO_DEPTH
                )
            # super().method(...)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "super"
                and class_name is not None
            ):
                return self._resolve_in_bases(
                    module.path, class_name, func.attr, _MRO_DEPTH
                )
            # ClassName.method(...)
            if isinstance(value, ast.Name) and value.id in self.classes:
                return self._resolve_class_method(value.id, func.attr, module)
            # pkg.mod.fn(...) via the importing module's alias table.
            chain = _name_chain(func)
            if len(chain) >= 2:
                return self._resolve_module_qualified(chain, module)
        return None

    def _resolve_bare(
        self, name: str, module: Module
    ) -> "FunctionInfo | None":
        # Same module first.
        info = self.functions.get((module.path, name))
        if info is not None:
            return info
        # An explicitly imported name, or a package-wide unique one.
        target = self.imports.get(module.path, {}).get(name, name)
        candidates = [
            f for f in self.by_name.get(target, ()) if f.class_name is None
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _resolve_class_method(
        self, cls: str, method: str, module: Module
    ) -> "FunctionInfo | None":
        info = self.functions.get((module.path, f"{cls}.{method}"))
        if info is not None:
            return info
        candidates = [
            f
            for f in self.by_name.get(method, ())
            if f.class_name == cls
        ]
        if len(candidates) == 1:
            return candidates[0]
        # Defined on a base of the (unique) class definition.
        defs = self.classes.get(cls, ())
        if len(defs) == 1:
            return self._resolve_in_bases(defs[0][0], cls, method, _MRO_DEPTH)
        return None

    def _resolve_in_bases(
        self, path: str, cls: str, method: str, depth: int
    ) -> "FunctionInfo | None":
        if depth <= 0:
            return None
        for base in self.class_bases.get((path, cls), ()):
            base_name = base.rsplit(".", 1)[-1]
            defs = self.classes.get(base_name, ())
            # Same-module base first, else a package-wide unique definition.
            located = [d for d in defs if d[0] == path] or (
                defs if len(defs) == 1 else ()
            )
            for base_path, _node in located:
                info = self.functions.get((base_path, f"{base_name}.{method}"))
                if info is not None:
                    return info
                info = self._resolve_in_bases(
                    base_path, base_name, method, depth - 1
                )
                if info is not None:
                    return info
        return None

    def _resolve_module_qualified(
        self, chain: "list[str]", module: Module
    ) -> "FunctionInfo | None":
        aliases = self.module_aliases.get(module.path, {})
        fn = chain[-1]
        qualifier = chain[:-1]
        head = aliases.get(qualifier[0])
        if head is not None:
            # `import a.b.c as m` binds only `m`; `import a.b.c` binds `a`
            # and usage spells the full path — expand the head alias.
            dotted = ".".join([head] + qualifier[1:])
        else:
            dotted = ".".join(qualifier)
        path = self.modules_by_dotted.get(dotted)
        if path is None:
            return None
        return self.functions.get((path, fn))


def _name_chain(node: ast.AST) -> "list[str]":
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _base_name_str(node: ast.AST) -> "str | None":
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        chain = _name_chain(node)
        return ".".join(chain) if chain else None
    return None


def build_callgraph(modules: "list[Module]") -> CallGraph:
    graph = CallGraph()
    # Dotted-name index first, so alias tables can be checked against it.
    for module in modules:
        for dotted in module_dotted_suffixes(module.path):
            if dotted in graph.modules_by_dotted and \
                    graph.modules_by_dotted[dotted] != module.path:
                graph.modules_by_dotted[dotted] = None  # ambiguous suffix
            else:
                graph.modules_by_dotted[dotted] = module.path
    known_paths = {os.path.normpath(m.path): m.path for m in modules}
    for module in modules:
        table: dict[str, str] = {}
        mod_table: dict[str, str] = {}
        pkg_dir = os.path.dirname(module.path).replace("\\", "/")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = alias.name
                    # `from pkg import mod` / `from . import mod`: the bound
                    # name may itself be a module of the analysed set.
                    if node.level and not node.module:
                        sibling = known_paths.get(
                            os.path.normpath(f"{pkg_dir}/{alias.name}.py")
                        )
                        if sibling is not None:
                            mod_table[alias.asname or alias.name] = \
                                module_dotted_suffixes(sibling)[-1]
                    elif node.module:
                        dotted = f"{node.module}.{alias.name}"
                        if graph.modules_by_dotted.get(dotted):
                            mod_table[alias.asname or alias.name] = dotted
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        mod_table[alias.asname] = alias.name
                    else:
                        # `import a.b.c` binds `a`; usage spells a.b.c.fn.
                        head = alias.name.split(".")[0]
                        mod_table.setdefault(head, head)
        graph.imports[module.path] = table
        graph.module_aliases[module.path] = mod_table
        for node in module.tree.body:
            _index_scope(graph, module, node, class_name=None)
    return graph


def _index_scope(
    graph: CallGraph, module: Module, node: ast.AST, class_name: "str | None"
) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        qual = f"{class_name}.{node.name}" if class_name else node.name
        graph.add(FunctionInfo(module, node, qual, class_name))
        # Nested defs are not indexed: they are closures, not package API,
        # and resolving them would need scope analysis the rules don't.
    elif isinstance(node, ast.ClassDef):
        graph.classes.setdefault(node.name, []).append((module.path, node))
        bases = tuple(
            b for b in (_base_name_str(base) for base in node.bases)
            if b is not None
        )
        graph.class_bases[(module.path, node.name)] = bases
        for child in node.body:
            _index_scope(graph, module, child, class_name=node.name)
