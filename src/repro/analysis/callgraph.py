"""Intra-package call-graph construction for interprocedural lint rules.

Static DP invariants are rarely confined to one function body: the PR-4
charge-after-release bug would have survived a purely local checker the
moment ``fit`` delegated its noise draws to a ``_release_counts`` helper.
This module indexes every function/method definition across the analysed
modules and resolves the two call shapes that matter inside one package:

* ``name(...)``      — a module-level function in the same module, or (when
  the name is imported via ``from .x import name`` / unique package-wide) a
  function in a sibling module;
* ``self.name(...)`` — a method of the lexically enclosing class.

Resolution is deliberately conservative: calls on arbitrary objects
(``mech.release(...)``, ``topk.select(...)``) are *not* resolved here —
rules classify those by name heuristics instead — and an ambiguous bare
name (defined in several sibling modules, none imported) resolves to
nothing rather than to a guess.  Rules follow resolved edges a bounded
number of hops (see ``rules.py``); the graph itself is unbounded.
"""

from __future__ import annotations

import ast

from dataclasses import dataclass, field

from .loader import Module


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, with enough context to recurse."""

    module: Module
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    qualname: str  # "func" or "Class.method"
    class_name: "str | None"

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class CallGraph:
    """Index of definitions plus the import table needed to resolve calls."""

    #: (module path, qualname) -> definition
    functions: "dict[tuple[str, str], FunctionInfo]" = field(default_factory=dict)
    #: bare name -> every definition with that name (any module, incl. methods)
    by_name: "dict[str, list[FunctionInfo]]" = field(default_factory=dict)
    #: module path -> {local name: imported function name} for
    #: ``from <anywhere> import name [as alias]`` statements.
    imports: "dict[str, dict[str, str]]" = field(default_factory=dict)

    def add(self, info: FunctionInfo) -> None:
        self.functions[(info.module.path, info.qualname)] = info
        self.by_name.setdefault(info.name, []).append(info)

    def resolve(
        self,
        call: ast.Call,
        module: Module,
        class_name: "str | None",
    ) -> "FunctionInfo | None":
        """Resolve a call node to a definition, or ``None`` when unknown."""
        func = call.func
        if isinstance(func, ast.Name):
            # Same module first.
            info = self.functions.get((module.path, func.id))
            if info is not None:
                return info
            # An explicitly imported name, or a package-wide unique one.
            target = self.imports.get(module.path, {}).get(func.id, func.id)
            candidates = [
                f for f in self.by_name.get(target, ()) if f.class_name is None
            ]
            if len(candidates) == 1:
                return candidates[0]
            return None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and class_name is not None
        ):
            return self.functions.get(
                (module.path, f"{class_name}.{func.attr}")
            )
        return None


def build_callgraph(modules: "list[Module]") -> CallGraph:
    graph = CallGraph()
    for module in modules:
        table: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        table[alias.asname or alias.name] = alias.name
        graph.imports[module.path] = table
        for node in module.tree.body:
            _index_scope(graph, module, node, class_name=None)
    return graph


def _index_scope(
    graph: CallGraph, module: Module, node: ast.AST, class_name: "str | None"
) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        qual = f"{class_name}.{node.name}" if class_name else node.name
        graph.add(FunctionInfo(module, node, qual, class_name))
        # Nested defs are not indexed: they are closures, not package API,
        # and resolving them would need scope analysis the rules don't.
    elif isinstance(node, ast.ClassDef):
        for child in node.body:
            _index_scope(graph, module, child, class_name=node.name)
