"""The lint engine: load → call-graph → rules → suppressions → report.

:class:`Linter` ties the framework layers together.  One run:

1. expands the requested paths into ``*.py`` files (never importing them);
2. parses each into a :class:`~repro.analysis.loader.Module` — syntax errors
   become ``parse-error`` findings rather than crashes;
3. builds the intra-package call graph once, shared by every rule;
4. runs the selected rules per module;
5. applies inline suppressions: a finding covered by a
   ``# repro-lint: disable=<rule> — <reason>`` comment moves to the
   ``suppressed`` list (with its reason); malformed suppressions and
   suppressions naming unknown rules are themselves ``bad-suppression``
   findings and can never be suppressed — the gate's "zero unexplained
   suppressions" guarantee is enforced by the linter, not by review.

:func:`lint_paths` is the one-call convenience the CLI and the tests use.
"""

from __future__ import annotations

import json

from dataclasses import dataclass, field

from .callgraph import build_callgraph
from .loader import Module, iter_python_files, load_module
from .model import Finding, LintResult, SEVERITY_ERROR, SuppressedFinding, sort_findings
from .rules import ALL_RULES, LintContext, Rule

#: Rules emitted by the framework itself (not suppressible, always known).
FRAMEWORK_RULES = ("parse-error", "bad-suppression")

#: Selectable rule suites.  ``flow`` is imported lazily so a plain AST run
#: never pays for (or depends on) the dataflow engine.
ENGINES = ("ast", "flow", "all")


def _flow_rules() -> "tuple[Rule, ...]":
    from .flow import FLOW_RULES

    return FLOW_RULES


def rules_for_engine(engine: str) -> "tuple[Rule, ...]":
    if engine == "ast":
        return ALL_RULES
    if engine == "flow":
        return _flow_rules()
    if engine == "all":
        return ALL_RULES + _flow_rules()
    raise ValueError(
        f"unknown engine {engine!r} — available: {', '.join(ENGINES)}"
    )


def known_rule_names() -> "set[str]":
    """Every rule name either engine can emit, plus the framework's own.

    Suppression validation uses this cross-suite set regardless of which
    engine is running: a file carrying ``disable=taint-error-envelope`` for
    the flow gate must not be flagged as naming an unknown rule when the
    AST engine lints the same tree.
    """
    return (
        {r.name for r in ALL_RULES}
        | {r.name for r in _flow_rules()}
        | set(FRAMEWORK_RULES)
    )


@dataclass
class Linter:
    """A configured lint run: an engine's rule suite plus a name filter."""

    rules: "tuple[Rule, ...] | None" = None
    only: "tuple[str, ...] | None" = None  # --rule filter (None = all)
    engine: str = "ast"
    _selected: "tuple[Rule, ...]" = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rules is None:
            self.rules = rules_for_engine(self.engine)
        known = {r.name for r in self.rules}
        if self.only is not None:
            unknown = [name for name in self.only if name not in known]
            if unknown:
                raise ValueError(
                    f"unknown rule(s) {', '.join(sorted(unknown))!s} — "
                    f"available: {', '.join(sorted(known))}"
                )
            self._selected = tuple(
                r for r in self.rules if r.name in set(self.only)
            )
        else:
            self._selected = self.rules

    # ------------------------------------------------------------------ #

    def run(self, paths: "list[str]") -> LintResult:
        files = iter_python_files(paths)
        modules: list[Module] = []
        findings: list[Finding] = []
        for path in files:
            module, parse_error = load_module(path)
            if parse_error is not None:
                findings.append(parse_error)
                continue
            modules.append(module)

        ctx = LintContext(modules=modules, callgraph=build_callgraph(modules))
        known_rules = known_rule_names()
        suppressed: list[SuppressedFinding] = []

        for module in modules:
            # Malformed suppressions are findings in their own right …
            findings.extend(module.bad_suppressions)
            # … and so is naming a rule the suite has never heard of
            # (catches typos that would otherwise silently suppress nothing).
            for sup in module.suppressions:
                for name in sup.rules:
                    if name not in known_rules:
                        findings.append(
                            Finding(
                                path=module.path,
                                line=sup.line,
                                col=0,
                                rule="bad-suppression",
                                message=(
                                    f"suppression names unknown rule "
                                    f"{name!r} — available: "
                                    f"{', '.join(sorted(known_rules))}"
                                ),
                                severity=SEVERITY_ERROR,
                            )
                        )
            for rule in self._selected:
                for finding in rule.check(module, ctx):
                    sup = module.suppression_for(finding.rule, finding.line)
                    if sup is not None:
                        suppressed.append(
                            SuppressedFinding(finding=finding, reason=sup.reason)
                        )
                    else:
                        findings.append(finding)

        return LintResult(
            findings=sort_findings(findings),
            suppressed=tuple(
                sorted(suppressed, key=lambda s: s.finding)
            ),
            files=len(files),
            rules_run=tuple(r.name for r in self._selected),
        )


def lint_paths(
    paths: "list[str]",
    only: "tuple[str, ...] | None" = None,
    engine: str = "ast",
) -> LintResult:
    """Run the selected engine's (optionally filtered) suite over ``paths``."""
    return Linter(only=only, engine=engine).run(paths)


# --------------------------------------------------------------------------- #
# output formats
# --------------------------------------------------------------------------- #

def format_text(result: LintResult) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines = [f.render() for f in result.findings]
    for s in result.suppressed:
        lines.append(f"{s.finding.render()}  [suppressed: {s.reason}]")
    noun = "file" if result.files == 1 else "files"
    lines.append(
        f"{len(result.findings)} finding(s), {len(result.suppressed)} "
        f"suppressed, {result.files} {noun} checked"
    )
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """The stable schema-v1 JSON report (see ``model.py`` for the contract)."""
    return json.dumps(result.report(), indent=2, sort_keys=False)
