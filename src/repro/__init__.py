"""DPClustX — Differentially Private Explanations for Clusters (SIGMOD 2025).

A full reproduction of Gilad, Milo, Razmadze & Zadicario's framework for
histogram-based explanations of black-box clustering results under pure
epsilon-differential privacy, including every substrate it relies on
(tabular datasets with finite domains, DP primitives, five clustering
algorithms, synthetic stand-ins for the paper's datasets) and the three
baselines of its experimental study.

Quickstart::

    from repro import DPClustX, KMeans, diabetes_like, describe

    data = diabetes_like(n_rows=20_000)
    clustering = KMeans(n_clusters=5).fit(data, rng=0)
    explanation = DPClustX().explain(data, clustering, rng=0)
    print(explanation.render())
    print(describe(explanation))
"""

from .baselines import DPNaive, DPTabEE, TabEE
from .clustering import (
    Agglomerative,
    ClusteringFunction,
    DPKMeans,
    DPKModes,
    GaussianMixture,
    KMeans,
    KModes,
)
from .core import (
    AttributeCombination,
    ClusteredCounts,
    CountsStack,
    DPClustX,
    GlobalExplanation,
    MultiDPClustX,
    ScoringEngine,
    SingleClusterExplanation,
    Weights,
    describe,
    scoring_engine,
    select_candidates,
)
from .dataset import Attribute, Dataset, Schema
from .evaluation import QualityEvaluator, mae, quality
from .privacy import (
    ExplanationBudget,
    ExponentialMechanism,
    GeometricHistogram,
    LaplaceHistogram,
    OneShotTopK,
    PrivacyAccountant,
)
from .pipeline import ClusteringSpec, PipelineResult, PrivatePipeline
from .session import PrivateAnalysisSession
from .synth import census_like, diabetes_like, stackoverflow_like

__version__ = "1.0.0"

__all__ = [
    "DPNaive",
    "DPTabEE",
    "TabEE",
    "Agglomerative",
    "ClusteringFunction",
    "DPKMeans",
    "DPKModes",
    "PrivateAnalysisSession",
    "ClusteringSpec",
    "PipelineResult",
    "PrivatePipeline",
    "GaussianMixture",
    "KMeans",
    "KModes",
    "AttributeCombination",
    "ClusteredCounts",
    "CountsStack",
    "DPClustX",
    "GlobalExplanation",
    "MultiDPClustX",
    "ScoringEngine",
    "SingleClusterExplanation",
    "Weights",
    "describe",
    "scoring_engine",
    "select_candidates",
    "Attribute",
    "Dataset",
    "Schema",
    "QualityEvaluator",
    "mae",
    "quality",
    "ExplanationBudget",
    "ExponentialMechanism",
    "GeometricHistogram",
    "LaplaceHistogram",
    "OneShotTopK",
    "PrivacyAccountant",
    "census_like",
    "diabetes_like",
    "stackoverflow_like",
    "__version__",
]
