"""Diabetes-like synthetic dataset (UCI Diabetes 130-US Hospitals stand-in).

The real dataset [7] has 101,766 tuples and 47 attributes after the paper's
preprocessing (Appendix C): numeric attributes binned, ICD codes mapped to
diagnostic categories, domain sizes from 2 to 39.  This generator reproduces
those shape parameters and plants the clinical signal attributes the paper's
figures highlight (``lab_proc``, ``time_in_hospital``, ``num_medications``,
``age``), so Example 1.1 / Figure 2a style explanations emerge naturally.
"""

from __future__ import annotations

import numpy as np

from ..dataset.schema import binned_domain
from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng
from .generator import PlantedClusterGenerator, build_generator, generic_domain

N_ROWS_PAPER = 101_766
N_ATTRIBUTES = 47

_DIAG_CATEGORIES = (
    "Circulatory",
    "Respiratory",
    "Digestive",
    "Diabetes",
    "Injury",
    "Musculoskeletal",
    "Genitourinary",
    "Neoplasms",
    "Other",
)

_MEDICAL_SPECIALTIES = (
    "General Practice",
    "Surgery",
    "Internal Medicine",
    "Cardiology",
    "Emergency",
    "Family Medicine",
    "Orthopedics",
    "Psychiatry",
    "Radiology",
    "Other",
)


def diabetes_generator(
    n_groups: int = 5, seed: int | np.random.Generator | None = 7
) -> PlantedClusterGenerator:
    """Build the Diabetes-like generator (47 attributes, domains 2-39)."""
    rng = ensure_rng(seed)
    lab_proc_bins = binned_domain([0, 10, 20, 30, 40, 50, 60, 70, 80], fmt=".0f")
    med_bins = binned_domain([0, 5, 10, 15, 20, 25, 30, 40, 50, 60], fmt=".0f")
    age_bins = binned_domain(
        [20, 30, 40, 50, 60, 70, 80, 90, 100], closed_last=True, fmt=".0f"
    )
    time_hosp = tuple(str(i) for i in range(1, 11))

    signal_specs = [
        ("lab_proc", lab_proc_bins),  # 8 bins, Figure 2a
        ("time_in_hospital", time_hosp),  # 10 values, Figure 4
        ("num_medications", med_bins),  # 9 bins, Example 5.2
        ("age", age_bins),  # 8 bins, Figure 4
        ("diag_1", _DIAG_CATEGORIES),
        ("discharge_disp", generic_domain("disp", 6)),  # Example 5.4
        ("num_procedures", generic_domain("proc", 7)),
        ("number_inpatient", generic_domain("inp", 5)),
    ]
    noise_specs = [
        ("gender", ("Female", "Male")),
        ("diag_2", _DIAG_CATEGORIES),
        ("diag_3", _DIAG_CATEGORIES),
        ("medical_specialty", _MEDICAL_SPECIALTIES),
        ("admission_type", generic_domain("adm", 8)),
        ("payer_code", generic_domain("payer", 17)),
        ("max_glu_serum", ("None", "Norm", ">200", ">300")),
        ("A1Cresult", ("None", "Norm", ">7", ">8")),
        ("readmitted", ("NO", "<30", ">30")),
        ("change", ("No", "Ch")),
        ("diabetesMed", ("No", "Yes")),
        ("weight", generic_domain("wt", 10)),
        ("race", generic_domain("race", 6)),
        ("admission_source", generic_domain("src", 39)),  # largest domain: 39
    ]
    n_filler = N_ATTRIBUTES - len(signal_specs) - len(noise_specs)
    filler_sizes = [2, 3, 4, 2, 4, 5, 3, 2, 6, 4, 3, 2, 5, 4, 3, 6, 2, 4, 3, 5, 2, 3, 4, 2, 3]
    for i in range(n_filler):
        size = filler_sizes[i % len(filler_sizes)]
        noise_specs.append((f"med_{i}", ("No", "Steady", "Up", "Down")[:size] if size <= 4
                            else generic_domain(f"med{i}", size)))
    return build_generator(signal_specs, noise_specs, n_groups, rng)


def diabetes_like(
    n_rows: int = 20_000,
    n_groups: int = 5,
    seed: int | np.random.Generator | None = 7,
) -> Dataset:
    """Sample a Diabetes-like dataset (pass ``n_rows=N_ROWS_PAPER`` for full scale)."""
    rng = ensure_rng(seed)
    generator = diabetes_generator(n_groups, rng)
    dataset, _ = generator.generate(n_rows, rng)
    return dataset
