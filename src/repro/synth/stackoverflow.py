"""Stack Overflow 2018 survey stand-in (98,855 tuples, 60 attributes).

Appendix C: textual / multiple-choice columns were dropped, attributes with
>60% missing values discarded, ``ConvertedSalary`` binned; resulting domain
sizes range from 2 to 22.  We reproduce those shape parameters with
developer-survey-flavoured attributes; professional-profile attributes carry
the group signal (the survey clusters by professional background).
"""

from __future__ import annotations

import numpy as np

from ..dataset.schema import binned_domain
from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng
from .generator import PlantedClusterGenerator, build_generator, generic_domain

N_ROWS_PAPER = 98_855
N_ATTRIBUTES = 60


def stackoverflow_generator(
    n_groups: int = 5, seed: int | np.random.Generator | None = 13
) -> PlantedClusterGenerator:
    """Build the Stack Overflow-like generator (60 attributes, domains 2-22)."""
    rng = ensure_rng(seed)
    salary_bins = binned_domain(
        [0, 10_000, 25_000, 50_000, 75_000, 100_000, 150_000, 200_000], fmt=".0f"
    )
    years_coding = tuple(
        ["0-2 years", "3-5 years", "6-8 years", "9-11 years", "12-14 years",
         "15-17 years", "18-20 years", "21-23 years", "24-26 years", "27+ years"]
    )
    signal_specs = [
        ("ConvertedSalary", salary_bins),  # 8 bins
        ("YearsCoding", years_coding),  # 10 values
        ("Employment", ("Full-time", "Part-time", "Freelance", "Not employed",
                        "Retired", "Student")),
        ("FormalEducation", generic_domain("edu", 9)),
        ("DevType", generic_domain("dev", 20)),
        ("CompanySize", generic_domain("size", 10)),
        ("JobSatisfaction", generic_domain("sat", 7)),
        ("Age", generic_domain("age", 8)),
    ]
    noise_specs = [
        ("Hobby", ("Yes", "No")),
        ("OpenSource", ("Yes", "No")),
        ("Country", generic_domain("ctry", 22)),  # largest domain: 22
        ("Student", ("No", "Yes, full-time", "Yes, part-time")),
        ("UndergradMajor", generic_domain("major", 12)),
        ("HopeFiveYears", generic_domain("hope", 8)),
        ("JobSearchStatus", generic_domain("search", 3)),
        ("LastNewJob", generic_domain("lastjob", 6)),
        ("UpdateCV", generic_domain("cv", 7)),
        ("CareerSatisfaction", generic_domain("csat", 7)),
        ("OperatingSystem", ("Windows", "MacOS", "Linux", "BSD/Other")),
        ("NumberMonitors", ("1", "2", "3", "4+")),
        ("CheckInCode", generic_domain("checkin", 6)),
        ("WakeTime", generic_domain("wake", 7)),
        ("HoursComputer", generic_domain("hrs", 5)),
        ("HoursOutside", generic_domain("out", 5)),
        ("SkipMeals", generic_domain("skip", 4)),
        ("Exercise", generic_domain("ex", 4)),
        ("Gender", generic_domain("gen", 4)),
        ("Dependents", ("Yes", "No")),
        ("MilitaryUS", ("Yes", "No")),
        ("SurveyTooLong", generic_domain("slen", 3)),
        ("SurveyEasy", generic_domain("seasy", 5)),
        ("StackOverflowVisit", generic_domain("visit", 6)),
        ("StackOverflowHasAccount", ("Yes", "No", "Not sure")),
        ("StackOverflowParticipate", generic_domain("part", 6)),
        ("StackOverflowJobs", generic_domain("jobs", 3)),
        ("StackOverflowDevStory", generic_domain("story", 4)),
        ("StackOverflowJobsRecommend", generic_domain("rec", 11)),
        ("StackOverflowConsiderMember", ("Yes", "No", "Not sure")),
        ("EthicsChoice", ("Yes", "No", "Depends")),
        ("EthicsReport", generic_domain("ethr", 4)),
        ("EthicsResponsible", generic_domain("ethp", 3)),
        ("EthicalImplications", ("Yes", "No", "Unsure")),
    ]
    n_filler = N_ATTRIBUTES - len(signal_specs) - len(noise_specs)
    sizes = [2, 3, 5, 4, 7, 2, 6, 3, 4, 5, 2, 3]
    for i in range(n_filler):
        noise_specs.append((f"AssessJob{i+1}", generic_domain(f"aj{i}", sizes[i % len(sizes)])))
    return build_generator(signal_specs, noise_specs, n_groups, rng, sharpness=0.5)


def stackoverflow_like(
    n_rows: int = 20_000,
    n_groups: int = 5,
    seed: int | np.random.Generator | None = 13,
) -> Dataset:
    """Sample a Stack Overflow-like dataset."""
    rng = ensure_rng(seed)
    generator = stackoverflow_generator(n_groups, rng)
    dataset, _ = generator.generate(n_rows, rng)
    return dataset
