"""Planted-structure synthetic tabular data.

The paper's experiments run on US Census (1990), Diabetes (UCI) and the 2018
Stack Overflow survey, none of which is available offline.  What the
experiments actually measure — attribute selection quality as a function of
noise scale vs. histogram count magnitudes — depends on (a) the number of
attributes and their domain sizes, (b) row counts / cluster sizes, and (c) the
existence of attributes whose per-cluster distributions genuinely differ.
This module generates datasets with exactly those properties: a latent group
per row, *signal* attributes whose conditional distribution shifts by group,
and *noise* attributes shared across groups.

:class:`PlantedClusterGenerator` is the engine; the dataset-shaped frontends
live in :mod:`repro.synth.diabetes`, :mod:`repro.synth.census` and
:mod:`repro.synth.stackoverflow`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.schema import Attribute, Schema
from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng


def peaked_distribution(
    domain_size: int, peak: int, sharpness: float = 0.55, background: float = 0.15
) -> np.ndarray:
    """A unimodal categorical distribution peaking at ``peak``.

    Mass decays geometrically with distance from the peak (ratio
    ``sharpness``) and is mixed with a uniform ``background`` component so no
    domain value has probability zero — keeping sufficiency denominators
    well-behaved and histograms realistic.
    """
    if not 0 <= peak < domain_size:
        raise ValueError("peak must lie inside the domain")
    if not 0.0 < sharpness < 1.0:
        raise ValueError("sharpness must be in (0, 1)")
    if not 0.0 <= background < 1.0:
        raise ValueError("background must be in [0, 1)")
    idx = np.arange(domain_size)
    core = sharpness ** np.abs(idx - peak)
    core = core / core.sum()
    return background / domain_size + (1.0 - background) * core


@dataclass(frozen=True)
class AttributeModel:
    """An attribute together with its per-group conditional distributions."""

    attribute: Attribute
    probs: np.ndarray  # (n_groups, domain_size); rows sum to 1
    is_signal: bool

    def __post_init__(self) -> None:
        if self.probs.ndim != 2 or self.probs.shape[1] != self.attribute.domain_size:
            raise ValueError(
                f"probs for {self.attribute.name!r} must be (groups, domain)"
            )
        sums = self.probs.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-8):
            raise ValueError(f"rows of probs for {self.attribute.name!r} must sum to 1")


def signal_model(
    name: str,
    domain: tuple[str, ...],
    n_groups: int,
    rng: np.random.Generator,
    sharpness: float = 0.55,
    background: float = 0.15,
) -> AttributeModel:
    """Distinct peaked distribution per group (peaks spread over the domain)."""
    m = len(domain)
    probs = np.empty((n_groups, m))
    offsets = rng.permutation(n_groups)
    for g in range(n_groups):
        peak = int(round(offsets[g] * (m - 1) / max(n_groups - 1, 1)))
        probs[g] = peaked_distribution(m, peak, sharpness, background)
    return AttributeModel(Attribute(name, domain), probs, is_signal=True)


def noise_model(
    name: str,
    domain: tuple[str, ...],
    n_groups: int,
    rng: np.random.Generator,
    concentration: float = 4.0,
) -> AttributeModel:
    """One shared Dirichlet-sampled distribution for every group."""
    m = len(domain)
    shared = rng.dirichlet(np.full(m, concentration))
    probs = np.tile(shared, (n_groups, 1))
    return AttributeModel(Attribute(name, domain), probs, is_signal=False)


@dataclass(frozen=True)
class PlantedClusterGenerator:
    """Sampler for tuples with latent group structure."""

    models: tuple[AttributeModel, ...]
    group_weights: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.group_weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0 or np.any(w < 0) or not np.isclose(w.sum(), 1.0):
            raise ValueError("group_weights must be a probability vector")
        groups = {m.probs.shape[0] for m in self.models}
        if groups != {w.size}:
            raise ValueError("all attribute models must match the number of groups")

    @property
    def schema(self) -> Schema:
        return Schema(tuple(m.attribute for m in self.models))

    @property
    def n_groups(self) -> int:
        return int(np.asarray(self.group_weights).size)

    @property
    def signal_names(self) -> tuple[str, ...]:
        return tuple(m.attribute.name for m in self.models if m.is_signal)

    def generate(
        self, n_rows: int, rng: np.random.Generator | int | None = None
    ) -> tuple[Dataset, np.ndarray]:
        """Sample ``n_rows`` tuples; returns ``(dataset, latent group labels)``."""
        if n_rows < 0:
            raise ValueError("n_rows must be >= 0")
        gen = ensure_rng(rng)
        groups = gen.choice(self.n_groups, size=n_rows, p=self.group_weights)
        columns: dict[str, np.ndarray] = {}
        for model in self.models:
            m = model.attribute.domain_size
            col = np.empty(n_rows, dtype=np.int64)
            for g in range(self.n_groups):
                mask = groups == g
                k = int(mask.sum())
                if k:
                    col[mask] = gen.choice(m, size=k, p=model.probs[g])
            columns[model.attribute.name] = col
        return Dataset(self.schema, columns), groups.astype(np.int64)


def build_generator(
    signal_specs: list[tuple[str, tuple[str, ...]]],
    noise_specs: list[tuple[str, tuple[str, ...]]],
    n_groups: int,
    rng: np.random.Generator | int | None = None,
    group_weights: np.ndarray | None = None,
    sharpness: float = 0.55,
    background: float = 0.15,
) -> PlantedClusterGenerator:
    """Assemble a generator from ``(name, domain)`` specs."""
    gen = ensure_rng(rng)
    models: list[AttributeModel] = []
    for name, domain in signal_specs:
        models.append(signal_model(name, domain, n_groups, gen, sharpness, background))
    for name, domain in noise_specs:
        models.append(noise_model(name, domain, n_groups, gen))
    if group_weights is None:
        raw = gen.dirichlet(np.full(n_groups, 8.0))
        group_weights = raw
    return PlantedClusterGenerator(tuple(models), np.asarray(group_weights))


def generic_domain(prefix: str, size: int) -> tuple[str, ...]:
    """A synthetic categorical domain ``prefix_0 .. prefix_{size-1}``."""
    if size < 1:
        raise ValueError("domain size must be >= 1")
    return tuple(f"{prefix}_{i}" for i in range(size))
