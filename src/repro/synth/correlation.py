"""Correlated-attribute injection at a target Cramér's V (Section 6.2).

The paper's robustness experiment adds, for every original attribute, a copy
obtained "by randomly perturbing a small portion of the records, while
maintaining a Cramér's V value of 0.85".  We implement Cramér's V from the
chi-squared statistic of the contingency table and search for the
perturbation fraction that achieves the target association.
"""

from __future__ import annotations

import numpy as np

from ..dataset.schema import Attribute
from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng


def contingency_table(
    codes_a: np.ndarray, codes_b: np.ndarray, size_a: int, size_b: int
) -> np.ndarray:
    """Joint count table of two coded columns."""
    if len(codes_a) != len(codes_b):
        raise ValueError("columns must have equal length")
    flat = codes_a.astype(np.int64) * size_b + codes_b.astype(np.int64)
    return np.bincount(flat, minlength=size_a * size_b).reshape(size_a, size_b)


def cramers_v(
    codes_a: np.ndarray, codes_b: np.ndarray, size_a: int, size_b: int
) -> float:
    """Cramér's V association measure in [0, 1] [9]."""
    table = contingency_table(codes_a, codes_b, size_a, size_b).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 0.0
    row = table.sum(axis=1, keepdims=True)
    col = table.sum(axis=0, keepdims=True)
    expected = row @ col / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum(
            np.where(expected > 0, (table - expected) ** 2 / expected, 0.0)
        )
    r = int(np.count_nonzero(row))
    c = int(np.count_nonzero(col))
    k = min(r, c) - 1
    if k <= 0:
        return 0.0
    return float(np.sqrt(chi2 / (n * k)))


def perturbed_copy(
    codes: np.ndarray,
    domain_size: int,
    fraction: float,
    rng: np.random.Generator,
    uniform_draws: np.ndarray | None = None,
    replacement: np.ndarray | None = None,
) -> np.ndarray:
    """Copy a column, replacing a ``fraction`` of entries with random values.

    ``uniform_draws`` / ``replacement`` may be supplied to keep the
    perturbation pattern fixed while only the threshold changes — making
    Cramér's V monotone in ``fraction`` so bisection converges.
    """
    n = len(codes)
    gen = ensure_rng(rng)
    if uniform_draws is None:
        uniform_draws = gen.uniform(size=n)
    if replacement is None:
        replacement = gen.integers(0, domain_size, size=n)
    out = codes.copy()
    mask = uniform_draws < fraction
    out[mask] = replacement[mask]
    return out


def correlated_column(
    codes: np.ndarray,
    domain_size: int,
    target_v: float,
    rng: np.random.Generator | int | None = None,
    tol: float = 0.01,
    max_steps: int = 40,
) -> tuple[np.ndarray, float]:
    """Produce a column whose Cramér's V with ``codes`` is ~``target_v``.

    Returns ``(new_codes, achieved_v)``.  A perfect copy has V = 1 (when the
    column is non-constant); replacing entries uniformly decays V towards 0,
    and the decay is monotone for a fixed perturbation pattern, so we bisect.
    """
    if not 0.0 < target_v <= 1.0:
        raise ValueError("target_v must be in (0, 1]")
    gen = ensure_rng(rng)
    n = len(codes)
    draws = gen.uniform(size=n)
    repl = gen.integers(0, domain_size, size=n)

    base_v = cramers_v(codes, codes, domain_size, domain_size)
    if base_v <= target_v:  # constant or near-constant column: best we can do
        return codes.copy(), base_v

    lo, hi = 0.0, 1.0
    best = codes.copy()
    best_v = base_v
    for _ in range(max_steps):
        mid = (lo + hi) / 2.0
        cand = perturbed_copy(codes, domain_size, mid, gen, draws, repl)
        v = cramers_v(codes, cand, domain_size, domain_size)
        if abs(v - target_v) < abs(best_v - target_v):
            best, best_v = cand, v
        if abs(v - target_v) <= tol:
            break
        if v > target_v:
            lo = mid
        else:
            hi = mid
    return best, best_v


def add_correlated_attributes(
    dataset: Dataset,
    target_v: float = 0.85,
    rng: np.random.Generator | int | None = None,
    suffix: str = "_corr",
    names: list[str] | None = None,
) -> Dataset:
    """Extend ``dataset`` with a correlated copy of each selected attribute."""
    gen = ensure_rng(rng)
    names = list(names) if names is not None else list(dataset.schema.names)
    out = dataset
    for name in names:
        attr = dataset.schema.attribute(name)
        new_codes, _ = correlated_column(
            np.asarray(dataset.column(name)), attr.domain_size, target_v, gen
        )
        out = out.with_column(Attribute(name + suffix, attr.domain), new_codes)
    return out
