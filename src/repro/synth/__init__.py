"""Synthetic data generators standing in for the paper's three datasets."""

from .census import census_generator, census_like
from .correlation import (
    add_correlated_attributes,
    contingency_table,
    correlated_column,
    cramers_v,
    perturbed_copy,
)
from .diabetes import diabetes_generator, diabetes_like
from .generator import (
    AttributeModel,
    PlantedClusterGenerator,
    build_generator,
    generic_domain,
    noise_model,
    peaked_distribution,
    signal_model,
)
from .stackoverflow import stackoverflow_generator, stackoverflow_like

DATASETS = {
    "Diabetes": diabetes_like,
    "Census": census_like,
    "StackOverflow": stackoverflow_like,
}

__all__ = [
    "census_generator",
    "census_like",
    "add_correlated_attributes",
    "contingency_table",
    "correlated_column",
    "cramers_v",
    "perturbed_copy",
    "diabetes_generator",
    "diabetes_like",
    "AttributeModel",
    "PlantedClusterGenerator",
    "build_generator",
    "generic_domain",
    "noise_model",
    "peaked_distribution",
    "signal_model",
    "stackoverflow_generator",
    "stackoverflow_like",
    "DATASETS",
]
