"""Census-like synthetic dataset (US Census 1990 PUMS stand-in).

The real dataset [49] has 2,458,285 tuples and 68 attributes.  We reproduce
the 68-attribute shape and plant the employment-status signal the paper's
case study (Section 6.4, Figure 10) revolves around: ``iRlabor`` (employment
status), ``iWork89`` (worked in 1989), ``dHours`` (hours worked last week),
``iYearwrk`` (last year worked) and ``iMeans`` (transport to work) are
mutually correlated signal attributes, so — as in the paper — several
near-optimal attribute combinations exist and DP selection may pick
correlated stand-ins without losing quality.

Row count defaults to a laptop-scale 50k (the paper itself subsamples Census
down to eta = 1e-3 in Figure 8b); pass ``n_rows`` for other scales.
"""

from __future__ import annotations

import numpy as np

from ..dataset.schema import Attribute
from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng
from .generator import (
    AttributeModel,
    PlantedClusterGenerator,
    generic_domain,
    noise_model,
    peaked_distribution,
    signal_model,
)

N_ROWS_PAPER = 2_458_285
N_ATTRIBUTES = 68

IRLABOR = ("Civ Emp, At Work", "N/A < 16", "Not in Labor", "Unemployed", "Armed Forces")
IWORK89 = ("N/A < 16", "No", "Yes")
DHOURS = ("[0, 0]", "(0, 30)", "[30, 40)", "[40, 41)", "[41, 50)", "[51, inf)")
IYEARWRK = ("1979", "1980-1984", "1985-1987", "1989-1990", "N/A < 16", "Never Worked")
IMEANS = ("At Home", "Car/Truck/Van", "Not a Worker", "Walked", "Transit")


def _employment_block(n_groups: int, rng: np.random.Generator) -> list[AttributeModel]:
    """Correlated employment attributes driving the Figure 10 case study.

    Group 0 = adults not working, group 1 = under-16, group 2 = workers;
    further groups (if any) get interpolated profiles.  The per-group peaks
    are chosen so that iRlabor / iWork89 / dHours / iYearwrk / iMeans carry
    the *same* latent signal through different encodings — reproducing the
    paper's observation that DPClustX and TabEE may explain the same cluster
    with different but correlated attributes.
    """

    def profile(peaks: list[int], domain: tuple[str, ...], name: str) -> AttributeModel:
        probs = np.empty((n_groups, len(domain)))
        for g in range(n_groups):
            peak = peaks[g % len(peaks)]
            probs[g] = peaked_distribution(len(domain), peak, 0.35, 0.08)
        return AttributeModel(Attribute(name, domain), probs, is_signal=True)

    return [
        # group0 -> "Not in Labor"(2), group1 -> "N/A < 16"(1), group2 -> "At Work"(0)
        profile([2, 1, 0, 3, 4], IRLABOR, "iRlabor"),
        profile([1, 0, 2, 1, 2], IWORK89, "iWork89"),
        profile([0, 0, 3, 1, 4], DHOURS, "dHours"),
        profile([0, 4, 3, 5, 2], IYEARWRK, "iYearwrk"),
        profile([2, 2, 1, 0, 3], IMEANS, "iMeans"),
    ]


def census_generator(
    n_groups: int = 5, seed: int | np.random.Generator | None = 11
) -> PlantedClusterGenerator:
    """Build the Census-like generator (68 attributes)."""
    rng = ensure_rng(seed)
    models = _employment_block(n_groups, rng)

    extra_signal = [
        ("dAge", generic_domain("age", 8)),
        ("iSchool", generic_domain("sch", 10)),
        ("dIncome1", generic_domain("inc", 12)),
        ("iClass", generic_domain("cls", 9)),
        ("iFertil", generic_domain("fert", 13)),
    ]
    for name, domain in extra_signal:
        models.append(signal_model(name, domain, n_groups, rng, 0.5, 0.12))

    noise_names = [
        ("iSex", 2), ("iMarital", 5), ("iCitizen", 4), ("iEnglish", 4),
        ("iImmigr", 10), ("iLang1", 2), ("iLooking", 3), ("iMay75880", 3),
        ("iMilitary", 4), ("iMobility", 2), ("iMobillim", 3), ("dOccup", 9),
        ("iOthrserv", 3), ("iPerscare", 3), ("dPOB", 17), ("dPoverty", 3),
        ("dPwgt1", 5), ("iRagechld", 4), ("dRearning", 8), ("iRelat1", 13),
        ("iRelat2", 2), ("iRemplpar", 6), ("iRiders", 8), ("iRownchld", 2),
        ("dRpincome", 9), ("iRPOB", 9), ("iRrelchld", 2), ("iRspouse", 6),
        ("iRvetserv", 8), ("iSept80", 3), ("iSubfam1", 4), ("iSubfam2", 3),
        ("iTmpabsnt", 4), ("dTravtime", 7), ("iVietnam", 3), ("dWeek89", 4),
        ("iWWII", 3), ("iYearsch", 17), ("dAncstry1", 12), ("dAncstry2", 12),
        ("dDepart", 6), ("iDisabl1", 3), ("iDisabl2", 3), ("iFeb55", 3),
        ("dHispanic", 4), ("dHour89", 6), ("iKorean", 3), ("dIndustry", 13),
        ("iAvail", 5), ("iCitizen2", 3), ("dRace", 5), ("iRlabor2", 4),
        ("iMeans2", 5), ("dIncome2", 8), ("dIncome3", 6), ("dIncome4", 5),
        ("dIncome5", 4), ("dIncome6", 4),
    ]
    n_needed = N_ATTRIBUTES - len(models)
    for name, size in noise_names[:n_needed]:
        models.append(noise_model(name, generic_domain(name[:4], size), n_groups, rng))

    base = np.array([0.30, 0.25, 0.45], dtype=np.float64)
    if n_groups <= 3:
        weights = base[:n_groups] / base[:n_groups].sum()
    else:
        tail = rng.dirichlet(np.full(n_groups - 3, 6.0)) * 0.25
        weights = np.concatenate([base * 0.75, tail])
        weights = weights / weights.sum()
    return PlantedClusterGenerator(tuple(models), weights)


def census_like(
    n_rows: int = 50_000,
    n_groups: int = 5,
    seed: int | np.random.Generator | None = 11,
) -> Dataset:
    """Sample a Census-like dataset (68 attributes, employment signal)."""
    rng = ensure_rng(seed)
    generator = census_generator(n_groups, rng)
    dataset, _ = generator.generate(n_rows, rng)
    return dataset
