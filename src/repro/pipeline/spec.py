"""Clustering specifications: the named, hashable identity of one DP fit.

The paper's own evaluation setting clusters with DP-k-means at ``eps = 1``
*before* explaining (Section 6.1), so a full private pipeline needs a way to
name a clustering run precisely enough that (a) its privacy spend can be
charged to the same ledger as the explanation that follows, and (b) a repeat
of the same run can be recognised as the *same* DP release and served from a
cache at zero additional cost (post-processing is free, Proposition 2.7).

:class:`ClusteringSpec` is that name: method + parameters + seed.  Fitting a
spec is **deterministic** — :meth:`ClusteringSpec.fit` derives its generator
from ``spec.seed`` alone, so the uniform center initialisation of DP-k-means
(and the uniform mode initialisation of DP-k-modes) and every subsequent
noise draw replay byte-identically.  Two fits of one spec over
fingerprint-equal datasets therefore release the *same* noisy centers/modes,
which is what makes ``(Dataset.fingerprint(), method, params, seed)`` a
sound cache key for fitted clusterings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering.dp_kmeans import DPKMeans
from ..clustering.dp_kmodes import DPKModes
from ..dataset.table import Dataset
from ..privacy.budget import PrivacyAccountant, check_epsilon

PIPELINE_METHODS = ("dp-kmeans", "dp-kmodes")
"""The server-fittable DP clustering methods (references [64] and [53])."""

MAX_CLUSTERS = 1_024
MAX_ITERATIONS = 1_000
"""Resource bounds on server-fittable specs.  A fit runs inline in the
request path (before any future/timeout machinery exists), so unbounded
``n_clusters``/``n_iterations`` would let one cheap-epsilon request pin a
handler thread (and its fit-stripe lock) or attempt a huge center
allocation.  Both caps sit far above the paper's scales (|C| <= 8, T = 5)."""


@dataclass(frozen=True)
class ClusteringSpec:
    """One DP clustering run: method, parameters, and seed stream.

    Parameters
    ----------
    method:
        ``"dp-kmeans"`` (DPLloyd, [64]) or ``"dp-kmodes"`` ([53]).
    n_clusters:
        ``|C|`` — number of clusters to release.
    epsilon:
        The clustering privacy budget (the paper uses 1.0, Section 6.1).
    n_iterations:
        Lloyd iterations ``T``; the per-iteration budget is ``epsilon / T``.
    seed:
        Seed of the fit's generator.  Part of the release identity: the
        same seed replays the same initialisation and the same noise.
    """

    method: str
    n_clusters: int = 5
    epsilon: float = 1.0
    n_iterations: int = 5
    seed: int = 0

    def validated(self) -> "ClusteringSpec":
        """Raise ``ValueError`` on anything the fitters would choke on."""
        if self.method not in PIPELINE_METHODS:
            raise ValueError(
                f"unknown clustering method {self.method!r}; "
                f"supported: {PIPELINE_METHODS}"
            )
        if not isinstance(self.n_clusters, int) or self.n_clusters < 1:
            raise ValueError("n_clusters must be an integer >= 1")
        if self.n_clusters > MAX_CLUSTERS:
            raise ValueError(f"n_clusters must be <= {MAX_CLUSTERS}")
        check_epsilon(self.epsilon, name="clustering epsilon")
        if not isinstance(self.n_iterations, int) or self.n_iterations < 1:
            raise ValueError("n_iterations must be an integer >= 1")
        if self.n_iterations > MAX_ITERATIONS:
            raise ValueError(f"n_iterations must be <= {MAX_ITERATIONS}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an integer")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")
        return self

    def build(self) -> "DPKMeans | DPKModes":
        """The configured fitter for this spec."""
        self.validated()
        if self.method == "dp-kmeans":
            return DPKMeans(self.n_clusters, self.epsilon, self.n_iterations)
        return DPKModes(self.n_clusters, self.epsilon, self.n_iterations)

    def fit(
        self,
        dataset: Dataset,
        rng: "np.random.Generator | int | None" = None,
        accountant: PrivacyAccountant | None = None,
    ):
        """Fit this spec's clustering, charging ``accountant`` if given.

        With ``rng=None`` (the cache-keyed path) the generator is derived
        from ``self.seed``, so the fit — initialisation and noise alike —
        is byte-reproducible: re-fitting the same spec on fingerprint-equal
        data yields an identical clustering object.  An explicit ``rng``
        (e.g. a session's stream) overrides that determinism.
        """
        gen = rng if rng is not None else np.random.default_rng(self.seed)
        return self.build().fit(dataset, gen, accountant=accountant)

    def cache_key(self, fingerprint: str) -> tuple:
        """The fitted-clustering release identity over one dataset."""
        return (
            fingerprint,
            self.method,
            self.n_clusters,
            self.epsilon,
            self.n_iterations,
            self.seed,
        )

    def slug(self) -> str:
        """A compact, deterministic textual id (derived dataset names)."""
        return (
            f"{self.method}/k{self.n_clusters}"
            f"/eps{format(self.epsilon, 'g')}"
            f"/T{self.n_iterations}/s{self.seed}"
        )

    def label(self, dataset_id: str) -> str:
        """The ledger line for the fit: the full release identity."""
        return (
            f"pipeline: {self.method} dataset={dataset_id} "
            f"k={self.n_clusters} eps={format(self.epsilon, 'g')} "
            f"T={self.n_iterations} seed={self.seed}"
        )

    def describe(self) -> dict:
        return {
            "method": self.method,
            "n_clusters": self.n_clusters,
            "epsilon": self.epsilon,
            "n_iterations": self.n_iterations,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, body: dict) -> "ClusteringSpec":
        """Build a spec from decoded JSON fields (raises ``ValueError``)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(body) - known
        if unknown:
            raise ValueError(f"unknown clustering fields: {sorted(unknown)}")
        kwargs = dict(body)
        if "method" not in kwargs:
            raise ValueError("'method' is required")
        if "epsilon" in kwargs:
            kwargs["epsilon"] = float(kwargs["epsilon"])
        for key in ("n_clusters", "n_iterations", "seed"):
            if key in kwargs:
                kwargs[key] = int(kwargs[key])
        return cls(**kwargs).validated()
