"""End-to-end private pipeline: DP clustering + DP explanation, one ledger.

The paper's evaluation clusters with DP-k-means (eps = 1) *before*
explaining; this package turns that two-stage workflow into a shared,
budget-audited implementation used by :class:`~repro.session.PrivateAnalysisSession`,
the batched sweep layer (:func:`~repro.evaluation.sweeps.run_pipeline_batched`),
and the explanation service's ``/v1/pipeline`` route.

Quickstart::

    from repro import diabetes_like
    from repro.pipeline import ClusteringSpec, PrivatePipeline
    from repro.privacy.budget import PrivacyAccountant

    data = diabetes_like(n_rows=20_000)
    pipe = PrivatePipeline(data, PrivacyAccountant(limit=2.0), rng=0)
    spec = ClusteringSpec("dp-kmeans", n_clusters=5, epsilon=1.0)
    result = pipe.run(spec)                  # charges 1.0 + 0.3
    again = pipe.run(spec)                   # reuses the fit: charges 0.3
    assert not again.refit
"""

from .cache import FittedClusteringCache
from .pipeline import PipelineResult, PrivatePipeline
from .spec import PIPELINE_METHODS, ClusteringSpec

__all__ = [
    "FittedClusteringCache",
    "PipelineResult",
    "PrivatePipeline",
    "PIPELINE_METHODS",
    "ClusteringSpec",
]
