"""The end-to-end private pipeline: DP clustering + DP explanation, one ledger.

This is the paper's own evaluation setting made into a first-class object:
cluster the sensitive data with DP-k-means/DP-k-modes, then explain the
resulting clusters with DPClustX — with *both* stages charged to a single
:class:`~repro.privacy.budget.PrivacyAccountant`, so the end-to-end epsilon
(Theorem 5.3's ``eps_CandSet + eps_TopComb + eps_Hist`` plus the clustering
epsilon, composed sequentially) is enforced at runtime rather than only on
paper.

:class:`PrivatePipeline` is the shared implementation behind three front
ends:

* :class:`~repro.session.PrivateAnalysisSession` (single analyst, CLI);
* :func:`~repro.evaluation.sweeps.run_pipeline_batched` (fit once, explain a
  whole seed sweep);
* the explanation service's ``/v1/pipeline`` route (multi-tenant, with the
  fitted clustering additionally cached across requests).

Repeat fits of the same :class:`~repro.pipeline.spec.ClusteringSpec` inside
one pipeline reuse the already-released clustering at zero charge
(post-processing is free); every *new* fit and every explanation charges the
pipeline's accountant before any noise is drawn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering.base import ClusteringFunction
from ..core.counts import ClusteredCounts
from ..core.dpclustx import DPClustX
from ..core.hbe import GlobalExplanation
from ..core.quality.scores import Weights
from ..dataset.table import Dataset
from ..privacy.budget import (
    BudgetError,
    ExplanationBudget,
    PrivacyAccountant,
)
from ..privacy.rng import ensure_rng
from .spec import ClusteringSpec


@dataclass(frozen=True)
class PipelineResult:
    """One pipeline run: the clustering, the explanation, and what it cost."""

    clustering: ClusteringFunction
    explanation: GlobalExplanation
    clustering_epsilon: float  # charged for the fit; 0.0 on fitted reuse
    explanation_epsilon: float
    refit: bool  # False when the fitted clustering was reused

    @property
    def epsilon_total(self) -> float:
        """What this run actually charged (sequential composition)."""
        return self.clustering_epsilon + self.explanation_epsilon


class PrivatePipeline:
    """Fit-or-reuse DP clustering and explain it, under one accountant.

    Parameters
    ----------
    dataset:
        The sensitive dataset; queried only through DP mechanisms.
    accountant:
        The single ledger both stages charge.  Its cap (if any) bounds the
        end-to-end epsilon of everything this pipeline ever releases.
    rng:
        Default generator for operations not pinned by a spec seed (the
        explanation stage).  Fits requested through a
        :class:`~repro.pipeline.spec.ClusteringSpec` with ``rng=None`` use
        the spec's own seed and are byte-reproducible.
    """

    def __init__(
        self,
        dataset: Dataset,
        accountant: PrivacyAccountant,
        rng: "np.random.Generator | int | None" = None,
    ):
        self.dataset = dataset
        self.accountant = accountant
        self._rng = ensure_rng(rng)
        self._fitted: "dict[tuple, tuple[ClusteringFunction, ClusteredCounts]]" = {}

    # -- clustering ------------------------------------------------------- #

    def fit(
        self,
        spec: ClusteringSpec,
        rng: "np.random.Generator | int | None" = None,
        force_refit: bool = False,
    ) -> "tuple[ClusteringFunction, ClusteredCounts, bool]":
        """Fit ``spec`` (or reuse its released fit); returns counts too.

        Returns ``(clustering, counts, refit)``; ``refit=False`` means the
        spec's clustering had already been released by this pipeline and was
        reused at zero charge.  A fresh fit pre-checks the spec's epsilon
        against the remaining budget *before touching data*, then charges
        iteration-by-iteration through the accountant (the fitters
        themselves charge before drawing noise, so a refused charge can
        never follow a released draw).

        An explicit ``rng`` (a session stream) bypasses the spec-seed
        determinism; the fit is still memoised under the spec key for
        zero-charge reuse within this pipeline, but only ``rng=None`` fits
        are byte-reproducible across pipelines.  ``force_refit=True`` skips
        the reuse and buys a *fresh* DP release (charged again) — the
        session's explicit ``cluster_dp_kmeans``-style calls use it so an
        analyst can always escape a bad noisy initialisation.
        """
        spec = spec.validated()
        key = spec.cache_key(self.dataset.fingerprint())
        if not force_refit:
            cached = self._fitted.get(key)
            if cached is not None:
                return cached[0], cached[1], False
        self._require(spec.epsilon, f"clustering {spec.slug()!r}")
        clustering = spec.fit(self.dataset, rng=rng, accountant=self.accountant)
        counts = ClusteredCounts(self.dataset, clustering)
        self._fitted[key] = (clustering, counts)
        return clustering, counts, True

    # -- the full pipeline ------------------------------------------------ #

    def run(
        self,
        spec: ClusteringSpec,
        budget: ExplanationBudget | None = None,
        n_candidates: int = 3,
        weights: Weights | None = None,
        rng: "np.random.Generator | int | None" = None,
    ) -> PipelineResult:
        """Cluster (or reuse the fit) and explain: the end-to-end run.

        The explanation stage draws from ``rng`` (default: the pipeline's
        own stream) and charges ``budget.total``; the clustering stage
        charges ``spec.epsilon`` only when it actually fits.
        """
        budget = budget or ExplanationBudget()
        clustering, counts, refit = self.fit(spec, rng=rng)
        self._require(budget.total, "explanation")
        explainer = DPClustX(n_candidates, weights or Weights(), budget)
        explanation = explainer.explain(
            self.dataset,
            clustering,
            rng if rng is not None else self._rng,
            accountant=self.accountant,
            counts=counts,
        )
        return PipelineResult(
            clustering=clustering,
            explanation=explanation,
            clustering_epsilon=spec.epsilon if refit else 0.0,
            explanation_epsilon=budget.total,
            refit=refit,
        )

    # -- internals --------------------------------------------------------- #

    def _require(self, epsilon: float, what: str) -> None:
        # The accountant's own exact O(1) admission check, as a query: no
        # second tolerance window stacked on top of the ledger's arithmetic.
        if not self.accountant.can_spend(epsilon):
            raise BudgetError(
                f"{what} needs eps={epsilon:.4g} but only "
                f"{self.accountant.remaining():.4g} remains in the pipeline "
                f"ledger"
            )
