"""Fitted-clustering cache: fit once, explain many, charge once.

A DP-fitted clustering (noisy centers / modes) is itself a released object:
once its epsilon has been paid, re-deriving anything from it — including
running the whole explanation stage again with a different seed — is
post-processing and free (Proposition 2.7).  :class:`FittedClusteringCache`
memoises fitted clusterings keyed by
``ClusteringSpec.cache_key(Dataset.fingerprint())`` =
``(fingerprint, method, n_clusters, epsilon, n_iterations, seed)``,
so repeat pipeline requests naming the same fit reuse it with **zero**
additional clustering charge.

The soundness of the key rests on two facts pinned by tests:

* :meth:`~repro.pipeline.spec.ClusteringSpec.fit` is byte-reproducible
  given the spec seed, so a cache hit serves exactly what a refit would
  release — an eviction (LRU pressure, re-registration) can at worst cause
  a re-charge for the identical release, which overcounts spend: safe in
  the privacy direction;
* the dataset fingerprint covers schema, domains, and content, so a
  changed dataset can never alias a stale fit.

Like the explanation cache, keys lead with the dataset fingerprint so a
re-registered dataset id can drop its orphaned fits via
:meth:`FittedClusteringCache.invalidate_fingerprint`.
"""

from __future__ import annotations

import threading

from collections import OrderedDict

FittedKey = tuple


class FittedClusteringCache:
    """Thread-safe LRU cache of fitted (released) clusterings.

    ``on_evict(key, entry)``, when given, fires for entries pushed out by
    **LRU pressure** (not for explicit ``remove``/``invalidate``/``clear``,
    whose callers already know what they dropped).  The explanation
    service uses it to drop the fit's derived registry entry alongside, so
    the registry can never become an unbounded shadow store of fits the
    cache already let go.  Callbacks run outside the cache lock.
    """

    def __init__(self, max_entries: int = 64, on_evict=None, *, metrics=None):
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self._max = int(max_entries)
        self._on_evict = on_evict
        self._lock = threading.Lock()
        self._entries: "OrderedDict[FittedKey, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        if metrics is not None:
            self._events = metrics.counter(
                "repro_cache_events_total",
                "Cache lookup/eviction outcomes by cache and event.",
                ("cache", "event"),
            )
        else:
            self._events = None

    def get(self, key: FittedKey):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        if self._events is not None:
            self._events.inc(1, ("fitted", "miss" if entry is None else "hit"))
        return entry

    def put(self, key: FittedKey, entry) -> None:
        evicted: "list[tuple[FittedKey, object]]" = []
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._max:
                evicted.append(self._entries.popitem(last=False))
            self._evictions += len(evicted)
        if evicted and self._events is not None:
            self._events.inc(len(evicted), ("fitted", "eviction"))
        if self._on_evict is not None:
            for k, e in evicted:
                self._on_evict(k, e)

    def remove(self, key: FittedKey) -> bool:
        """Drop one entry by key (no ``on_evict``); True if it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Evict every fit over the given dataset fingerprint; return count."""
        with self._lock:
            stale = [k for k in self._entries if k and k[0] == fingerprint]
            for k in stale:
                del self._entries[k]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self._max,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                # None, not 0.0: an untouched cache has no hit ratio.
                "hit_ratio": (self._hits / lookups) if lookups else None,
            }
