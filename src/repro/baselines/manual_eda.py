"""Simulated manual EDA sessions — the workflow DPClustX replaces.

The paper's motivation (Section 1, Example 1.1): "Instead of exhausting the
privacy budget through a manual EDA session, the analyst employs DPClustX".
To quantify that claim we simulate the manual alternative: an analyst who
probes attributes one round at a time, each round releasing a noisy
histogram pair (full data + per-cluster) for one attribute, judging every
cluster's fit from the noisy releases, and stopping when the budget is gone.

Modelling choices (documented, deliberately favourable to the analyst):

* Rounds probe attributes in a uniformly random order (no data-dependent
  skipping — that would need extra budget to stay DP).
* Round cost is ``2 * eps_probe``: the full-data histogram (sequential
  across rounds) plus the per-cluster histograms (parallel across the
  disjoint clusters, sequential across rounds).
* The analyst scores each probed attribute per cluster by the noisy TVD
  between the released pair, and finally picks each cluster's best-scoring
  probed attribute — optimal play given the releases.

With total budget ``eps`` the analyst sees only ``eps / (2 eps_probe)``
attributes, each under per-release noise at ``eps_probe`` — losing to
DPClustX on both coverage and accuracy.  This is the coverage/accuracy
dilemma Section 1 describes, reproduced quantitatively in
``benchmarks/bench_manual_eda.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.counts import CountsProvider
from ..core.engine.kernels import tvd_rows
from ..core.hbe import AttributeCombination
from ..privacy.budget import (
    BudgetError,
    PrivacyAccountant,
    check_epsilon,
    quantize_epsilon,
)
from ..privacy.histograms import GeometricHistogram, HistogramMechanism
from ..privacy.rng import ensure_rng


@dataclass(frozen=True)
class ManualEDASession:
    """Budgeted random-exploration analyst baseline.

    Parameters
    ----------
    epsilon:
        Total privacy budget for the whole exploration session.
    eps_probe:
        Budget per released histogram; each exploration round consumes
        ``2 * eps_probe`` (full-data release + parallel cluster releases).
    """

    epsilon: float = 0.2
    eps_probe: float = 0.01
    histogram_mechanism: HistogramMechanism = field(
        default_factory=lambda: GeometricHistogram(1.0)
    )

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_epsilon(self.eps_probe, name="eps_probe")
        if 2 * quantize_epsilon(self.eps_probe) > quantize_epsilon(self.epsilon):
            raise ValueError("budget does not cover even one probe round")

    @property
    def n_rounds(self) -> int:
        """How many attributes the session can afford to inspect.

        Counted on the integer nano-epsilon grid: float floor-division
        mis-counts here (``0.3 // 0.1 == 2.0`` in binary floats — one
        whole probe round lost to representation error).
        """
        return int(quantize_epsilon(self.epsilon) // (2 * quantize_epsilon(self.eps_probe)))

    def select_combination(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        names: tuple[str, ...] | None = None,
    ) -> AttributeCombination:
        """Run the simulated session and return the analyst's final picks."""
        gen = ensure_rng(rng)
        names = names if names is not None else counts.names
        n_clusters = counts.n_clusters
        mech = self.histogram_mechanism.with_epsilon(self.eps_probe)
        n_probed = min(self.n_rounds, len(names))

        # The whole session is charged before the first draw; a refused
        # charge rolls back so refusal leaves ledger and generator untouched.
        if accountant is not None:
            tokens: list[int] = []
            try:
                tokens.append(
                    accountant.spend(
                        self.eps_probe * n_probed,
                        "manual-eda: full-data histograms",
                    )
                )
                tokens.append(
                    accountant.parallel(
                        [self.eps_probe * n_probed] * n_clusters,
                        "manual-eda: cluster histograms",
                    )
                )
            except BudgetError:
                for token in reversed(tokens):
                    accountant.refund(token)
                raise

        order = gen.permutation(len(names))[:n_probed]

        best_attr = [names[int(order[0])]] * n_clusters
        best_score = np.full(n_clusters, -np.inf)
        for idx in order:
            a = names[int(idx)]
            noisy_full = mech.release(counts.full(a), gen)
            noisy_clusters = np.stack(
                [mech.release(counts.cluster(a, c), gen) for c in range(n_clusters)]
            )
            # Judge all clusters at once from the round's noisy releases.
            scores = tvd_rows(noisy_full, noisy_clusters)
            improved = scores > best_score
            best_score = np.where(improved, scores, best_score)
            for c in np.flatnonzero(improved):
                best_attr[int(c)] = a
        return AttributeCombination(tuple(best_attr))

    def session_cost(self, n_attributes: int) -> float:
        """Epsilon consumed by :meth:`select_combination` (<= ``epsilon``)."""
        n_probed = min(self.n_rounds, n_attributes)
        return 2.0 * self.eps_probe * n_probed
