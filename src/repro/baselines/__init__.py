"""Comparison explainers: TabEE, its DP adaptations, and manual-EDA sessions."""

from .dp_naive import DPNaive
from .dp_tabee import DPTabEE
from .manual_eda import ManualEDASession
from .tabee import TabEE, rank_attributes_sensitive

__all__ = [
    "DPNaive",
    "DPTabEE",
    "ManualEDASession",
    "TabEE",
    "rank_attributes_sensitive",
]
