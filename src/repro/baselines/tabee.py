"""TabEE — the non-private baseline of [8] (Section 6.1).

Selects the top attribute combination from a pre-constructed candidate pool
using the *original, sensitive* quality functions: Stage-1 ranks attributes
per cluster by the sensitive single-cluster score (TVD interestingness +
normalised sufficiency) and keeps the top k; Stage-2 exhaustively maximises
the sensitive ``Quality`` over the ``k^|C|`` combinations.  Explanation
histograms are exact (no privacy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..clustering.base import ClusteringFunction
from ..core.counts import ClusteredCounts, CountsProvider
from ..core.engine import scoring_engine
from ..core.hbe import (
    AttributeCombination,
    GlobalExplanation,
    SingleClusterExplanation,
)
from ..core.quality.scores import Weights
from ..dataset.table import Dataset
from ..evaluation.quality import QualityEvaluator


def rank_attributes_sensitive(
    counts: CountsProvider,
    c: int,
    gamma: tuple[float, float],
    names: tuple[str, ...] | None = None,
) -> list[tuple[str, float]]:
    """Attributes of one cluster ranked by the sensitive single-cluster score.

    This is the full ranked candidate list of Figure 4 (``rank: 1``,
    ``rank: 2``, ...); TabEE keeps only its head.  Scores come from the
    batched engine, so ranking all clusters costs one matrix evaluation.
    """
    names = names if names is not None else counts.names
    row = scoring_engine(counts).sensitive_score_matrix(gamma[0], gamma[1], names)[c]
    scored = [(a, float(s)) for a, s in zip(names, row)]
    scored.sort(key=lambda pair: -pair[1])
    return scored


@dataclass(frozen=True)
class TabEE:
    """Non-private histogram-based explainer of [8]."""

    n_candidates: int = 3
    weights: Weights = field(default_factory=Weights)

    def candidate_sets(
        self, counts: CountsProvider, names: tuple[str, ...] | None = None
    ) -> tuple[tuple[str, ...], ...]:
        """Stage-1: deterministic per-cluster top-k by sensitive score.

        One batched ``(|C|, |A|)`` sensitive-score matrix ranks every
        cluster; ties break towards the earlier attribute, matching the
        stable sort of :func:`rank_attributes_sensitive`.
        """
        gamma = self.weights.gamma()
        pool = names if names is not None else counts.names
        matrix = scoring_engine(counts).sensitive_score_matrix(
            gamma[0], gamma[1], names
        )
        sets = []
        for c in range(counts.n_clusters):
            order = np.argsort(-matrix[c], kind="stable")
            sets.append(tuple(pool[int(j)] for j in order[: self.n_candidates]))
        return tuple(sets)

    def select_combination(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None = 0,
        names: tuple[str, ...] | None = None,
        evaluator: QualityEvaluator | None = None,
    ) -> AttributeCombination:
        """Stage-2: exhaustive arg-max of the sensitive Quality."""
        sets = self.candidate_sets(counts, names)
        if evaluator is None:
            evaluator = QualityEvaluator(counts, self.weights, rng)
        best, _ = evaluator.best_combination(sets)
        return AttributeCombination(best)

    def explain(
        self,
        dataset: Dataset,
        clustering: ClusteringFunction,
        rng: np.random.Generator | int | None = 0,
        counts: ClusteredCounts | None = None,
    ) -> GlobalExplanation:
        """Exact-histogram global explanation (Definition 2.4)."""
        if counts is None:
            counts = ClusteredCounts(dataset, clustering)
        combination = self.select_combination(counts, rng)
        explanations = []
        for c in range(counts.n_clusters):
            a = combination[c]
            h_c = counts.cluster(a, c).astype(np.float64)
            h_rest = counts.full(a).astype(np.float64) - h_c
            explanations.append(
                SingleClusterExplanation(
                    cluster=c,
                    attribute=dataset.schema.attribute(a),
                    hist_rest=h_rest,
                    hist_cluster=h_c,
                )
            )
        return GlobalExplanation(
            per_cluster=tuple(explanations),
            combination=combination,
            metadata={"framework": "TabEE", "n_candidates": self.n_candidates},
        )
