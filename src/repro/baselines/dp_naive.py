"""DP-Naive — compute every noisy histogram up front, then post-process.

Section 6.1: "Given a privacy budget eps, we compute each of the full-dataset
histograms using a budget eps/(2|A|) for each attribute.  We compute the
histogram of each cluster for each attribute using a budget of eps/(2|A|)
per cluster.  Then, as a post-processing step, we run the TabEE-based
algorithm on the noisy histograms."

Privacy: the |A| full-dataset releases compose sequentially to eps/2; for
each attribute the per-cluster releases are parallel (clusters are disjoint),
and across attributes sequential, giving another eps/2 — eps-DP in total,
with everything after the releases free post-processing.  The waste this
design incurs (noise in |A| * (|C|+1) histograms instead of a handful) is the
motivation for DPClustX's select-then-release order (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..clustering.base import ClusteringFunction
from ..core.counts import ClusteredCounts, CountsProvider, NoisyCounts
from ..core.hbe import (
    AttributeCombination,
    GlobalExplanation,
    SingleClusterExplanation,
)
from ..core.quality.scores import Weights
from ..dataset.table import Dataset
from ..privacy.budget import PrivacyAccountant, check_epsilon
from ..privacy.histograms import GeometricHistogram, HistogramMechanism
from ..privacy.rng import ensure_rng
from .tabee import TabEE


@dataclass(frozen=True)
class DPNaive:
    """The naive all-histograms-first DP explainer."""

    epsilon: float = 0.2
    n_candidates: int = 3
    weights: Weights = field(default_factory=Weights)
    histogram_mechanism: HistogramMechanism = field(
        default_factory=lambda: GeometricHistogram(1.0)
    )

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)

    def release_noisy_counts(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        names: tuple[str, ...] | None = None,
    ) -> NoisyCounts:
        """Release every full-data and per-cluster histogram under eps-DP."""
        gen = ensure_rng(rng)
        names = names if names is not None else counts.names
        eps_each = self.epsilon / (2.0 * len(names))
        mech = self.histogram_mechanism.with_epsilon(eps_each)

        full_hists: dict[str, np.ndarray] = {}
        cluster_hists: dict[str, np.ndarray] = {}
        for a in names:
            full_hists[a] = mech.release(counts.full(a), gen)
            rows = [
                mech.release(counts.cluster(a, c), gen)
                for c in range(counts.n_clusters)
            ]
            cluster_hists[a] = np.stack(rows)
        if accountant is not None:
            accountant.spend(eps_each * len(names), "dp-naive: full hists")
            for a in names:
                accountant.parallel(
                    [eps_each] * counts.n_clusters, f"dp-naive: cluster hists {a}"
                )
        return NoisyCounts(names, full_hists, cluster_hists, counts.n_clusters)

    def select_combination(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        names: tuple[str, ...] | None = None,
    ) -> AttributeCombination:
        """Noisy releases + non-private TabEE selection (post-processing)."""
        noisy, combination = self._select(counts, rng, accountant, names)
        return combination

    def _select(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None,
        accountant: PrivacyAccountant | None,
        names: tuple[str, ...] | None,
    ) -> tuple[NoisyCounts, AttributeCombination]:
        gen = ensure_rng(rng)
        noisy = self.release_noisy_counts(counts, gen, accountant, names)
        tabee = TabEE(self.n_candidates, self.weights)
        combination = tabee.select_combination(noisy, 0)
        return noisy, combination

    def explain(
        self,
        dataset: Dataset,
        clustering: ClusteringFunction,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        counts: ClusteredCounts | None = None,
    ) -> GlobalExplanation:
        """Assemble the explanation from the already-released noisy histograms."""
        if counts is None:
            counts = ClusteredCounts(dataset, clustering)
        noisy, combination = self._select(counts, rng, accountant, None)
        explanations = []
        for c in range(counts.n_clusters):
            a = combination[c]
            noisy_c = noisy.cluster(a, c)
            explanations.append(
                SingleClusterExplanation(
                    cluster=c,
                    attribute=dataset.schema.attribute(a),
                    hist_rest=np.maximum(noisy.full(a) - noisy_c, 0.0),
                    hist_cluster=noisy_c,
                )
            )
        return GlobalExplanation(
            per_cluster=tuple(explanations),
            combination=combination,
            metadata={"framework": "DP-Naive", "epsilon": self.epsilon},
        )
