"""DP-Naive — compute every noisy histogram up front, then post-process.

Section 6.1: "Given a privacy budget eps, we compute each of the full-dataset
histograms using a budget eps/(2|A|) for each attribute.  We compute the
histogram of each cluster for each attribute using a budget of eps/(2|A|)
per cluster.  Then, as a post-processing step, we run the TabEE-based
algorithm on the noisy histograms."

Privacy: the |A| full-dataset releases compose sequentially to eps/2; for
each attribute the per-cluster releases are parallel (clusters are disjoint),
and across attributes sequential, giving another eps/2 — eps-DP in total,
with everything after the releases free post-processing.  The waste this
design incurs (noise in |A| * (|C|+1) histograms instead of a handful) is the
motivation for DPClustX's select-then-release order (Section 5).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from ..clustering.base import ClusteringFunction
from ..core.counts import ClusteredCounts, CountsProvider, NoisyCounts
from ..core.hbe import (
    AttributeCombination,
    GlobalExplanation,
    SingleClusterExplanation,
)
from ..core.quality.scores import Weights
from ..dataset.table import Dataset
from ..privacy.budget import BudgetError, PrivacyAccountant, check_epsilon
from ..privacy.histograms import GeometricHistogram, HistogramMechanism
from ..privacy.rng import ensure_rng
from .tabee import TabEE


_TRUE_BLOCKS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _true_blocks(
    counts: CountsProvider, names: "tuple[str, ...]"
) -> "list[np.ndarray]":
    """Per-attribute ``(1 + |C|, m)`` true-count blocks, cached per provider.

    The blocks are a pure function of the counts, so repeated-trial sweeps
    (one noisy release per seed over the same counts) reuse them instead of
    re-stacking ``|A|`` matrices every seed.  Weakly keyed like the scoring
    engine's memo, so the cache dies with the provider.
    """
    try:
        per_names = _TRUE_BLOCKS.get(counts)
    except TypeError:  # unhashable/unweakrefable provider: no memoisation
        per_names = None
    if per_names is None:
        per_names = {}
        try:
            _TRUE_BLOCKS[counts] = per_names
        except TypeError:
            pass
    blocks = per_names.get(names)
    if blocks is None:
        blocks = [
            np.concatenate([counts.full(a)[None, :], counts.by_cluster(a)])
            for a in names
        ]
        per_names[names] = blocks
    return blocks


@dataclass(frozen=True)
class DPNaive:
    """The naive all-histograms-first DP explainer."""

    epsilon: float = 0.2
    n_candidates: int = 3
    weights: Weights = field(default_factory=Weights)
    histogram_mechanism: HistogramMechanism = field(
        default_factory=lambda: GeometricHistogram(1.0)
    )

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)

    def release_noisy_counts(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        names: tuple[str, ...] | None = None,
    ) -> NoisyCounts:
        """Release every full-data and per-cluster histogram under eps-DP."""
        gen = ensure_rng(rng)
        names = names if names is not None else counts.names
        eps_each = self.epsilon / (2.0 * len(names))
        mech = self.histogram_mechanism.with_epsilon(eps_each)
        if hasattr(counts, "materialise"):
            counts.materialise()  # fused one-pass group-by over all attributes

        # Charge the whole release up front, before any noise is sampled:
        # if any composition block is refused, roll the admitted ones back
        # so a refusal leaves both the ledger and the generator untouched.
        if accountant is not None:
            tokens: list[int] = []
            try:
                tokens.append(
                    accountant.spend(eps_each * len(names), "dp-naive: full hists")
                )
                for a in names:
                    tokens.append(
                        accountant.parallel(
                            [eps_each] * counts.n_clusters,
                            f"dp-naive: cluster hists {a}",
                        )
                    )
            except BudgetError:
                for token in reversed(tokens):
                    accountant.refund(token)
                raise

        # Every histogram of the release in one noise draw: per attribute,
        # the full-data histogram stacked on the (|C|, m) by-cluster matrix
        # forms one (1 + |C|, m) block, and ``release_blocks`` consumes a
        # single flat noise sample block-by-block — stream-identical to the
        # scalar loop (per attribute: full release first, then cluster by
        # cluster) while collapsing |A| * (|C| + 1) generator round-trips
        # into one.  Composition is unchanged: sequential across the full
        # rows, parallel across the disjoint cluster rows.
        full_hists: dict[str, np.ndarray] = {}
        cluster_hists: dict[str, np.ndarray] = {}
        if hasattr(mech, "release_blocks"):
            blocks = _true_blocks(counts, names)
            for a, noisy in zip(names, mech.release_blocks(blocks, gen)):
                full_hists[a] = noisy[0]
                cluster_hists[a] = noisy[1:]
        else:
            for a in names:
                full_hists[a] = mech.release(counts.full(a), gen)
                cluster_hists[a] = np.stack(
                    [
                        mech.release(counts.cluster(a, c), gen)
                        for c in range(counts.n_clusters)
                    ]
                )
        return NoisyCounts(names, full_hists, cluster_hists, counts.n_clusters)

    def select_combination(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        names: tuple[str, ...] | None = None,
    ) -> AttributeCombination:
        """Noisy releases + non-private TabEE selection (post-processing)."""
        noisy, combination = self._select(counts, rng, accountant, names)
        return combination

    def _select(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None,
        accountant: PrivacyAccountant | None,
        names: tuple[str, ...] | None,
    ) -> tuple[NoisyCounts, AttributeCombination]:
        gen = ensure_rng(rng)
        noisy = self.release_noisy_counts(counts, gen, accountant, names)
        tabee = TabEE(self.n_candidates, self.weights)
        combination = tabee.select_combination(noisy, 0)
        return noisy, combination

    def explain(
        self,
        dataset: Dataset,
        clustering: ClusteringFunction,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        counts: ClusteredCounts | None = None,
    ) -> GlobalExplanation:
        """Assemble the explanation from the already-released noisy histograms."""
        if counts is None:
            counts = ClusteredCounts(dataset, clustering)
        noisy, combination = self._select(counts, rng, accountant, None)
        explanations = []
        for c in range(counts.n_clusters):
            a = combination[c]
            noisy_c = noisy.cluster(a, c)
            explanations.append(
                SingleClusterExplanation(
                    cluster=c,
                    attribute=dataset.schema.attribute(a),
                    hist_rest=np.maximum(noisy.full(a) - noisy_c, 0.0),
                    hist_cluster=noisy_c,
                )
            )
        return GlobalExplanation(
            per_cluster=tuple(explanations),
            combination=combination,
            metadata={"framework": "DP-Naive", "epsilon": self.epsilon},
        )
