"""DP-TabEE — the direct DP adaptation of TabEE (Section 6.1).

Uses the *original, sensitive* quality functions for both stages, "but
injects the required noise to satisfy DP, according to Theorem 2.10 and the
sensitivity of the quality functions (Propositions 4.1 and 4.5)".  Those
propositions lower-bound the sensitivity by 1/2; since the scores have range
[0, 1] their sensitivity is at most 1, and we calibrate noise to that valid
upper bound.  Relative to the tiny [0, 1] score range this noise is huge —
which is precisely the failure mode the paper demonstrates (DP-TabEE stays
flat across the whole swept epsilon range, Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..clustering.base import ClusteringFunction
from ..core.counts import ClusteredCounts, CountsProvider
from ..core.hbe import (
    AttributeCombination,
    GlobalExplanation,
    SingleClusterExplanation,
)
from ..core.engine import scoring_engine
from ..core.quality.scores import SENSITIVE_SCORE_SENSITIVITY, Weights
from ..core.select_candidates import stage1_mechanism
from ..dataset.table import Dataset
from ..evaluation.quality import QualityEvaluator
from ..privacy.budget import ExplanationBudget, PrivacyAccountant
from ..privacy.exponential import ExponentialMechanism
from ..privacy.histograms import GeometricHistogram, HistogramMechanism
from ..privacy.rng import ensure_rng


@dataclass(frozen=True)
class DPTabEE:
    """TabEE with EM/Top-k noise calibrated to the sensitive scores."""

    n_candidates: int = 3
    weights: Weights = field(default_factory=Weights)
    budget: ExplanationBudget = field(default_factory=ExplanationBudget)
    histogram_mechanism: HistogramMechanism = field(
        default_factory=lambda: GeometricHistogram(1.0)
    )

    def select_combination(
        self,
        counts: CountsProvider,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        names: tuple[str, ...] | None = None,
    ) -> AttributeCombination:
        """Noisy Stage-1 + noisy Stage-2 over the sensitive quality functions."""
        gen = ensure_rng(rng)
        names = names if names is not None else counts.names
        gamma = self.weights.gamma()
        n_clusters = counts.n_clusters

        # Stage-1: one-shot top-k on the sensitive single-cluster score,
        # evaluated for every (cluster, attribute) pair in one engine call.
        topk = stage1_mechanism(
            self.budget.eps_cand_set,
            n_clusters,
            self.n_candidates,
            SENSITIVE_SCORE_SENSITIVITY,
        )
        score_matrix = scoring_engine(counts).sensitive_score_matrix(
            gamma[0], gamma[1], names
        )
        if accountant is not None:
            accountant.spend(self.budget.eps_cand_set, "dp-tabee stage1")
        sets: list[tuple[str, ...]] = []
        for c in range(n_clusters):
            idx = topk.select(score_matrix[c], gen)
            sets.append(tuple(names[i] for i in idx))

        # Stage-2: EM on the sensitive Quality of each combination.
        evaluator = QualityEvaluator(counts, self.weights, 0)
        combos, scores = evaluator.all_scores(sets)
        em = ExponentialMechanism(
            self.budget.eps_top_comb, SENSITIVE_SCORE_SENSITIVITY
        )
        if accountant is not None:
            accountant.spend(self.budget.eps_top_comb, "dp-tabee stage2")
        chosen = combos[em.select_index(scores, gen)]
        return AttributeCombination(tuple(chosen))

    def explain(
        self,
        dataset: Dataset,
        clustering: ClusteringFunction,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
        counts: ClusteredCounts | None = None,
    ) -> GlobalExplanation:
        """Full pipeline with DP histograms (same allocation as Algorithm 2)."""
        gen = ensure_rng(rng)
        if counts is None:
            counts = ClusteredCounts(dataset, clustering)
        combination = self.select_combination(counts, gen, accountant)

        distinct = combination.distinct_attributes()
        eps_hist_all = self.budget.eps_hist / (2.0 * len(distinct))
        eps_hist_cluster = self.budget.eps_hist / 2.0
        full_mech = self.histogram_mechanism.with_epsilon(eps_hist_all)
        cluster_mech = self.histogram_mechanism.with_epsilon(eps_hist_cluster)
        if accountant is not None:
            accountant.spend(eps_hist_all * len(distinct), "dp-tabee full hists")
        noisy_full = {a: full_mech.release(counts.full(a), gen) for a in distinct}
        if accountant is not None:
            accountant.parallel(
                [eps_hist_cluster] * counts.n_clusters, "dp-tabee cluster hists"
            )
        explanations = []
        for c in range(counts.n_clusters):
            a = combination[c]
            noisy_c = cluster_mech.release(counts.cluster(a, c), gen)
            explanations.append(
                SingleClusterExplanation(
                    cluster=c,
                    attribute=dataset.schema.attribute(a),
                    hist_rest=np.maximum(noisy_full[a] - noisy_c, 0.0),
                    hist_cluster=noisy_c,
                )
            )
        return GlobalExplanation(
            per_cluster=tuple(explanations),
            combination=combination,
            metadata={"framework": "DP-TabEE", "budget": self.budget},
        )
