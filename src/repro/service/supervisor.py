"""Shard supervisor: spawn, monitor, respawn, and replay worker processes.

The supervisor owns the deployment's fixed shape — ``n_workers`` processes,
one unix socket each — plus everything a worker cannot durably own itself:

* the **shared dataset segments**: datasets are materialised once in the
  supervisor process, packed via :func:`~repro.core.engine.shm.share_stack`
  and broadcast to workers as registration frames.  The supervisor keeps
  each :class:`~repro.core.engine.shm.SharedStack` owner object alive (and
  the frame, for respawn replay) until :meth:`stop` unlinks the segments;
* the **failover contract**: a monitor thread waits on process sentinels;
  when a worker dies it is respawned with the *same* ``WorkerConfig``, its
  registration frames are replayed, and — because every charge was an
  fsync'd journal record *before* its noise was drawn — the fresh process
  reloads exactly the ledgers the dead one had committed.  Requests that
  were in flight on the dead worker are failed by the front end with a
  structured 503 (``worker-restarting``); their charges, if any, are in the
  journal and therefore correctly absent or present, never half-applied.

Workers are spawned with the ``spawn`` start method: the supervisor runs
threads (monitor, callers), and forking a threaded process inherits locks
in undefined states.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import socket
import tempfile
import threading
import time

from multiprocessing.connection import wait as sentinel_wait

from ..core.counts import ClusteredCounts
from ..core.engine.shm import share_stack
from ..obs.metrics import MetricsRegistry
from .registry import ServiceError
from .shard import WorkerConfig, registration_frame, worker_main
from .transport import FrameError, FrameSocket


class SupervisorError(RuntimeError):
    """Deployment-level failure: spawn, readiness, or control-channel loss."""


class _Control:
    """The supervisor's private request/reply channel to one worker.

    One lock serialises whole request/reply exchanges: the control channel
    is strictly synchronous (the supervisor never pipelines on it), which
    keeps respawn logic trivially race-free.
    """

    def __init__(self, frames: FrameSocket):
        self.frames = frames
        self.lock = threading.Lock()
        self._next_id = 0

    def request(self, frame: dict, *, op_timeout: float | None = None) -> dict:
        with self.lock:
            self._next_id += 1
            rid = self._next_id
            frame = dict(frame, id=rid)
            self.frames.write(frame)
            while True:
                reply = self.frames.read()
                if reply is None:
                    raise FrameError("control channel closed by worker")
                if reply.get("id") == rid:
                    return reply

    def close(self) -> None:
        self.frames.close()


class ShardSupervisor:
    """Spawn ``n_workers`` shard processes and keep them alive.

    ``n_workers`` is pinned for the supervisor's lifetime: tenant→worker
    assignment is ``shard_of(tenant, n_workers)``, so changing the count is
    an explicit rebalance (stop the deployment, start a new one with the
    new count — ledgers follow their tenants automatically because each
    worker replays the shared ledger directory filtered to its partition).
    """

    def __init__(
        self,
        n_workers: int,
        *,
        ledger_dir: "str | None" = None,
        auto_tenant_budget: "float | None" = None,
        cache_entries: int = 256,
        compact_every: int = 256,
        service_threads: int = 2,
        socket_dir: "str | None" = None,
        ready_timeout_s: float = 60.0,
        respawn: bool = True,
        metrics: "MetricsRegistry | None" = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.ledger_dir = ledger_dir
        self.auto_tenant_budget = auto_tenant_budget
        self.cache_entries = cache_entries
        self.compact_every = compact_every
        self.service_threads = service_threads
        self.ready_timeout_s = ready_timeout_s
        self.respawn = respawn
        self._ctx = multiprocessing.get_context("spawn")
        if socket_dir is None:
            self._socket_dir = tempfile.mkdtemp(prefix="repro-shards-")
            self._own_socket_dir = True
        else:
            os.makedirs(socket_dir, exist_ok=True)
            self._socket_dir = socket_dir
            self._own_socket_dir = False
        self._procs: "list[multiprocessing.process.BaseProcess | None]" = [
            None
        ] * n_workers
        self._controls: "list[_Control | None]" = [None] * n_workers
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: "threading.Thread | None" = None
        self._registrations: "list[dict]" = []  # frames, replayed on respawn
        self._shared: "list" = []  # SharedStack owners, kept mapped until stop()
        self._restart_listeners: "list" = []
        self.restarts = 0
        # Supervisor-process metrics: respawn counters plus the frame
        # counters of every control channel.  A front end sharing this
        # registry folds them into one scrape-side snapshot.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._respawns = self.metrics.counter(
            "repro_worker_respawns_total",
            "Successful shard-worker respawns after a process death.",
            ("worker",),
        )
        self._restart_counts = [0] * n_workers
        self._last_respawn: "list[float | None]" = [None] * n_workers

    # -- lifecycle -------------------------------------------------------- #

    def socket_path(self, index: int) -> str:
        return os.path.join(self._socket_dir, f"shard-{index}.sock")

    def _config(self, index: int) -> WorkerConfig:
        return WorkerConfig(
            index=index,
            n_shards=self.n_workers,
            socket_path=self.socket_path(index),
            ledger_dir=self.ledger_dir,
            compact_every=self.compact_every,
            cache_entries=self.cache_entries,
            auto_tenant_budget=self.auto_tenant_budget,
            service_threads=self.service_threads,
        )

    def start(self) -> "ShardSupervisor":
        for i in range(self.n_workers):
            self._spawn(i)
        deadline = time.monotonic() + self.ready_timeout_s
        for i in range(self.n_workers):
            self._controls[i] = self._connect_control(i, deadline)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, index: int) -> None:
        try:
            os.unlink(self.socket_path(index))
        except FileNotFoundError:
            pass
        proc = self._ctx.Process(
            target=worker_main,
            args=(self._config(index),),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        proc.start()
        self._procs[index] = proc

    def connect(self, index: int, timeout_s: float = 10.0) -> socket.socket:
        """A fresh data-path connection to worker ``index`` (front ends)."""
        deadline = time.monotonic() + timeout_s
        path = self.socket_path(index)
        while True:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.connect(path)
                return sock
            except OSError:
                sock.close()
                if time.monotonic() >= deadline:
                    raise SupervisorError(
                        f"worker {index} not accepting on {path!r}"
                    )
                proc = self._procs[index]
                if proc is not None and not proc.is_alive() and self._stop.is_set():
                    raise SupervisorError(f"worker {index} is down")
                time.sleep(0.05)

    def _connect_control(self, index: int, deadline: float) -> _Control:
        control = _Control(
            FrameSocket(
                self.connect(
                    index, timeout_s=max(0.1, deadline - time.monotonic())
                ),
                metrics=self.metrics,
            )
        )
        reply = control.request({"op": "ping"})
        if not reply.get("ok") or reply.get("result", {}).get("index") != index:
            control.close()
            raise SupervisorError(f"worker {index} failed the readiness ping")
        return control

    # -- dataset registration --------------------------------------------- #

    def register_dataset(
        self, dataset_id: str, dataset, clustering=None, n_clusters=None
    ) -> dict:
        """Materialise once, share the stack, broadcast to every worker.

        Returns the registration frame (also the replay record).  The
        counts are built in the supervisor process — the only process that
        ever holds the rows — then only the packed stack tensors (schema ×
        clusters, independent of row count) cross into shared memory.
        """
        counts = (
            clustering
            if isinstance(clustering, ClusteredCounts)
            else ClusteredCounts(dataset, clustering, n_clusters)
        )
        counts.materialise()
        shared = share_stack(counts.by_cluster_stack())
        frame = registration_frame(dataset_id, dataset, counts, shared.handle)
        with self._lock:
            # Replace any previous registration of the same id in the
            # replay log (respawn must see only the latest version).
            self._registrations = [
                f for f in self._registrations if f["dataset"] != dataset_id
            ] + [frame]
            self._shared.append(shared)
        for i in range(self.n_workers):
            # repro-lint: disable=taint-error-envelope — the registration frame carries a shared-memory descriptor and public dataset metadata, not raw counts; a worker refusal interpolates only the public op name
            self._control_request(i, dict(frame))
        return frame

    def _replay_registrations(self, index: int) -> None:
        with self._lock:
            frames = list(self._registrations)
        for frame in frames:
            self._control_request(index, dict(frame))

    # -- control-plane requests ------------------------------------------- #

    def _control_request(self, index: int, frame: dict) -> dict:
        control = self._controls[index]
        if control is None:
            raise SupervisorError(f"worker {index} has no control channel")
        reply = control.request(frame)
        if not reply.get("ok"):
            envelope = reply.get("envelope") or {}
            error = envelope.get("error") or {}
            raise ServiceError(
                int(envelope.get("code", 500)),
                str(error.get("reason", "worker-error")),
                str(error.get("message", f"worker {index} refused {frame.get('op')!r}")),
            )
        return reply

    def worker_stats(self, index: int) -> dict:
        return self._control_request(index, {"op": "stats"})["result"]

    def worker_metrics(self, index: int) -> dict:
        """One worker's metrics-registry snapshot (merge input for scrapes)."""
        return self._control_request(index, {"op": "metrics"})["result"]

    def health(self, deep: bool = False) -> dict:
        """Deployment liveness: per-worker state, degraded if any slot is down.

        Shallow mode reads only supervisor-side process state (no worker
        round-trips); ``deep`` adds each live worker's own
        ``health(deep=True)`` body — journal tail lengths and registry
        counts, all cheap lock-guarded reads.
        """
        workers = []
        for i in range(self.n_workers):
            proc = self._procs[i]
            info = {
                "index": i,
                "alive": bool(proc is not None and proc.is_alive()),
                "pid": proc.pid if proc is not None else None,
                "restarts": self._restart_counts[i],
                "last_respawn_unix": self._last_respawn[i],
            }
            if deep and info["alive"]:
                try:
                    info["detail"] = self._control_request(
                        i, {"op": "health", "deep": True}
                    )["result"]
                except (ServiceError, SupervisorError, FrameError, OSError):
                    info["alive"] = False
            workers.append(info)
        return {
            "status": "ok" if all(w["alive"] for w in workers) else "degraded",
            "sharded": True,
            "n_workers": self.n_workers,
            "restarts": self.restarts,
            "workers": workers,
        }

    def describe(self) -> dict:
        """Deployment-wide view: per-worker stats + supervisor state."""
        workers = []
        for i in range(self.n_workers):
            try:
                workers.append(self.worker_stats(i))
            except (ServiceError, SupervisorError, FrameError, OSError):
                workers.append({"worker": {"index": i, "status": "restarting"}})
        return {
            "sharded": True,
            "n_workers": self.n_workers,
            "restarts": self.restarts,
            "datasets": self.dataset_listing(),
            "workers": workers,
        }

    def ledger(self, tenant_id: str) -> dict:
        """Route a ledger read to the tenant's owner worker."""
        from .shard import shard_of

        index = shard_of(tenant_id, self.n_workers)
        return self._control_request(
            index, {"op": "ledger", "tenant": tenant_id}
        )["result"]

    def dataset_listing(self) -> "list[dict]":
        with self._lock:
            frames = list(self._registrations)
        return [
            {
                "dataset": f["dataset"],
                "rows": f["n_rows"],
                "attributes": list(f["domains"].keys()),
                "n_clusters": f["handle"]["n_clusters"],
                "fingerprint": f["fingerprint"],
                "signature": f["signature"],
            }
            for f in frames
        ]

    # -- failover --------------------------------------------------------- #

    def on_worker_restart(self, callback) -> None:
        """Register ``callback(index)`` invoked after each successful respawn."""
        self._restart_listeners.append(callback)

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            procs = [p for p in self._procs if p is not None and p.is_alive()]
            sentinels = {p.sentinel: p for p in procs}
            if not sentinels:
                if self._stop.wait(0.1):
                    return
                continue
            ready = sentinel_wait(list(sentinels), timeout=0.25)
            if self._stop.is_set():
                return
            for sentinel in ready:
                proc = sentinels[sentinel]
                index = self._procs.index(proc)
                self._handle_death(index)

    def _handle_death(self, index: int) -> None:
        proc = self._procs[index]
        if proc is not None:
            proc.join(timeout=1.0)
        control = self._controls[index]
        self._controls[index] = None
        if control is not None:
            control.close()
        if not self.respawn or self._stop.is_set():
            return
        try:
            self._spawn(index)
            deadline = time.monotonic() + self.ready_timeout_s
            self._controls[index] = self._connect_control(index, deadline)
            self._replay_registrations(index)
        except (SupervisorError, ServiceError, FrameError, OSError):
            # Leave the slot down; the next monitor pass will not see a
            # live sentinel, and callers get worker-restarting envelopes.
            return
        self.restarts += 1
        self._restart_counts[index] += 1
        # repro-lint: disable=monotonic-deadlines — wall-clock unix stamp exported as last_respawn_unix in healthz for humans; never enters deadline math (the ready deadline above uses time.monotonic())
        self._last_respawn[index] = time.time()
        self._respawns.inc(1, (str(index),))
        for callback in list(self._restart_listeners):
            try:
                callback(index)
            except Exception:  # noqa: BLE001 — listeners must not kill failover
                pass

    # -- shutdown --------------------------------------------------------- #

    def stop(self) -> None:
        """Graceful stop: shutdown frames, join, then release shared state.

        The shutdown frame makes each worker run ``service.stop()`` — the
        final journal checkpoint — before its process exits; segments are
        unlinked only after every worker is gone, so no attach can race the
        unlink.
        """
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        for i, control in enumerate(self._controls):
            if control is None:
                continue
            try:
                control.request({"op": "shutdown"})
            except (FrameError, OSError):
                pass
            control.close()
            self._controls[i] = None
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        with self._lock:
            shared, self._shared = self._shared, []
        for segment in shared:
            segment.close()
            segment.unlink()
        for i in range(self.n_workers):
            try:
                os.unlink(self.socket_path(i))
            except OSError:
                pass
        if self._own_socket_dir:
            shutil.rmtree(self._socket_dir, ignore_errors=True)

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
