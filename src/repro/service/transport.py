"""Length-prefixed JSON frames: the shard tier's wire protocol.

Every message between the async front end / supervisor and a shard worker
is one *frame*: a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  The format is deliberately minimal — no schema
registry, no varints, no compression — because the payloads are small
(requests, envelopes, dataset registration descriptors; the actual count
tensors travel out-of-band through the PR 6 shared-memory segments) and
because both a blocking ``socket`` and an ``asyncio`` stream can parse it
with the same two reads.

Framing rules:

* a frame body is at most :data:`MAX_FRAME_BYTES` (oversized frames raise
  :class:`FrameError` on both ends — a corrupted length prefix must not
  trigger a multi-gigabyte allocation);
* a clean EOF *between* frames returns ``None`` (peer closed politely);
* EOF *inside* a frame raises :class:`FrameError` (torn write — the peer
  died mid-send and the stream is unusable).

Concurrency contract: writers interleave whole frames, so concurrent
senders on one socket must serialise via a lock (:class:`FrameSocket`
does).  Readers are single-consumer by construction.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading

_LEN = struct.Struct("!I")

#: Hard cap on one frame's JSON body.  Large enough for any envelope the
#: service produces (histograms over categorical domains), small enough
#: that a garbage length prefix fails fast instead of allocating.
MAX_FRAME_BYTES = 32 * 1024 * 1024


class FrameError(ConnectionError):
    """Torn, oversized, or malformed frame — the stream is unusable."""


def encode_frame(obj) -> bytes:
    """Serialise one frame: length prefix + compact JSON body."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame body of {len(body)} bytes exceeds "
                         f"MAX_FRAME_BYTES={MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def _decode_body(body: bytes):
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame body: {exc}") from None


def _check_length(n: int) -> int:
    if n > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {n} bytes exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES}"
        )
    return n


# --------------------------------------------------------------------------- #
# blocking socket side (shard workers, supervisor control channels)
# --------------------------------------------------------------------------- #


def _recv_exactly(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a frame boundary."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if at_boundary and got == 0:
                return None
            raise FrameError(
                f"EOF after {got} of {n} frame bytes (peer died mid-send)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket):
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _LEN.size, at_boundary=True)
    if header is None:
        return None
    n = _check_length(_LEN.unpack(header)[0])
    body = _recv_exactly(sock, n, at_boundary=False)
    return _decode_body(body)


def write_frame(sock: socket.socket, obj) -> None:
    """Write one whole frame (caller serialises concurrent writers)."""
    sock.sendall(encode_frame(obj))


class FrameSocket:
    """A blocking socket with locked whole-frame writes and single-reader reads.

    The thread-safety split mirrors how the shard tier uses connections:
    many threads may *reply* on one worker connection (each reply is one
    locked :meth:`write`), while exactly one thread per connection *reads*.

    ``metrics`` (duck-typed so this wire-level module never imports the
    obs package) counts frames into ``repro_frames_total{direction}``.
    """

    def __init__(self, sock: socket.socket, metrics=None):
        self._sock = sock
        self._wlock = threading.Lock()
        if metrics is not None:
            self._frames = metrics.counter(
                "repro_frames_total",
                "Frames read/written on shard-tier sockets by direction.",
                ("direction",),
            )
        else:
            self._frames = None

    def read(self):
        frame = read_frame(self._sock)
        if frame is not None and self._frames is not None:
            self._frames.inc(1, ("read",))
        return frame

    def write(self, obj) -> None:
        with self._wlock:
            write_frame(self._sock, obj)
        if self._frames is not None:
            self._frames.inc(1, ("written",))

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


# --------------------------------------------------------------------------- #
# asyncio side (the front end)
# --------------------------------------------------------------------------- #


async def read_frame_async(reader: asyncio.StreamReader):
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("EOF inside a frame header") from None
    n = _check_length(_LEN.unpack(header)[0])
    try:
        body = await reader.readexactly(n)
    except asyncio.IncompleteReadError:
        raise FrameError(
            f"EOF inside a {n}-byte frame body (peer died mid-send)"
        ) from None
    return _decode_body(body)


async def write_frame_async(writer: asyncio.StreamWriter, obj) -> None:
    """Write one frame and drain (asyncio writers are per-task serialised)."""
    writer.write(encode_frame(obj))
    await writer.drain()
