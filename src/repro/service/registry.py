"""Tenants, datasets, and persistent privacy ledgers — the service's state.

The paper's deployment story (Sections 1, 3) is an analyst holding a global
privacy budget; at service scale that becomes *many* analysts (tenants), each
metered per dataset.  :class:`ServiceRegistry` owns:

* the registered datasets — each a :class:`~repro.dataset.table.Dataset` plus
  a fixed clustering, materialised once into
  :class:`~repro.core.counts.ClusteredCounts` with a shared
  :class:`~repro.evaluation.sweeps.SweepContext` so every request against the
  dataset reuses the memoised true-score tensors;
* the tenants — each a :class:`Tenant` holding one capped, thread-safe
  :class:`~repro.privacy.budget.PrivacyAccountant` per dataset id.

Ledgers persist as one JSON file per tenant under ``ledger_dir``, written
crash-safely (temp file + atomic ``os.replace``) after every successful
charge and reloaded on construction — a restarted service refuses requests
a crashed one could no longer afford.
"""

from __future__ import annotations

import json
import os
import threading

from urllib.parse import quote

from ..clustering.base import ClusteringFunction
from ..core.counts import ClusteredCounts
from ..dataset.table import Dataset
from ..evaluation.sweeps import SweepContext
from ..privacy.budget import BudgetError, PrivacyAccountant, check_epsilon


class ServiceError(Exception):
    """A request-level failure with an HTTP-style status code."""

    def __init__(self, code: int, reason: str, message: str):
        super().__init__(message)
        self.code = code
        self.reason = reason


class DatasetEntry:
    """One registered (dataset, clustering) pair plus its derived state.

    ``clustering=None`` registers a **labels-free** dataset: the raw data
    is admitted (it can be clustered server-side through ``/v1/pipeline``)
    but plain ``/v1/explain`` requests are refused until a clustering
    exists — ``counts``/``signature``/``context`` stay ``None``.

    ``base_id`` names the ledger this entry's charges land in.  It defaults
    to the entry's own id; *derived* entries — fitted server-side from a
    labels-free base through the pipeline route — set it to the base
    dataset's id, so clustering and explanation charges for one underlying
    dataset share one (tenant, dataset) ledger regardless of how many
    fitted variants exist.
    """

    def __init__(
        self,
        dataset_id: str,
        dataset: Dataset,
        clustering: "ClusteringFunction | object | None" = None,
        n_clusters: int | None = None,
        *,
        base_id: str | None = None,
        clustering_spec=None,
    ):
        self.dataset_id = dataset_id
        self.dataset = dataset
        self.base_id = base_id if base_id is not None else dataset_id
        self.clustering_spec = clustering_spec
        if clustering is None:
            self.counts = None
            self.signature = None
            self.context = None
        else:
            self.counts = (
                clustering
                if isinstance(clustering, ClusteredCounts)
                else ClusteredCounts(dataset, clustering, n_clusters)
            )
            self.signature = self.counts.signature()
            self.context = SweepContext(self.counts)
        self.fingerprint = dataset.fingerprint()

    @property
    def is_derived(self) -> bool:
        return self.base_id != self.dataset_id

    def describe(self) -> dict:
        info = {
            "dataset": self.dataset_id,
            "rows": len(self.dataset),
            "attributes": list(self.dataset.schema.names),
            "n_clusters": self.counts.n_clusters if self.counts else None,
            "fingerprint": self.fingerprint,
            "signature": self.signature,
        }
        if self.is_derived:
            info["derived_from"] = self.base_id
        if self.clustering_spec is not None:
            info["clustering"] = self.clustering_spec.describe()
        return info


class Tenant:
    """One metered caller: a budget cap and per-dataset privacy ledgers.

    Each (tenant, dataset) pair gets its own
    :class:`~repro.privacy.budget.PrivacyAccountant` capped at
    ``budget_limit`` — the accountant's internal lock makes the cap check
    and the charge one atomic step, so concurrent service workers charging
    the same ledger can never jointly overspend it.
    """

    def __init__(self, tenant_id: str, budget_limit: float):
        if not tenant_id:
            raise ValueError("tenant id must be non-empty")
        self.tenant_id = tenant_id
        self.budget_limit = check_epsilon(budget_limit, name="budget_limit")
        self._lock = threading.Lock()
        self._accountants: dict[str, PrivacyAccountant] = {}

    def accountant(self, dataset_id: str) -> PrivacyAccountant:
        """The (lazily created) ledger for one dataset id."""
        with self._lock:
            acc = self._accountants.get(dataset_id)
            if acc is None:
                acc = PrivacyAccountant(limit=self.budget_limit)
                self._accountants[dataset_id] = acc
            return acc

    def snapshot(self) -> dict:
        """JSON-able state: the persistence format of the tenant's ledgers."""
        with self._lock:
            ledgers = {d: a.snapshot() for d, a in sorted(self._accountants.items())}
        return {
            "tenant": self.tenant_id,
            "budget_limit": self.budget_limit,
            "ledgers": ledgers,
        }

    def restore(self, state: dict) -> None:
        """Replace the ledgers with a :meth:`snapshot` (reload path).

        Every ledger is replayed against the *tenant's own*
        ``budget_limit`` — the snapshot's top-level ``budget_limit`` and
        any per-dataset ``limit`` fields are ignored, so restoring a
        snapshot can never widen an *existing* tenant's cap (the same
        defense as ``PrivateAnalysisSession.restore_ledger``).  A snapshot
        whose charges exceed this tenant's cap raises
        :class:`~repro.privacy.budget.BudgetError` and leaves the tenant
        unchanged.  ``self.budget_limit`` is never modified here.

        Scope of the guarantee: on the service-restart path there is no
        pre-existing tenant, so ``_load_ledgers`` necessarily takes the cap
        from the ledger file itself when constructing the :class:`Tenant` —
        the ledger directory is the system of record for caps across
        restarts and must live on trusted storage (see ``_load_ledgers``).
        """
        limit = self.budget_limit
        accountants = {}
        for dataset_id, ledger in state.get("ledgers", {}).items():
            replayed = dict(ledger)
            replayed["limit"] = limit
            accountants[str(dataset_id)] = PrivacyAccountant.from_snapshot(replayed)
        with self._lock:
            self._accountants = accountants

    def describe(self) -> dict:
        with self._lock:
            accountants = dict(self._accountants)
        return {
            "tenant": self.tenant_id,
            "budget_limit": self.budget_limit,
            "ledgers": {
                d: {"spent": a.total(), "remaining": a.remaining()}
                for d, a in sorted(accountants.items())
            },
        }


class ServiceRegistry:
    """Datasets + tenants + ledger persistence for one service instance."""

    def __init__(self, ledger_dir: "str | os.PathLike | None" = None):
        self._lock = threading.Lock()
        self._datasets: dict[str, DatasetEntry] = {}
        self._tenants: dict[str, Tenant] = {}
        self.ledger_dir = os.fspath(ledger_dir) if ledger_dir is not None else None
        if self.ledger_dir is not None:
            os.makedirs(self.ledger_dir, exist_ok=True)
            self._load_ledgers()

    # -- datasets -------------------------------------------------------- #

    def register_dataset(
        self,
        dataset_id: str,
        dataset: Dataset,
        clustering: "ClusteringFunction | object | None" = None,
        n_clusters: int | None = None,
    ) -> DatasetEntry:
        """Register (or replace) a dataset id; returns the new entry.

        ``clustering=None`` registers the dataset labels-free (pipeline
        requests fit a clustering server-side).  Replacing an id (schema
        change, rebinned domains, new clustering) yields fresh
        fingerprints, so previously cached releases become unreachable;
        :class:`~repro.service.service.ExplanationService` additionally
        evicts them along with the id's derived fitted entries.
        """
        if not dataset_id:
            raise ValueError("dataset id must be non-empty")
        entry = DatasetEntry(dataset_id, dataset, clustering, n_clusters)
        with self._lock:
            self._datasets[dataset_id] = entry
        return entry

    def add_entry_if_current(
        self, entry: DatasetEntry, base: DatasetEntry
    ) -> bool:
        """Atomically admit a derived entry iff ``base`` is still registered.

        The pipeline fits outside the registry lock; by the time the fit
        finishes, the base dataset id may have been re-registered with
        different data.  Admitting the derived entry only while its exact
        base object is still current (one atomic check-and-insert under the
        registry lock, the same lock ``register_dataset`` mutates under)
        ensures a stale fit can never be registered over a replaced base.
        """
        if not entry.dataset_id:
            raise ValueError("dataset id must be non-empty")
        with self._lock:
            if self._datasets.get(base.dataset_id) is not base:
                return False
            self._datasets[entry.dataset_id] = entry
            return True

    def remove_entry(self, entry: DatasetEntry) -> bool:
        """Remove ``entry`` iff it is still the registered object for its id.

        Identity-guarded so evicting a stale object can never drop a newer
        registration that reused the same id.
        """
        with self._lock:
            if self._datasets.get(entry.dataset_id) is entry:
                del self._datasets[entry.dataset_id]
                return True
            return False

    def drop_derived(self, base_id: str) -> "list[DatasetEntry]":
        """Remove every derived entry fitted from ``base_id``; return them.

        Called when the base dataset id is re-registered with different
        data or clustering: the derived entries reference the replaced
        :class:`~repro.dataset.table.Dataset` object and must not keep
        serving it.
        """
        with self._lock:
            stale = [
                e
                for e in self._datasets.values()
                if e.is_derived and e.base_id == base_id
            ]
            for e in stale:
                del self._datasets[e.dataset_id]
            return stale

    def dataset(self, dataset_id: str) -> DatasetEntry:
        with self._lock:
            entry = self._datasets.get(dataset_id)
        if entry is None:
            raise ServiceError(
                404, "unknown-dataset", f"no dataset registered as {dataset_id!r}"
            )
        return entry

    def datasets(self) -> tuple[DatasetEntry, ...]:
        with self._lock:
            return tuple(self._datasets.values())

    # -- tenants --------------------------------------------------------- #

    def create_tenant(self, tenant_id: str, budget_limit: float) -> Tenant:
        with self._lock:
            if tenant_id in self._tenants:
                raise ValueError(f"tenant {tenant_id!r} already exists")
            tenant = Tenant(tenant_id, budget_limit)
            self._tenants[tenant_id] = tenant
            return tenant

    def tenant(
        self, tenant_id: str, auto_budget: float | None = None
    ) -> Tenant:
        """Look a tenant up; auto-provision at ``auto_budget`` if given."""
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                if auto_budget is None:
                    raise ServiceError(
                        404, "unknown-tenant", f"no tenant named {tenant_id!r}"
                    )
                tenant = Tenant(tenant_id, auto_budget)
                self._tenants[tenant_id] = tenant
            return tenant

    def tenants(self) -> tuple[Tenant, ...]:
        with self._lock:
            return tuple(self._tenants.values())

    # -- persistence ----------------------------------------------------- #

    def _ledger_path(self, tenant_id: str) -> str:
        # Tenant ids become file names via percent-encoding — a *bijective*
        # mapping, so two distinct ids ('team a' vs 'team_a') can never
        # collide on one file and silently clobber each other's persisted
        # privacy spend.
        return os.path.join(self.ledger_dir, f"{quote(tenant_id, safe='')}.json")

    def persist_tenant(self, tenant: Tenant) -> None:
        """Crash-safe write of one tenant's ledgers (no-op without a dir).

        The snapshot lands in a temp file first and is moved into place with
        ``os.replace``; a crash mid-write leaves the previous ledger intact
        and at worst an orphaned ``*.tmp`` the loader ignores.
        """
        if self.ledger_dir is None:
            return
        path = self._ledger_path(tenant.tenant_id)
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(tenant.snapshot(), fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def persist_all(self) -> None:
        for tenant in self.tenants():
            self.persist_tenant(tenant)

    def _load_ledgers(self) -> None:
        """Reload every persisted tenant ledger (service restart path).

        The tenant's cap is taken from the file's top-level
        ``budget_limit`` — after a restart the ledger directory is the only
        record of what each tenant was provisioned with, so it is trusted
        by construction.  Anyone who can edit these files can rewrite caps
        and charges alike; keep ``ledger_dir`` on storage with the same
        integrity protections as the service itself.  (What the loader
        *does* defend against: per-dataset ``limit`` fields disagreeing
        with the tenant cap — :meth:`Tenant.restore` ignores them — and
        files whose charges exceed their own declared cap, which fail the
        replay and refuse to load.)
        """
        for name in sorted(os.listdir(self.ledger_dir)):
            if not name.endswith(".json"):
                continue  # *.tmp partials from a crash mid-write, etc.
            path = os.path.join(self.ledger_dir, name)
            try:
                with open(path) as fh:
                    state = json.load(fh)
                tenant = Tenant(
                    str(state["tenant"]), float(state["budget_limit"])
                )
                tenant.restore(state)
            except (OSError, ValueError, KeyError, BudgetError) as exc:
                raise ServiceError(
                    500,
                    "corrupt-ledger",
                    f"cannot reload tenant ledger {path!r}: {exc}",
                ) from exc
            self._tenants[tenant.tenant_id] = tenant
