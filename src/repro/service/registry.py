"""Tenants, datasets, and persistent privacy ledgers — the service's state.

The paper's deployment story (Sections 1, 3) is an analyst holding a global
privacy budget; at service scale that becomes *many* analysts (tenants), each
metered per dataset.  :class:`ServiceRegistry` owns:

* the registered datasets — each a :class:`~repro.dataset.table.Dataset` plus
  a fixed clustering, materialised once into
  :class:`~repro.core.counts.ClusteredCounts` with a shared
  :class:`~repro.evaluation.sweeps.SweepContext` so every request against the
  dataset reuses the memoised true-score tensors;
* the tenants — each a :class:`Tenant` holding one capped, thread-safe
  :class:`~repro.privacy.budget.PrivacyAccountant` per dataset id.

Ledgers persist under ``ledger_dir`` as one snapshot (``<tenant>.json``)
plus one append-only journal (``<tenant>.journal``) per tenant — a
:class:`~repro.service.journal.TenantLedgerStore`.  Every charge/refund is
one fsync'd O(1) journal record, written from the accountant's mutation
hook *before* the charging call returns (so a charge is durable before any
noise is drawn against it); :meth:`ServiceRegistry.persist_tenant` is the
periodic checkpoint that folds a grown journal back into the snapshot.
Both files reload on construction — a restarted service refuses requests a
crashed one could no longer afford — and PR 3/4-era snapshot-only
directories load unchanged (float charges quantized onto the exact
accounting grid, journal created on first write).
"""

from __future__ import annotations

import os
import threading

from typing import Callable
from urllib.parse import quote, unquote

from ..clustering.base import ClusteringFunction
from ..core.counts import ClusteredCounts
from ..dataset.table import Dataset
from ..evaluation.sweeps import SweepContext
from ..obs.metrics import MetricsRegistry
from ..privacy.budget import (
    BudgetError,
    PrivacyAccountant,
    check_epsilon,
    epsilon_from_units,
)
from .journal import TenantLedgerStore

#: The accountant-event keys the journal persists.  Observer events also
#: carry the post-mutation balance (``spent_units``/``limit_units``) for
#: telemetry; stripping here keeps the journal format unchanged — replay
#: rejects unknown *ops*, and older journals must stay byte-compatible.
_JOURNAL_EVENT_KEYS = ("op", "token", "label", "epsilon", "units", "composition")


class _BudgetMetrics:
    """Per-registry budget telemetry fed from the accountant observer hook.

    Called under the accountant's ledger lock (zero new locking on the
    charge path); exceptions are swallowed by the caller so telemetry can
    never veto — and therefore never roll back — an admitted charge.
    """

    def __init__(self, metrics: MetricsRegistry):
        labels = ("tenant", "dataset")
        self._charges = metrics.counter(
            "repro_budget_charges_total",
            "Admitted privacy charges per (tenant, dataset) ledger.",
            labels,
        )
        self._refunds = metrics.counter(
            "repro_budget_refunds_total",
            "Refunded (rolled-back) charges per (tenant, dataset) ledger.",
            labels,
        )
        self._spent = metrics.gauge(
            "repro_budget_spent_epsilon",
            "Epsilon spent so far on a (tenant, dataset) ledger.",
            labels,
        )
        self._remaining = metrics.gauge(
            "repro_budget_remaining_epsilon",
            "Epsilon left under the cap on a (tenant, dataset) ledger.",
            labels,
        )

    def __call__(self, tenant_id: str, dataset_id: str, event: dict) -> None:
        key = (tenant_id, dataset_id)
        op = event.get("op")
        if op == "charge":
            self._charges.inc(1, key)
        elif op == "refund":
            self._refunds.inc(1, key)
        spent_units = event.get("spent_units")
        if spent_units is None:
            return
        self._spent.set(epsilon_from_units(spent_units), key)
        limit_units = event.get("limit_units")
        if limit_units is not None:
            self._remaining.set(
                epsilon_from_units(limit_units - spent_units), key
            )


class ServiceError(Exception):
    """A request-level failure with an HTTP-style status code."""

    def __init__(self, code: int, reason: str, message: str):
        super().__init__(message)
        self.code = code
        self.reason = reason


class DatasetEntry:
    """One registered (dataset, clustering) pair plus its derived state.

    ``clustering=None`` registers a **labels-free** dataset: the raw data
    is admitted (it can be clustered server-side through ``/v1/pipeline``)
    but plain ``/v1/explain`` requests are refused until a clustering
    exists — ``counts``/``signature``/``context`` stay ``None``.

    ``base_id`` names the ledger this entry's charges land in.  It defaults
    to the entry's own id; *derived* entries — fitted server-side from a
    labels-free base through the pipeline route — set it to the base
    dataset's id, so clustering and explanation charges for one underlying
    dataset share one (tenant, dataset) ledger regardless of how many
    fitted variants exist.
    """

    def __init__(
        self,
        dataset_id: str,
        dataset: Dataset,
        clustering: "ClusteringFunction | object | None" = None,
        n_clusters: int | None = None,
        *,
        base_id: str | None = None,
        clustering_spec=None,
    ):
        self.dataset_id = dataset_id
        self.dataset = dataset
        self.base_id = base_id if base_id is not None else dataset_id
        self.clustering_spec = clustering_spec
        if clustering is None:
            self.counts = None
            self.signature = None
            self.context = None
        else:
            self.counts = (
                clustering
                if isinstance(clustering, ClusteredCounts)
                else ClusteredCounts(dataset, clustering, n_clusters)
            )
            self.signature = self.counts.signature()
            self.context = SweepContext(self.counts)
        self.fingerprint = dataset.fingerprint()

    @classmethod
    def from_shared(
        cls,
        dataset_id: str,
        dataset,
        counts,
        signature: "str | None",
    ) -> "DatasetEntry":
        """Build an entry over an already-materialised counts provider.

        The shard tier's registration path: a worker process attaches the
        parent's :class:`~repro.core.engine.shm.SharedStackHandle` as a
        zero-copy :class:`~repro.core.engine.shm.StackCounts` and registers
        it here without ever holding the rows.  ``dataset`` only needs the
        slice of the :class:`~repro.dataset.table.Dataset` surface the
        service reads — ``schema``, ``__len__`` and ``fingerprint()`` (the
        shard worker passes a lightweight descriptor rebuilt from the
        registration frame); ``signature`` is the *parent's*
        ``ClusteredCounts.signature()``, carried verbatim so cache keys —
        and therefore response bytes — match the in-process deployment
        exactly.
        """
        entry = cls.__new__(cls)
        entry.dataset_id = dataset_id
        entry.dataset = dataset
        entry.base_id = dataset_id
        entry.clustering_spec = None
        entry.counts = counts
        entry.signature = signature
        entry.context = SweepContext(counts) if counts is not None else None
        entry.fingerprint = dataset.fingerprint()
        return entry

    @property
    def is_derived(self) -> bool:
        return self.base_id != self.dataset_id

    def describe(self) -> dict:
        info = {
            "dataset": self.dataset_id,
            "rows": len(self.dataset),
            "attributes": list(self.dataset.schema.names),
            "n_clusters": self.counts.n_clusters if self.counts else None,
            "fingerprint": self.fingerprint,
            "signature": self.signature,
        }
        if self.is_derived:
            info["derived_from"] = self.base_id
        if self.clustering_spec is not None:
            info["clustering"] = self.clustering_spec.describe()
        return info


class Tenant:
    """One metered caller: a budget cap and per-dataset privacy ledgers.

    Each (tenant, dataset) pair gets its own
    :class:`~repro.privacy.budget.PrivacyAccountant` capped at
    ``budget_limit`` — the accountant's internal lock makes the cap check
    and the charge one atomic step, so concurrent service workers charging
    the same ledger can never jointly overspend it.
    """

    def __init__(self, tenant_id: str, budget_limit: float):
        if not tenant_id:
            raise ValueError("tenant id must be non-empty")
        self.tenant_id = tenant_id
        self.budget_limit = check_epsilon(budget_limit, name="budget_limit")
        self._lock = threading.Lock()
        self._accountants: dict[str, PrivacyAccountant] = {}
        self._store: "TenantLedgerStore | None" = None
        self._metrics_sink: "Callable[[str, str, dict], None] | None" = None

    def attach_store(self, store: "TenantLedgerStore | None") -> None:
        """Wire every (current and future) ledger to the journal store.

        Each accountant's mutation hook appends one fsync'd record to the
        tenant's journal *under the ledger lock* — a charge is on disk
        before ``spend()`` returns, replacing the old
        snapshot-rewrite-per-request persistence.
        """
        with self._lock:
            self._store = store
            for dataset_id, acc in self._accountants.items():
                self._wire_locked(dataset_id, acc)

    def attach_metrics(
        self, sink: "Callable[[str, str, dict], None] | None"
    ) -> None:
        """Wire a telemetry sink (``sink(tenant_id, dataset_id, event)``)
        into every (current and future) ledger's mutation hook, composed
        *after* the journal append — durability first, telemetry second.
        """
        with self._lock:
            self._metrics_sink = sink
            for dataset_id, acc in self._accountants.items():
                self._wire_locked(dataset_id, acc)

    def _wire_locked(self, dataset_id: str, acc: PrivacyAccountant) -> None:
        store = self._store
        sink = self._metrics_sink
        if store is None and sink is None:
            acc.set_observer(None)
            return
        tenant_id = self.tenant_id

        def observer(event: dict, d: str = dataset_id) -> None:
            if store is not None:
                # Journal first: a failed append must roll the charge back
                # (the accountant's _append contract), untouched by metrics.
                store.record(
                    d, {k: event[k] for k in _JOURNAL_EVENT_KEYS if k in event}
                )
            if sink is not None:
                try:
                    sink(tenant_id, d, event)
                except Exception:
                    pass  # telemetry must never undo a durable charge

        acc.set_observer(observer)

    def accountant(self, dataset_id: str) -> PrivacyAccountant:
        """The (lazily created) ledger for one dataset id."""
        with self._lock:
            acc = self._accountants.get(dataset_id)
            if acc is None:
                acc = PrivacyAccountant(limit=self.budget_limit)
                self._wire_locked(dataset_id, acc)
                self._accountants[dataset_id] = acc
            return acc

    def snapshot(self) -> dict:
        """JSON-able state: the persistence format of the tenant's ledgers."""
        with self._lock:
            ledgers = {d: a.snapshot() for d, a in sorted(self._accountants.items())}
        return {
            "tenant": self.tenant_id,
            "budget_limit": self.budget_limit,
            "ledgers": ledgers,
        }

    def restore(self, state: dict) -> None:
        """Replace the ledgers with a :meth:`snapshot` (reload path).

        Every ledger is replayed against the *tenant's own*
        ``budget_limit`` — the snapshot's top-level ``budget_limit`` and
        any per-dataset ``limit`` fields are ignored, so restoring a
        snapshot can never widen an *existing* tenant's cap (the same
        defense as ``PrivateAnalysisSession.restore_ledger``).  A snapshot
        whose charges exceed this tenant's cap raises
        :class:`~repro.privacy.budget.BudgetError` and leaves the tenant
        unchanged.  ``self.budget_limit`` is never modified here.

        Scope of the guarantee: on the service-restart path there is no
        pre-existing tenant, so ``_load_ledgers`` necessarily takes the cap
        from the ledger file itself when constructing the :class:`Tenant` —
        the ledger directory is the system of record for caps across
        restarts and must live on trusted storage (see ``_load_ledgers``).
        """
        limit = self.budget_limit
        accountants = {}
        for dataset_id, ledger in state.get("ledgers", {}).items():
            replayed = dict(ledger)
            replayed["limit"] = limit
            accountants[str(dataset_id)] = PrivacyAccountant.from_snapshot(replayed)
        with self._lock:
            self._accountants = accountants
            for dataset_id, acc in accountants.items():
                self._wire_locked(dataset_id, acc)
            store = self._store
        if store is not None:
            # The journal tail describes the *replaced* ledgers; rebase the
            # store on the restored state (restore is an admin/reload step,
            # not concurrent with charging, so everything folds).
            store.compact(self.snapshot())

    def describe(self) -> dict:
        with self._lock:
            accountants = dict(self._accountants)
        ledgers = {}
        for d, a in sorted(accountants.items()):
            # One locked read per ledger: spent + remaining move together,
            # so concurrent charges can never make them disagree with the
            # cap (spent + remaining == limit, exactly, in grid units).
            b = a.balance()
            ledgers[d] = {"spent": b.spent, "remaining": b.remaining}
        return {
            "tenant": self.tenant_id,
            "budget_limit": self.budget_limit,
            "ledgers": ledgers,
        }


class ServiceRegistry:
    """Datasets + tenants + ledger persistence for one service instance.

    ``compact_every`` bounds the per-tenant journal: once a journal holds
    that many records, the next :meth:`persist_tenant` checkpoint folds it
    back into the snapshot.  Between checkpoints persistence is O(1) bytes
    per charge (one journal record), not O(ledger).

    ``tenant_filter`` scopes this registry to a *partition* of the tenants
    sharing ``ledger_dir``: reload skips tenants the predicate rejects, so
    N shard workers can point at one directory while each replays (and
    therefore owns — the routing layer never sends a tenant's requests to
    two workers) only its own tenants' ledger files.  No cross-process
    locking is needed because ownership is exclusive by partition.
    """

    def __init__(
        self,
        ledger_dir: "str | os.PathLike | None" = None,
        *,
        compact_every: int = 256,
        tenant_filter: "Callable[[str], bool] | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self._lock = threading.Lock()
        self._datasets: dict[str, DatasetEntry] = {}
        self._tenants: dict[str, Tenant] = {}
        self._stores: dict[str, TenantLedgerStore] = {}
        self.compact_every = compact_every
        self.tenant_filter = tenant_filter
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._budget_metrics = _BudgetMetrics(self.metrics)
        self.ledger_dir = os.fspath(ledger_dir) if ledger_dir is not None else None
        if self.ledger_dir is not None:
            os.makedirs(self.ledger_dir, exist_ok=True)
            self._load_ledgers()

    # -- datasets -------------------------------------------------------- #

    def register_dataset(
        self,
        dataset_id: str,
        dataset: Dataset,
        clustering: "ClusteringFunction | object | None" = None,
        n_clusters: int | None = None,
    ) -> DatasetEntry:
        """Register (or replace) a dataset id; returns the new entry.

        ``clustering=None`` registers the dataset labels-free (pipeline
        requests fit a clustering server-side).  Replacing an id (schema
        change, rebinned domains, new clustering) yields fresh
        fingerprints, so previously cached releases become unreachable;
        :class:`~repro.service.service.ExplanationService` additionally
        evicts them along with the id's derived fitted entries.
        """
        if not dataset_id:
            raise ValueError("dataset id must be non-empty")
        entry = DatasetEntry(dataset_id, dataset, clustering, n_clusters)
        with self._lock:
            self._datasets[dataset_id] = entry
        return entry

    def add_entry(self, entry: DatasetEntry) -> DatasetEntry:
        """Register (or replace) a pre-built entry under its own id.

        The shard-worker registration path: the entry was assembled from a
        shared-memory registration frame (:func:`repro.service.shard.entry_from_frame`)
        rather than from a raw dataset, so ``register_dataset``'s
        counts-building constructor does not apply.
        """
        if not entry.dataset_id:
            raise ValueError("dataset id must be non-empty")
        with self._lock:
            self._datasets[entry.dataset_id] = entry
        return entry

    def add_entry_if_current(
        self, entry: DatasetEntry, base: DatasetEntry
    ) -> bool:
        """Atomically admit a derived entry iff ``base`` is still registered.

        The pipeline fits outside the registry lock; by the time the fit
        finishes, the base dataset id may have been re-registered with
        different data.  Admitting the derived entry only while its exact
        base object is still current (one atomic check-and-insert under the
        registry lock, the same lock ``register_dataset`` mutates under)
        ensures a stale fit can never be registered over a replaced base.
        """
        if not entry.dataset_id:
            raise ValueError("dataset id must be non-empty")
        with self._lock:
            if self._datasets.get(base.dataset_id) is not base:
                return False
            self._datasets[entry.dataset_id] = entry
            return True

    def remove_entry(self, entry: DatasetEntry) -> bool:
        """Remove ``entry`` iff it is still the registered object for its id.

        Identity-guarded so evicting a stale object can never drop a newer
        registration that reused the same id.
        """
        with self._lock:
            if self._datasets.get(entry.dataset_id) is entry:
                del self._datasets[entry.dataset_id]
                return True
            return False

    def drop_derived(self, base_id: str) -> "list[DatasetEntry]":
        """Remove every derived entry fitted from ``base_id``; return them.

        Called when the base dataset id is re-registered with different
        data or clustering: the derived entries reference the replaced
        :class:`~repro.dataset.table.Dataset` object and must not keep
        serving it.
        """
        with self._lock:
            stale = [
                e
                for e in self._datasets.values()
                if e.is_derived and e.base_id == base_id
            ]
            for e in stale:
                del self._datasets[e.dataset_id]
            return stale

    def dataset(self, dataset_id: str) -> DatasetEntry:
        with self._lock:
            entry = self._datasets.get(dataset_id)
        if entry is None:
            raise ServiceError(
                404, "unknown-dataset", f"no dataset registered as {dataset_id!r}"
            )
        return entry

    def datasets(self) -> tuple[DatasetEntry, ...]:
        with self._lock:
            return tuple(self._datasets.values())

    # -- tenants --------------------------------------------------------- #

    def create_tenant(self, tenant_id: str, budget_limit: float) -> Tenant:
        with self._lock:
            if tenant_id in self._tenants:
                raise ValueError(f"tenant {tenant_id!r} already exists")
            tenant = Tenant(tenant_id, budget_limit)
            tenant.attach_metrics(self._budget_metrics)
            self._provision_store_locked(tenant)
            self._tenants[tenant_id] = tenant
            return tenant

    def tenant(
        self, tenant_id: str, auto_budget: float | None = None
    ) -> Tenant:
        """Look a tenant up; auto-provision at ``auto_budget`` if given."""
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                if auto_budget is None:
                    raise ServiceError(
                        404, "unknown-tenant", f"no tenant named {tenant_id!r}"
                    )
                tenant = Tenant(tenant_id, auto_budget)
                tenant.attach_metrics(self._budget_metrics)
                self._provision_store_locked(tenant)
                self._tenants[tenant_id] = tenant
            return tenant

    def _provision_store_locked(self, tenant: Tenant) -> None:
        """Create and attach a brand-new tenant's journal store (if persisting).

        The initial snapshot (tenant id + cap, empty ledgers) is written
        and fsync'd here, so the tenant's existence and its cap are durable
        before any charge can reference them; from then on every charge is
        one O(1) journal record.
        """
        if self.ledger_dir is None:
            return
        store = TenantLedgerStore.create(
            self._ledger_base(tenant.tenant_id),
            tenant.snapshot(),
            compact_every=self.compact_every,
            metrics=self.metrics,
        )
        self._stores[tenant.tenant_id] = store
        tenant.attach_store(store)

    def tenants(self) -> tuple[Tenant, ...]:
        with self._lock:
            return tuple(self._tenants.values())

    # -- persistence ----------------------------------------------------- #

    def _ledger_base(self, tenant_id: str) -> str:
        # Tenant ids become file names via percent-encoding — a *bijective*
        # mapping, so two distinct ids ('team a' vs 'team_a') can never
        # collide on one file and silently clobber each other's persisted
        # privacy spend.  The store appends ``.json`` (snapshot) and
        # ``.journal`` (tail) to this base.
        return os.path.join(self.ledger_dir, quote(tenant_id, safe=""))

    def persist_tenant(self, tenant: Tenant, *, force: bool = False) -> None:
        """Compaction checkpoint for one tenant (no-op without a dir).

        Durability itself no longer lives here: every charge/refund was
        already fsync'd as one O(1) journal record inside the accountant
        call that made it.  This method folds the journal back into the
        snapshot once it has grown past ``compact_every`` records (or
        always, with ``force=True``) — the crash-safe temp-file +
        ``os.replace`` snapshot write, amortised over many requests
        instead of paid on every one.
        """
        if self.ledger_dir is None:
            return
        with self._lock:
            store = self._stores.get(tenant.tenant_id)
        if store is None:
            # A tenant constructed outside create_tenant()/tenant() (tests,
            # embedders) gets its store on first persistence.
            with self._lock:
                self._provision_store_locked(tenant)
            return
        if force or store.should_compact():
            # Fence *before* the snapshot capture: every record committed
            # by now is provably covered by the snapshot; later racers stay
            # in the journal and replay idempotently.
            fence = store.current_seq()
            store.compact(tenant.snapshot(), covered_seq=fence)

    def persist_all(self) -> None:
        for tenant in self.tenants():
            self.persist_tenant(tenant, force=True)

    def journal_tails(self) -> "dict[str, int]":
        """Per-tenant journal tail lengths — the deep-health cheap read."""
        with self._lock:
            stores = dict(self._stores)
        return {
            tenant_id: store.tail_records
            for tenant_id, store in sorted(stores.items())
        }

    def _load_ledgers(self) -> None:
        """Reload every persisted tenant ledger (service restart path).

        Crash recovery is snapshot + journal-tail replay via
        :meth:`TenantLedgerStore.open`; a PR 3/4-era directory (snapshot
        only, float charges, no journal) loads the same way, with the float
        epsilons quantized onto the accounting grid.  The tenant's cap is
        taken from the snapshot's top-level ``budget_limit`` — after a
        restart the ledger directory is the only record of what each
        tenant was provisioned with, so it is trusted by construction.
        Anyone who can edit these files can rewrite caps and charges
        alike; keep ``ledger_dir`` on storage with the same integrity
        protections as the service itself.  (What the loader *does* defend
        against: per-dataset ``limit`` fields disagreeing with the tenant
        cap — :meth:`Tenant.restore` ignores them — charge replays
        exceeding the declared cap, torn journal tails from a crash
        mid-append, and truly corrupt files, which refuse to load.)
        """
        for name in sorted(os.listdir(self.ledger_dir)):
            if not name.endswith(TenantLedgerStore.SNAPSHOT_SUFFIX):
                continue  # *.journal tails, *.tmp partials from a crash, etc.
            if self.tenant_filter is not None:
                tenant_id = unquote(name[: -len(TenantLedgerStore.SNAPSHOT_SUFFIX)])
                if not self.tenant_filter(tenant_id):
                    continue  # another shard worker's tenant — not ours
            path = os.path.join(self.ledger_dir, name)
            base = path[: -len(TenantLedgerStore.SNAPSHOT_SUFFIX)]
            try:
                store, state = TenantLedgerStore.open(
                    base, compact_every=self.compact_every, metrics=self.metrics
                )
                tenant = Tenant(
                    str(state["tenant"]), float(state["budget_limit"])
                )
                tenant.restore(state)
            except (OSError, ValueError, KeyError, BudgetError) as exc:
                # LedgerStoreError is a ValueError: corrupt snapshots and
                # corrupt journal interiors both land here.
                raise ServiceError(
                    500,
                    "corrupt-ledger",
                    f"cannot reload tenant ledger {path!r}: {exc}",
                ) from exc
            tenant.attach_metrics(self._budget_metrics)
            tenant.attach_store(store)
            self._tenants[tenant.tenant_id] = tenant
            self._stores[tenant.tenant_id] = store
