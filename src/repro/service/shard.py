"""Shard worker processes: tenant-partitioned explanation serving.

The multi-process tier partitions *tenants* across ``n_shards`` worker
processes by :func:`shard_of` — a stable content hash, so the owner of a
tenant is a pure function of ``(tenant_id, n_shards)`` and never depends on
interpreter hash randomisation, process identity, or arrival order.  Each
worker runs a full in-process :class:`~repro.service.service.ExplanationService`
for its partition: its tenants' privacy ledgers, journals, explanation
caches and coalescing queue live in that one process **exclusively** (the
per-``(tenant, dataset)`` ledger design already makes tenants
share-nothing), so there is no cross-process locking anywhere on the
serving path.

Datasets are *not* re-materialised per worker: the supervisor registers a
dataset once, packs its counts stack into a PR 6 shared-memory segment, and
ships each worker a registration frame carrying the size-independent
:class:`~repro.core.engine.shm.SharedStackHandle` plus the schema (names and
domain values — the only dataset surface histogram releases need).  Workers
attach zero-copy read-only views; the rows never cross a process boundary.

Wire protocol (see :mod:`repro.service.transport`): length-prefixed JSON
frames over a unix socket the worker binds.  Every request frame carries an
``id``; every reply echoes it, so replies may arrive out of order (the
worker answers each request from a future callback as it resolves).  Ops:

=================  =========================================================
``register``       attach a shared dataset (handle + schema + fingerprints)
``explain``        one explanation request → service envelope
``explain_batch``  many requests in one frame (the front end's coalescing)
``stats``          the worker's ``describe()`` + worker identity
``metrics``        the worker's metrics-registry snapshot (scrape merge input)
``health``         the worker's ``health(deep=...)`` body + worker identity
``ledger``         one tenant's ledger description
``ping``           liveness + identity probe
``shutdown``       graceful stop: final journal checkpoint, then exit
=================  =========================================================

Request tracing rides the same frames: an ``explain`` request body may
carry a ``trace_id`` minted at the HTTP/front-end edge; the worker's
service attaches it to the reply envelope's meta/error block, so one id
follows a request across the process boundary and back.

Partition contract: a worker refuses requests for tenants it does not own
with a structured 421 (``wrong-shard``) envelope — routing bugs surface
loudly instead of silently splitting one tenant's ledger across two
processes.  Changing the worker count is a *rebalance*: it changes
``shard_of`` assignments, so it requires draining and restarting the
deployment (the supervisor pins ``n_shards`` for its lifetime); ledgers
follow their tenants because every worker replays the same journal
directory filtered to its own partition.
"""

from __future__ import annotations

import hashlib
import os
import socket
import threading

from dataclasses import dataclass

from ..core.engine.shm import SharedStackHandle, attach_counts
from ..dataset.schema import Schema
from .registry import DatasetEntry, ServiceError, ServiceRegistry
from .service import ExplainRequest, ExplanationService
from .transport import FrameError, FrameSocket


def shard_of(tenant_id: str, n_shards: int) -> int:
    """The worker index owning ``tenant_id`` in an ``n_shards`` deployment.

    A keyless BLAKE2b content hash: stable across processes, interpreter
    restarts and ``PYTHONHASHSEED`` — the property that lets a respawned
    worker, the front end, and the supervisor all agree on ownership
    without ever exchanging an assignment table.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    digest = hashlib.blake2b(tenant_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a spawned worker needs (picklable primitives only)."""

    index: int
    n_shards: int
    socket_path: str
    ledger_dir: "str | None" = None
    compact_every: int = 256
    cache_entries: int = 256
    auto_tenant_budget: "float | None" = None
    service_threads: int = 2


class SharedDatasetInfo:
    """The schema-bearing dataset descriptor rebuilt from a register frame.

    Quacks like the slice of :class:`~repro.dataset.table.Dataset` the
    service layer reads — ``schema``, ``__len__``, ``fingerprint()`` — with
    the fingerprint carried verbatim from the parent so cache keys match
    the in-process deployment byte-for-byte.
    """

    def __init__(self, schema: Schema, n_rows: int, fingerprint: str):
        self.schema = schema
        self._n_rows = int(n_rows)
        self._fingerprint = str(fingerprint)

    def __len__(self) -> int:
        return self._n_rows

    def fingerprint(self) -> str:
        return self._fingerprint


def registration_frame(dataset_id: str, dataset, counts, handle) -> dict:
    """The supervisor-side register frame for one shared dataset.

    ``counts`` is the parent's materialised ``ClusteredCounts`` (for the
    signature), ``handle`` the :class:`SharedStackHandle` of its packed
    stack.  Everything here is JSON: domains are small (binned categorical
    labels), and the heavy tensors travel through the segment the handle
    names.
    """
    return {
        "op": "register",
        "dataset": dataset_id,
        "fingerprint": dataset.fingerprint(),
        "signature": counts.signature(),
        "n_rows": len(dataset),
        "domains": {a.name: list(a.domain) for a in dataset.schema},
        "handle": {
            "segment": handle.segment,
            "names": list(handle.names),
            "domain_sizes": list(handle.domain_sizes),
            "n_clusters": handle.n_clusters,
            "nbytes": handle.nbytes,
        },
    }


def entry_from_frame(frame: dict) -> DatasetEntry:
    """Attach the frame's shared segment and build the registry entry."""
    h = frame["handle"]
    handle = SharedStackHandle(
        segment=str(h["segment"]),
        names=tuple(str(n) for n in h["names"]),
        domain_sizes=tuple(int(d) for d in h["domain_sizes"]),
        n_clusters=int(h["n_clusters"]),
        nbytes=int(h["nbytes"]),
    )
    schema = Schema.from_domains(
        {str(name): tuple(str(v) for v in dom) for name, dom in frame["domains"].items()}
    )
    info = SharedDatasetInfo(schema, frame["n_rows"], frame["fingerprint"])
    counts = attach_counts(handle, dataset=info)
    return DatasetEntry.from_shared(
        str(frame["dataset"]), info, counts, str(frame["signature"])
    )


class ShardWorker:
    """One worker process: a partition-scoped service behind a unix socket.

    Runs inside the spawned child (:func:`worker_main`).  The accept loop
    takes connections from the supervisor (control channel) and any number
    of front ends; each connection gets a reader thread, and replies are
    written from future callbacks under the connection's frame lock — so a
    slow engine pass never blocks the socket for the requests behind it.
    """

    def __init__(self, config: WorkerConfig):
        self.config = config
        registry = ServiceRegistry(
            ledger_dir=config.ledger_dir,
            compact_every=config.compact_every,
            tenant_filter=lambda t: shard_of(t, config.n_shards) == config.index,
        )
        self.service = ExplanationService(
            registry,
            cache_entries=config.cache_entries,
            auto_tenant_budget=config.auto_tenant_budget,
        )
        self._listener: "socket.socket | None" = None
        self._stop = threading.Event()
        self._conn_threads: "list[threading.Thread]" = []

    # -- lifecycle -------------------------------------------------------- #

    def serve(self) -> None:
        """Bind the socket and serve until :meth:`stop` (blocking)."""
        try:
            os.unlink(self.config.socket_path)
        except FileNotFoundError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.config.socket_path)
        listener.listen(64)
        listener.settimeout(0.2)  # so the accept loop notices stop()
        self._listener = listener
        self.service.start(self.config.service_threads)
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                t = threading.Thread(
                    target=self._serve_connection,
                    args=(FrameSocket(conn, metrics=self.service.metrics),),
                    name=f"shard-{self.config.index}-conn",
                    daemon=True,
                )
                t.start()
                self._conn_threads.append(t)
        finally:
            listener.close()
            # Final checkpoint *before* exit: stop() drains the queue so
            # every accepted future resolves, then folds each journal tail
            # into its snapshot — a clean shutdown replays nothing.
            self.service.stop()
            try:
                os.unlink(self.config.socket_path)
            except FileNotFoundError:
                pass

    def stop(self) -> None:
        self._stop.set()

    # -- connection handling ---------------------------------------------- #

    def _serve_connection(self, frames: FrameSocket) -> None:
        try:
            while True:
                frame = frames.read()
                if frame is None:
                    return  # peer closed cleanly
                self._dispatch(frames, frame)
        except (FrameError, OSError):
            return  # peer died; its in-flight futures die with it
        finally:
            frames.close()

    def _dispatch(self, frames: FrameSocket, frame: dict) -> None:
        op = frame.get("op")
        rid = frame.get("id")
        try:
            if op == "explain":
                self._handle_explain(frames, rid, frame.get("request"))
            elif op == "explain_batch":
                for item in frame.get("items", ()):
                    self._handle_explain(
                        frames, item.get("id"), item.get("request")
                    )
            elif op == "register":
                self._handle_register(frame)
                frames.write({"id": rid, "ok": True, "dataset": frame["dataset"]})
            elif op == "stats":
                body = self.service.describe()
                body["worker"] = self.identity()
                frames.write({"id": rid, "ok": True, "result": body})
            elif op == "metrics":
                frames.write(
                    {"id": rid, "ok": True, "result": self.service.metrics_snapshot()}
                )
            elif op == "health":
                body = self.service.health(deep=bool(frame.get("deep")))
                body["worker"] = self.identity()
                frames.write({"id": rid, "ok": True, "result": body})
            elif op == "ledger":
                tenant_id = str(frame["tenant"])
                self._check_owner(tenant_id)
                frames.write(
                    {
                        "id": rid,
                        "ok": True,
                        "result": self.service.ledger_describe(tenant_id),
                    }
                )
            elif op == "ping":
                frames.write({"id": rid, "ok": True, "result": self.identity()})
            elif op == "shutdown":
                frames.write({"id": rid, "ok": True})
                self.stop()
            else:
                raise ServiceError(400, "bad-frame", f"unknown op {op!r}")
        except ServiceError as exc:
            frames.write({"id": rid, "ok": False, "envelope": _error_envelope(exc)})
        except Exception as exc:  # noqa: BLE001 — a bad frame must not kill the worker
            frames.write(
                {
                    "id": rid,
                    "ok": False,
                    "envelope": _error_envelope(
                        ServiceError(500, "internal-error", type(exc).__name__)
                    ),
                }
            )

    def identity(self) -> dict:
        return {
            "index": self.config.index,
            "n_shards": self.config.n_shards,
            "pid": os.getpid(),
        }

    def _check_owner(self, tenant_id: str) -> None:
        owner = shard_of(tenant_id, self.config.n_shards)
        if owner != self.config.index:
            raise ServiceError(
                421,
                "wrong-shard",
                f"tenant {tenant_id!r} belongs to shard {owner}, "
                f"this is shard {self.config.index}",
            )

    def _handle_explain(self, frames: FrameSocket, rid, body) -> None:
        try:
            request = ExplainRequest.from_json(body)
            if isinstance(request.tenant, str) and request.tenant:
                self._check_owner(request.tenant)
        except ServiceError as exc:
            frames.write({"id": rid, "envelope": _error_envelope(exc)})
            return
        future = self.service.submit(request)

        def reply(fut) -> None:
            try:
                envelope = fut.result()
            except Exception as exc:  # noqa: BLE001 — resolve, never hang the peer
                # Redacted like the in-process path: type name only.
                envelope = _error_envelope(
                    ServiceError(500, "internal-error", type(exc).__name__)
                )
            try:
                frames.write({"id": rid, "envelope": envelope})
            except (FrameError, OSError):
                pass  # peer gone; nothing to deliver to

        future.add_done_callback(reply)

    def _handle_register(self, frame: dict) -> None:
        """Attach and register a shared dataset (idempotent on respawn replay).

        Mirrors :meth:`ExplanationService.register_dataset` eviction: when a
        replacement changes the (fingerprint, signature) release identity,
        the old version's cached releases are orphaned and dropped.
        """
        entry = entry_from_frame(frame)
        registry = self.service.registry
        try:
            old = registry.dataset(entry.dataset_id)
        except ServiceError:
            old = None
        registry.add_entry(entry)
        if old is not None and (old.fingerprint, old.signature) != (
            entry.fingerprint,
            entry.signature,
        ):
            self.service.cache.invalidate_fingerprint(old.fingerprint)


def _error_envelope(exc: ServiceError) -> dict:
    return {
        "status": "error",
        "code": exc.code,
        "error": {"reason": exc.reason, "message": str(exc)},
    }


def worker_restarting_envelope(index: int, message: str | None = None) -> dict:
    """The structured 503 for requests caught by a worker crash/restart."""
    return {
        "status": "error",
        "code": 503,
        "error": {
            "reason": "worker-restarting",
            "message": message
            or (
                f"shard worker {index} is restarting; the request was not "
                "served (its charge, if any, is journal-durable) — retry"
            ),
            "worker": index,
        },
    }


def worker_main(config: WorkerConfig) -> None:
    """Spawn entry point: serve until the supervisor says stop."""
    worker = ShardWorker(config)
    worker.serve()
