"""Fingerprint-keyed explanation cache with post-processing-is-free semantics.

A differentially private release, once computed, is public: re-serving it is
post-processing and costs no additional privacy budget (Proposition 2.7).
:class:`ExplanationCache` therefore memoises *released* explanation payloads
keyed by everything that determines them byte-for-byte:

``(dataset fingerprint, clustering signature, explainer, budget triple,
n_candidates, weights, seed-stream id)``

Two consequences the service tests pin down:

* a cache hit returns a byte-identical response body (entries store the
  canonical JSON encoding and re-serve fresh ``json.loads`` copies, so
  callers can never mutate the cached object) with **zero** new budget
  charged to any tenant;
* the dataset fingerprint / clustering signature in the key make staleness
  structural — rebinning, schema changes, or relabeling produce different
  keys, and :meth:`invalidate_fingerprint` additionally evicts the orphaned
  entries when a dataset id is re-registered.
"""

from __future__ import annotations

import json
import threading

from collections import OrderedDict
from dataclasses import dataclass

CacheKey = tuple


def canonical_json(payload: dict) -> str:
    """The canonical byte encoding cached entries are compared under."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CacheEntry:
    """One released explanation: canonical bytes + the epsilon it cost."""

    canonical: str
    epsilon_total: float

    def payload(self) -> dict:
        """A fresh (mutation-safe) copy of the response body."""
        return json.loads(self.canonical)


class ExplanationCache:
    """Thread-safe LRU cache of released explanation payloads.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) adds
    hit/miss/eviction counters to ``repro_cache_events_total`` labelled
    ``cache="explanation"``; the local integer counters behind
    :meth:`stats` are kept regardless — they are the exact counts the
    service tests and ``/v1/stats`` always had.
    """

    def __init__(self, max_entries: int = 256, *, metrics=None):
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self._max = int(max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        if metrics is not None:
            self._events = metrics.counter(
                "repro_cache_events_total",
                "Cache lookup/eviction outcomes by cache and event.",
                ("cache", "event"),
            )
        else:
            self._events = None

    def get(self, key: CacheKey) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        if self._events is not None:
            self._events.inc(
                1, ("explanation", "miss" if entry is None else "hit")
            )
        return entry

    def put(self, key: CacheKey, entry: CacheEntry) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._max:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted and self._events is not None:
            self._events.inc(evicted, ("explanation", "eviction"))

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Evict every entry whose dataset fingerprint matches; return count.

        Keys lead with the dataset fingerprint, so a re-registered (rebinned
        or re-clustered) dataset id can drop its orphaned releases even
        though the new keys would never collide with them.
        """
        with self._lock:
            stale = [k for k in self._entries if k and k[0] == fingerprint]
            for k in stale:
                del self._entries[k]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self._max,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                # None, not 0.0: an untouched cache has no hit ratio, and
                # reporting zero reads as "everything missed".
                "hit_ratio": (self._hits / lookups) if lookups else None,
            }
