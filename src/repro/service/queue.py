"""The coalescing request queue feeding the service's worker pool.

Concurrent explanation requests against the same *engine key* — the
(dataset, explainer configuration) pair that determines the true-score
tensors — differ only in their seed streams, so N simultaneous callers can
be served by **one** batched scoring pass
(:func:`~repro.evaluation.sweeps.explain_batched`).  :meth:`RequestQueue.take_batch`
implements exactly that coalescing: it blocks for the oldest pending item,
then drains every other queued item sharing its key, preserving the arrival
order of both the batch and the remainder.
"""

from __future__ import annotations

import threading

from collections import deque
from typing import Callable, Hashable, Sequence


class QueueClosed(Exception):
    """Raised by :meth:`RequestQueue.take_batch` after :meth:`RequestQueue.close`."""


class RequestQueue:
    """An unbounded FIFO of ``(key, item)`` pairs with same-key batch pops.

    ``metrics`` adds a queue-depth gauge and a coalesce fan-in histogram
    (batch size per :meth:`take_batch`, in powers-of-two buckets).
    """

    def __init__(self, metrics=None):
        self._cv = threading.Condition()
        self._items: "deque[tuple[Hashable, object]]" = deque()
        self._closed = False
        if metrics is not None:
            self._depth = metrics.gauge(
                "repro_queue_depth",
                "Requests waiting in the coalescing queue.",
            )
            self._fanin = metrics.histogram(
                "repro_coalesce_fanin",
                "Same-key requests drained per coalesced batch.",
                base=1.0, growth=2.0, n_buckets=12,
            )
        else:
            self._depth = self._fanin = None

    def put(self, key: Hashable, item: object) -> None:
        with self._cv:
            if self._closed:
                raise QueueClosed("queue is closed")
            self._items.append((key, item))
            depth = len(self._items)
            self._cv.notify()
        if self._depth is not None:
            self._depth.set(depth)

    def __len__(self) -> int:
        with self._cv:
            return len(self._items)

    def close(self) -> None:
        """Wake every blocked worker; subsequent puts/takes raise/return."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def take_batch(self, timeout: float | None = None) -> "list[object]":
        """Pop the oldest item plus every queued item sharing its key.

        Blocks up to ``timeout`` seconds for a first item (``None`` waits
        indefinitely); returns ``[]`` on timeout and raises
        :class:`QueueClosed` once the queue is closed *and* drained — a
        worker-pool shutdown still processes everything already enqueued.
        """
        with self._cv:
            while not self._items:
                if self._closed:
                    raise QueueClosed("queue is closed")
                if not self._cv.wait(timeout):
                    return []
        return self._drain_matching()

    def _drain_matching(self) -> "list[object]":
        with self._cv:
            if not self._items:
                return []
            key, first = self._items.popleft()
            batch = [first]
            rest: "deque[tuple[Hashable, object]]" = deque()
            while self._items:
                k, item = self._items.popleft()
                if k == key:
                    batch.append(item)
                else:
                    rest.append((k, item))
            self._items = rest
            depth = len(rest)
        if self._depth is not None:
            self._depth.set(depth)
            self._fanin.observe(len(batch))
        return batch


def run_worker(
    queue: RequestQueue,
    execute: Callable[[Sequence[object]], None],
    stop: threading.Event,
    poll_s: float = 0.05,
) -> None:
    """Worker-thread loop: take coalesced batches until stopped/closed.

    ``execute`` failures are contained per batch (the service resolves each
    request's future with a structured error), so one poisoned batch cannot
    kill the worker.
    """
    while not stop.is_set():
        try:
            batch = queue.take_batch(timeout=poll_s)
        except QueueClosed:
            return
        if batch:
            execute(batch)
