"""The explanation service layer: multi-tenant serving of DP explanations.

This package turns the batched engine (PR 1) and sweep layer (PR 2) into an
in-process, dependency-free *server*: per-(tenant, dataset) privacy ledgers
with crash-safe JSON persistence, a coalescing request queue + worker pool
(N concurrent identical-configuration requests cost one batched scoring
pass), a fingerprint-keyed explanation cache with post-processing-is-free
semantics, and a stdlib-only HTTP front end (``python -m repro serve``).

Quickstart::

    from repro import KMeans, diabetes_like
    from repro.service import ExplanationService, ServiceClient

    data = diabetes_like(n_rows=20_000)
    service = ExplanationService(ledger_dir="ledgers")
    service.register_dataset("diabetes", data, KMeans(5).fit(data, rng=0))
    service.create_tenant("alice", budget_limit=1.0)

    client = ServiceClient(service, tenant="alice", dataset="diabetes")
    response = client.explain(seed=0)        # charges 0.3 to alice's ledger
    repeat = client.explain(seed=0)          # cache hit: byte-identical, free
    assert repeat["result"] == response["result"]
"""

from .cache import CacheEntry, ExplanationCache, canonical_json
from .frontend import AsyncFrontend, ShardedService
from .http import ServiceHTTPServer, make_server, serve_forever
from .journal import LedgerStoreError, TenantLedgerStore
from .queue import QueueClosed, RequestQueue
from .registry import DatasetEntry, ServiceError, ServiceRegistry, Tenant
from .service import (
    ExplainRequest,
    ExplanationService,
    PipelineRequest,
    ServiceClient,
    explanation_payload,
)
from .shard import ShardWorker, WorkerConfig, shard_of, worker_main
from .supervisor import ShardSupervisor, SupervisorError
from .transport import (
    FrameError,
    FrameSocket,
    read_frame,
    read_frame_async,
    write_frame,
    write_frame_async,
)

__all__ = [
    "CacheEntry",
    "ExplanationCache",
    "canonical_json",
    "AsyncFrontend",
    "ShardedService",
    "ServiceHTTPServer",
    "make_server",
    "serve_forever",
    "LedgerStoreError",
    "TenantLedgerStore",
    "QueueClosed",
    "RequestQueue",
    "DatasetEntry",
    "ServiceError",
    "ServiceRegistry",
    "Tenant",
    "ExplainRequest",
    "ExplanationService",
    "PipelineRequest",
    "ServiceClient",
    "explanation_payload",
    "ShardWorker",
    "WorkerConfig",
    "shard_of",
    "worker_main",
    "ShardSupervisor",
    "SupervisorError",
    "FrameError",
    "FrameSocket",
    "read_frame",
    "read_frame_async",
    "write_frame",
    "write_frame_async",
]
