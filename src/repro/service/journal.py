"""Append-only ledger journal: O(1) durable persistence per charge.

Before PR 5 the service re-serialized the *entire* tenant snapshot after
every successful request — O(n) bytes of I/O per charge over a long-lived
ledger.  :class:`TenantLedgerStore` replaces that with write-ahead-log
persistence:

* **snapshot** (``<tenant>.json``) — the compacted base state, in the same
  shape as :meth:`~repro.service.registry.Tenant.snapshot` (and readable as
  one: PR 3/4-era snapshots load unchanged, their float epsilons quantized
  onto the accounting grid by
  :meth:`~repro.privacy.budget.PrivacyAccountant.restore`);
* **journal** (``<tenant>.journal``) — an append-only JSONL tail of every
  charge/refund since the snapshot, one fsync'd record per mutation, O(1)
  bytes per request;
* **crash replay** = snapshot + tail.  Replay is *idempotent*: charge
  records key on the accountant's persistent ``(dataset, token)`` charge
  identity, so a record that was already folded into the snapshot (crash
  between the compaction's snapshot write and its journal rewrite) applies
  as a no-op, and a refund of an already-folded removal skips cleanly.
* **compaction** — when the tail reaches ``compact_every`` records, the
  registry's next persistence checkpoint folds it back into the snapshot
  and rewrites the journal, keeping any record appended concurrently with
  the snapshot capture (idempotence makes the overlap safe).

Durability ordering: the store's :meth:`record` runs inside the
accountant's mutation hook (under the ledger lock), so a charge is on disk
*before* ``spend()`` returns — before the engine draws any noise against
it, and therefore before any response is released.  A crash can only lose
a charge that never funded a release (safe), or persist a charge whose
release never happened (overcounting — safe in the privacy direction).

The store raises :class:`LedgerStoreError` (a ``ValueError``) on corrupt
state; the registry maps it to its structured ``corrupt-ledger`` refusal.
A truncated *final* journal line (torn write at crash) is not corruption —
its record never committed, and the half-line is dropped on the next
rewrite.
"""

from __future__ import annotations

import json
import os
import threading
import time

from ..obs.tracing import span_histogram


class LedgerStoreError(ValueError):
    """Corrupt or inconsistent persisted ledger state."""


def _fsync_write(path: str, data: str) -> None:
    """Crash-safe whole-file write: temp file + fsync + atomic replace."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class TenantLedgerStore:
    """Snapshot + append-only journal for one tenant's privacy ledgers.

    One instance per persisted tenant, owned by the
    :class:`~repro.service.registry.ServiceRegistry`.  All methods are
    thread-safe; :meth:`record` is designed to be called from
    :meth:`PrivacyAccountant.set_observer
    <repro.privacy.budget.PrivacyAccountant.set_observer>` hooks (the lock
    order is always accountant-lock → store-lock, and the store never
    acquires accountant locks, so the two layers cannot deadlock).
    """

    SNAPSHOT_SUFFIX = ".json"
    JOURNAL_SUFFIX = ".journal"

    def __init__(self, base_path: str, *, compact_every: int = 256,
                 metrics=None):
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.base_path = os.fspath(base_path)
        self.snapshot_path = self.base_path + self.SNAPSHOT_SUFFIX
        self.journal_path = self.base_path + self.JOURNAL_SUFFIX
        self.compact_every = compact_every
        self._lock = threading.Lock()
        self._fh = None  # append handle, opened lazily
        self._seq = 0
        self._tail_records = 0  # journal records since the last compaction
        if metrics is not None:
            self._spans = span_histogram(metrics)
            self._m_records = metrics.counter(
                "repro_journal_records_total",
                "Charge/refund records appended to tenant journals.",
            )
            self._m_compactions = metrics.counter(
                "repro_journal_compactions_total",
                "Journal-tail folds into the base snapshot.",
            )
        else:
            self._spans = self._m_records = self._m_compactions = None

    # -- lifecycle -------------------------------------------------------- #

    @classmethod
    def create(cls, base_path: str, state: dict, *, compact_every: int = 256,
               metrics=None):
        """Initialise the store for a brand-new tenant.

        Writes the initial snapshot (the tenant's existence and cap must be
        durable before any charge references them) and an empty journal.
        """
        store = cls(base_path, compact_every=compact_every, metrics=metrics)
        store.compact(state)
        return store

    @classmethod
    def open(cls, base_path: str, *, compact_every: int = 256, metrics=None):
        """Open an existing store; returns ``(store, replayed_state)``.

        ``replayed_state`` is the crash-recovered tenant state — snapshot
        plus journal tail — in :meth:`Tenant.snapshot` shape, ready for
        :meth:`Tenant.restore`.  Raises :class:`LedgerStoreError` (or
        ``OSError``/``KeyError`` on unreadable files) when the persisted
        state is corrupt.
        """
        store = cls(base_path, compact_every=compact_every, metrics=metrics)
        state = store._replay()
        return store, state

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- journaling ------------------------------------------------------- #

    def record(self, dataset_id: str, event: dict) -> None:
        """Append one fsync'd charge/refund record — O(1) bytes, O(1) time.

        ``event`` is a :meth:`PrivacyAccountant.set_observer` event dict;
        the record adds the dataset id (one tenant journal covers all of
        the tenant's per-dataset ledgers) and a monotonic ``seq`` for
        ordering diagnostics.
        """
        t0 = time.perf_counter()
        with self._lock:
            self._seq += 1
            line = json.dumps(
                {"seq": self._seq, "dataset": dataset_id, **event},
                separators=(",", ":"),
            )
            fh = self._open_journal()
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
            self._tail_records += 1
        if self._spans is not None:
            self._spans.observe(time.perf_counter() - t0, ("journal-fsync",))
            self._m_records.inc()

    def _open_journal(self):
        if self._fh is None:
            self._fh = open(self.journal_path, "a")
        return self._fh

    @property
    def tail_records(self) -> int:
        """Journal records since the last compaction (the trigger metric)."""
        with self._lock:
            return self._tail_records

    def should_compact(self) -> bool:
        return self.tail_records >= self.compact_every

    def current_seq(self) -> int:
        """The seq of the newest committed record (the compaction fence).

        Read this *before* capturing the tenant snapshot you pass to
        :meth:`compact`: any record committed by then has seq <= this
        value, and — because the accountant mutates before it notifies,
        both under its ledger lock — its effect is necessarily visible to
        a snapshot taken afterwards.
        """
        with self._lock:
            return self._seq

    # -- compaction ------------------------------------------------------- #

    def compact(self, state: dict, covered_seq: int | None = None) -> None:
        """Fold the journal tail into a fresh snapshot of ``state``.

        ``covered_seq`` is the :meth:`current_seq` fence the caller read
        *before* capturing ``state``: every record with seq <= the fence is
        provably covered by the snapshot and is dropped from the journal;
        records that raced in during/after the capture may or may not be
        covered, so they are **kept**, and idempotent replay makes the
        possible overlap harmless.  ``covered_seq=None`` (tenant creation,
        post-restore rebase — no concurrent chargers by contract) folds
        everything.  A crash between the snapshot replace and the journal
        rewrite leaves snapshot + full old tail: replaying already-folded
        records is a no-op by the same idempotence.
        """
        body = {
            k: v for k, v in state.items() if k not in ("format", "journal_seq")
        }
        with self._lock:
            fence = self._seq if covered_seq is None else int(covered_seq)
            _fsync_write(
                self.snapshot_path,
                json.dumps(
                    {"format": 2, "journal_seq": fence, **body}, indent=2
                )
                + "\n",
            )
            tail, _ = self._read_journal_locked()
            tail = [rec for rec in tail if int(rec.get("seq", 0)) > fence]
            self._rewrite_journal_locked(tail)
        if self._m_compactions is not None:
            self._m_compactions.inc()

    def _rewrite_journal_locked(self, records: "list[dict]") -> None:
        """Atomically replace the journal contents.  Caller holds the lock."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        _fsync_write(
            self.journal_path,
            "".join(
                json.dumps(rec, separators=(",", ":")) + "\n" for rec in records
            ),
        )
        self._tail_records = len(records)

    # -- replay ----------------------------------------------------------- #

    def _replay(self) -> dict:
        """Rebuild tenant state: snapshot + idempotent journal tail replay."""
        try:
            with open(self.snapshot_path) as fh:
                state = json.load(fh)
        except FileNotFoundError:
            raise LedgerStoreError(
                f"journal {self.journal_path!r} has no base snapshot "
                f"{self.snapshot_path!r}"
            ) from None
        if not isinstance(state, dict):
            raise LedgerStoreError(f"snapshot {self.snapshot_path!r} is not an object")
        ledgers = state.setdefault("ledgers", {})
        # (dataset, token) -> charge entry, insertion-ordered per dataset.
        by_token: "dict[str, dict[int, dict]]" = {}
        tokenless: "dict[str, list[dict]]" = {}
        next_tokens: "dict[str, int]" = {}
        for dataset_id, ledger in ledgers.items():
            per = {}
            loose = []
            for entry in ledger.get("charges", ()):
                token = entry.get("token")
                if token is None:
                    loose.append(entry)  # pre-PR-5 snapshot rows
                else:
                    per[int(token)] = entry
            by_token[dataset_id] = per
            tokenless[dataset_id] = loose
            next_tokens[dataset_id] = int(ledger.get("next_token", 0))

        with self._lock:
            tail, dirty = self._read_journal_locked()
            if dirty:
                # A torn final line from a crash mid-append: its record
                # never committed.  Drop it from disk *now*, before any new
                # append would land after the half-line and corrupt the file.
                self._rewrite_journal_locked(tail)
            self._tail_records = len(tail)
        max_seq = 0
        for rec in tail:
            seq = int(rec.get("seq", 0))
            max_seq = max(max_seq, seq)
            dataset_id = str(rec["dataset"])
            per = by_token.setdefault(dataset_id, {})
            tokenless.setdefault(dataset_id, [])
            token = int(rec["token"])
            op = rec.get("op")
            if op == "charge":
                # Idempotent: a record already folded into the snapshot
                # (crash mid-compaction) re-applies as a no-op.
                if token not in per:
                    per[token] = {
                        "label": str(rec["label"]),
                        "epsilon": float(rec["epsilon"]),
                        "composition": str(rec.get("composition", "sequential")),
                        "units": int(rec["units"]),
                        "token": token,
                    }
            elif op == "refund":
                # Idempotent: refunds of an already-folded removal skip.
                per.pop(token, None)
            else:
                raise LedgerStoreError(
                    f"journal {self.journal_path!r} has unknown op {op!r}"
                )
            next_tokens[dataset_id] = max(
                next_tokens.get(dataset_id, 0), token + 1
            )

        limit = state.get("budget_limit")
        for dataset_id, per in by_token.items():
            charges = tokenless.get(dataset_id, []) + [
                per[t] for t in sorted(per)
            ]
            ledgers[dataset_id] = {
                "limit": limit,
                "next_token": next_tokens.get(dataset_id, 0),
                "charges": charges,
            }
        with self._lock:
            self._seq = max(self._seq, max_seq, int(state.get("journal_seq", 0)))
        state.pop("format", None)
        state.pop("journal_seq", None)
        return state

    def _read_journal_locked(self) -> "tuple[list[dict], bool]":
        """Parse the journal, tolerating only a torn *final* line.

        Returns ``(records, dirty)`` — ``dirty`` means the on-disk file has
        a trailing fragment that must be rewritten away before appending.
        """
        try:
            with open(self.journal_path) as fh:
                raw = fh.read()
        except FileNotFoundError:
            return [], False
        records: "list[dict]" = []
        lines = raw.split("\n")
        torn_tail = bool(lines and lines[-1] != "")  # no trailing newline
        if lines and lines[-1] == "":
            lines.pop()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            last = i == len(lines) - 1
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                if last and torn_tail:
                    return records, True  # the record never committed
                raise LedgerStoreError(
                    f"journal {self.journal_path!r} is corrupt at line {i + 1}"
                ) from None
            if not isinstance(rec, dict):
                raise LedgerStoreError(
                    f"journal {self.journal_path!r} line {i + 1} is not an object"
                )
            records.append(rec)
        # A complete final record missing only its newline is committed but
        # still needs the rewrite, or the next append glues to it.
        return records, torn_tail
