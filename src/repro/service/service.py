"""The in-process explanation service: coalesce → engine → cache → ledger.

One :class:`ExplanationService` instance serves concurrent explanation
requests from many tenants over registered datasets.  A request's lifecycle:

1. **Admission** — tenant and dataset are resolved against the
   :class:`~repro.service.registry.ServiceRegistry`; malformed parameters
   are refused with a 400-style envelope before touching any data.
2. **Cache probe** — a hit on the fingerprint-keyed
   :class:`~repro.service.cache.ExplanationCache` is re-served immediately:
   a DP release is public once computed, so the response is byte-identical
   to the original and **zero** budget is charged (post-processing is free).
3. **Coalescing** — misses enqueue on the
   :class:`~repro.service.queue.RequestQueue`; a worker drains every pending
   request sharing the same engine key (dataset + explainer configuration)
   into one batch.
4. **Ledger** — each *distinct* release in the batch is charged once, to the
   first requester with budget left, via the tenant's thread-safe
   :class:`~repro.privacy.budget.PrivacyAccountant`; over-budget requesters
   get a structured 429-style refusal without touching the data.  Charged
   ledgers persist crash-safely before the response is released.
5. **Engine** — all funded seeds run through
   :func:`~repro.evaluation.sweeps.explain_batched`: one batched scoring
   pass over the dataset's shared
   :class:`~repro.evaluation.sweeps.SweepContext`, then per-seed histogram
   releases whose bytes equal the serial ``DPClustX.explain`` path.
6. **Response** — payloads are cached and every waiting future resolves
   with an envelope recording how it was served (``miss`` — the payer,
   ``coalesced`` — a free rider in the same batch, or ``hit``).
"""

from __future__ import annotations

import threading
import time

from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..core.dpclustx import DPClustX
from ..core.hbe import GlobalExplanation
from ..core.quality.scores import Weights
from ..evaluation.sweeps import explain_batched
from ..obs.metrics import MetricsRegistry, histogram_quantile
from ..obs.tracing import attach_trace, new_trace_id, span_histogram, trace_id_of
from ..pipeline import ClusteringSpec, FittedClusteringCache
from ..privacy.budget import BudgetError, ExplanationBudget, PrivacyAccountant
from .cache import CacheEntry, ExplanationCache, canonical_json
from .queue import RequestQueue, run_worker
from .registry import DatasetEntry, ServiceRegistry, ServiceError, Tenant

_EXPLAINERS = ("DPClustX",)


@dataclass(frozen=True)
class ExplainRequest:
    """One tenant's explanation request over a registered dataset.

    The epsilon triple follows Algorithm 2 / Theorem 5.3 (defaults 0.1 each,
    Section 6.1); ``seed`` names the seed stream of the DP noise draws and is
    part of the cache key — two requests with equal parameters *and* seed
    are the same release.

    ``trace_id`` is observability metadata minted at the serving edge (or
    via :meth:`with_trace`): it rides the frame protocol inside
    ``asdict(request)`` and is tagged onto the response envelope, but is
    deliberately **not** part of :meth:`engine_key` / :meth:`cache_key` —
    tracing must never perturb coalescing, caching, or release bytes.
    """

    tenant: str
    dataset: str
    eps_cand_set: float = 0.1
    eps_top_comb: float = 0.1
    eps_hist: float = 0.1
    n_candidates: int = 3
    weights: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3)
    seed: int = 0
    explainer: str = "DPClustX"
    trace_id: str = ""

    def __post_init__(self) -> None:
        # Programmatic callers naturally pass weights as a list; normalise
        # to a tuple so cache_key()/engine_key() stay hashable.  Anything
        # else (wrong arity, non-floats) is rejected by validated().
        if isinstance(self.weights, list):
            object.__setattr__(self, "weights", tuple(self.weights))

    @classmethod
    def from_json(cls, body: Mapping) -> "ExplainRequest":
        """Build a request from a decoded JSON object (HTTP front end)."""
        if not isinstance(body, Mapping):
            raise ServiceError(400, "invalid-request", "body must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(body) - known
        if unknown:
            raise ServiceError(
                400, "invalid-request", f"unknown fields: {sorted(unknown)}"
            )
        kwargs = dict(body)
        try:
            for key in ("tenant", "dataset"):
                if key not in kwargs:
                    raise ServiceError(400, "invalid-request", f"{key!r} is required")
            if "weights" in kwargs:
                kwargs["weights"] = tuple(float(w) for w in kwargs["weights"])
            for key in ("eps_cand_set", "eps_top_comb", "eps_hist"):
                if key in kwargs:
                    kwargs[key] = float(kwargs[key])
            for key in ("n_candidates", "seed"):
                if key in kwargs:
                    kwargs[key] = int(kwargs[key])
            if "trace_id" in kwargs:
                kwargs["trace_id"] = str(kwargs["trace_id"])
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, "invalid-request", str(exc)) from None
        return cls(**kwargs)

    def with_trace(self, trace_id: str) -> "ExplainRequest":
        """A copy carrying ``trace_id`` (same release identity)."""
        return replace(self, trace_id=trace_id)

    def budget(self) -> ExplanationBudget:
        return ExplanationBudget(self.eps_cand_set, self.eps_top_comb, self.eps_hist)

    def weights_obj(self) -> Weights:
        return Weights(*self.weights)

    @property
    def epsilon_total(self) -> float:
        return self.eps_cand_set + self.eps_top_comb + self.eps_hist

    def validated(self) -> "ExplainRequest":
        """Parameter validation; raises a 400-style :class:`ServiceError`.

        Everything the engine could choke on is rejected here, *before* any
        budget is reserved — a malformed request must never burn budget.
        """
        for key in ("tenant", "dataset"):
            value = getattr(self, key)
            if not isinstance(value, str) or not value:
                raise ServiceError(
                    400, "invalid-request", f"{key!r} must be a non-empty string"
                )
        if self.explainer not in _EXPLAINERS:
            raise ServiceError(
                400,
                "invalid-request",
                f"unknown explainer {self.explainer!r}; supported: {_EXPLAINERS}",
            )
        if (
            not isinstance(self.weights, (tuple, list))
            or len(self.weights) != 3
        ):
            raise ServiceError(
                400,
                "invalid-request",
                f"weights must be a sequence of three floats, "
                f"got {self.weights!r}",
            )
        try:
            self.budget()
            self.weights_obj()
        except (BudgetError, TypeError, ValueError) as exc:
            raise ServiceError(400, "invalid-request", str(exc)) from None
        if self.n_candidates < 1:
            raise ServiceError(400, "invalid-request", "n_candidates must be >= 1")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ServiceError(400, "invalid-request", "seed must be an integer")
        if self.seed < 0:
            raise ServiceError(400, "invalid-request", "seed must be >= 0")
        if not isinstance(self.trace_id, str):
            raise ServiceError(400, "invalid-request", "trace_id must be a string")
        return self

    def engine_key(self) -> tuple:
        """The coalescing key: everything but the seed stream and tenant.

        Requests sharing this key share their true-score tensors, so one
        batched scoring pass serves all of them regardless of seed.
        """
        return (
            self.dataset,
            self.explainer,
            self.eps_cand_set,
            self.eps_top_comb,
            self.eps_hist,
            self.n_candidates,
            self.weights,
        )

    def cache_key(self, entry: DatasetEntry) -> tuple:
        """The release identity: fingerprints + parameters + seed stream."""
        return (
            entry.fingerprint,
            entry.signature,
            self.explainer,
            self.eps_cand_set,
            self.eps_top_comb,
            self.eps_hist,
            self.n_candidates,
            self.weights,
            self.seed,
        )


@dataclass(frozen=True)
class PipelineRequest:
    """One end-to-end pipeline request: fit DP clustering, then explain.

    Names a *labels-free* (or any) registered dataset, a server-fittable
    DP clustering (``method`` + parameters + ``clustering_seed`` — together
    the fitted-clustering release identity), and a standard explanation
    configuration.  The service charges both stages to the tenant's ledger
    for the **base** dataset id: one cap covers the whole pipeline.
    """

    tenant: str
    dataset: str
    method: str = "dp-kmeans"
    n_clusters: int = 5
    clustering_epsilon: float = 1.0  # the paper's DP-k-means budget (6.1)
    n_iterations: int = 5
    clustering_seed: int = 0
    eps_cand_set: float = 0.1
    eps_top_comb: float = 0.1
    eps_hist: float = 0.1
    n_candidates: int = 3
    weights: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3)
    seed: int = 0
    explainer: str = "DPClustX"
    trace_id: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.weights, list):
            object.__setattr__(self, "weights", tuple(self.weights))

    @classmethod
    def from_json(cls, body: Mapping) -> "PipelineRequest":
        """Build a request from a decoded JSON object (HTTP front end)."""
        if not isinstance(body, Mapping):
            raise ServiceError(400, "invalid-request", "body must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(body) - known
        if unknown:
            raise ServiceError(
                400, "invalid-request", f"unknown fields: {sorted(unknown)}"
            )
        kwargs = dict(body)
        try:
            for key in ("tenant", "dataset"):
                if key not in kwargs:
                    raise ServiceError(400, "invalid-request", f"{key!r} is required")
            if "weights" in kwargs:
                kwargs["weights"] = tuple(float(w) for w in kwargs["weights"])
            for key in (
                "eps_cand_set",
                "eps_top_comb",
                "eps_hist",
                "clustering_epsilon",
            ):
                if key in kwargs:
                    kwargs[key] = float(kwargs[key])
            for key in (
                "n_candidates",
                "seed",
                "n_clusters",
                "n_iterations",
                "clustering_seed",
            ):
                if key in kwargs:
                    kwargs[key] = int(kwargs[key])
            if "trace_id" in kwargs:
                kwargs["trace_id"] = str(kwargs["trace_id"])
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, "invalid-request", str(exc)) from None
        return cls(**kwargs)

    def with_trace(self, trace_id: str) -> "PipelineRequest":
        """A copy carrying ``trace_id`` (same release identity)."""
        return replace(self, trace_id=trace_id)

    def spec(self) -> ClusteringSpec:
        """The clustering half of the request as its release identity."""
        return ClusteringSpec(
            self.method,
            self.n_clusters,
            self.clustering_epsilon,
            self.n_iterations,
            self.clustering_seed,
        )

    def explain_request(self, dataset_id: str | None = None) -> ExplainRequest:
        """The explanation half, targeting ``dataset_id`` (default: base)."""
        return ExplainRequest(
            tenant=self.tenant,
            dataset=dataset_id if dataset_id is not None else self.dataset,
            eps_cand_set=self.eps_cand_set,
            eps_top_comb=self.eps_top_comb,
            eps_hist=self.eps_hist,
            n_candidates=self.n_candidates,
            weights=self.weights,
            seed=self.seed,
            explainer=self.explainer,
            trace_id=self.trace_id,
        )

    def validated(self) -> "PipelineRequest":
        """400-style validation of both halves before any budget moves."""
        try:
            self.spec().validated()
        except (BudgetError, TypeError, ValueError) as exc:
            raise ServiceError(400, "invalid-request", str(exc)) from None
        self.explain_request().validated()
        return self


def _request_class(envelope: dict) -> str:
    """The latency class of a resolved envelope: how the request was served."""
    meta = envelope.get("meta")
    if meta and "cache" in meta:
        return str(meta["cache"])  # "hit" | "miss" | "coalesced"
    if envelope.get("status") == "refused":
        return "refused"
    return "error"


@dataclass
class _Pending:
    """One queued request and the future its caller is waiting on.

    ``enqueued`` is stamped at admission, so :meth:`resolve` can record the
    full enqueue→resolve wall time — queue wait, coalescing, funding, and
    the engine pass — in the service's latency histograms, classed by how
    the request was ultimately served.
    """

    request: ExplainRequest
    stats: "_Stats | None" = None
    future: "Future[dict]" = field(default_factory=Future)
    enqueued: float = field(default_factory=time.monotonic)

    def resolve(self, envelope: dict) -> None:
        if not self.future.done():
            envelope = attach_trace(envelope, self.request.trace_id)
            if self.stats is not None:
                self.stats.observe(
                    _request_class(envelope), time.monotonic() - self.enqueued
                )
            self.future.set_result(envelope)


class _Stats:
    """Service counters + per-class latency histograms on the obs registry.

    Historically this class owned its own per-thread sharded counters;
    those now live in :class:`~repro.obs.metrics.MetricsRegistry` (which
    generalised the same trick), and ``_Stats`` is the service-facing view:
    the lifecycle counter family ``repro_service_events_total{event=...}``
    and the enqueue→resolve latency histogram
    ``repro_request_duration_seconds{class=...}``.  One code path serves
    ``/v1/stats``, ``/metrics``, and cross-worker snapshot merging.

    The latency geometry is unchanged from the pre-registry histograms:
    geometric buckets from 100µs up, factor √2 (half-powers of two), 44
    buckets covering past 200s — beyond every timeout in the service.
    """

    FIELDS = (
        "requests",
        "cache_hits",
        "cache_misses",
        "coalesced",
        "refused",
        "errors",
        "engine_calls",
        "releases",
        "pipeline_requests",
        "clustering_fits",
        "clustering_cache_hits",
    )

    def __init__(self, n_shards: int = 8, registry: "MetricsRegistry | None" = None):
        self.registry = (
            registry if registry is not None else MetricsRegistry(n_shards=n_shards)
        )
        self._events = self.registry.counter(
            "repro_service_events_total",
            "Service lifecycle events by kind (requests, hits, refusals...).",
            ("event",),
        )
        self._latency = self.registry.histogram(
            "repro_request_duration_seconds",
            "Enqueue-to-resolve request latency by serving class.",
            ("class",),
        )

    def incr(self, field_name: str, by: int = 1) -> None:
        self._events.inc(by, (field_name,))

    def observe(self, request_class: str, seconds: float) -> None:
        """Record one enqueue→resolve latency under ``request_class``."""
        self._latency.observe(seconds, (request_class,))

    def get(self, field_name: str) -> int:
        return self._events.value((field_name,))

    def as_dict(self) -> dict:
        merged = {f: 0 for f in self.FIELDS}
        for (event,), value in self._events.series().items():
            merged[event] = merged.get(event, 0) + value
        return merged

    def latency_summary(self) -> dict:
        """Merged per-class latency: count + p50/p99 (the /v1/stats block).

        Quantiles are bucket upper bounds — within one √2 factor of the
        true value, which is the resolution tail-latency dashboards need
        without the service ever holding per-request samples.
        """
        hist = self._latency
        summary = {}
        for (klass,), (buckets, count, _sum) in sorted(hist.series().items()):
            summary[klass] = {
                "count": count,
                "p50_s": histogram_quantile(buckets, 0.50, hist.base, hist.growth),
                "p99_s": histogram_quantile(buckets, 0.99, hist.base, hist.growth),
            }
        return summary


def explanation_payload(
    request: ExplainRequest, entry: DatasetEntry, explanation: GlobalExplanation
) -> dict:
    """The JSON response body for one released explanation.

    Every field is a pure function of the cache key, so re-serialising the
    payload is byte-stable — the property the cache's canonical encoding
    and the byte-identity tests rely on.
    """
    return {
        "dataset": entry.dataset_id,
        "fingerprint": entry.fingerprint,
        "signature": entry.signature,
        "explainer": request.explainer,
        "seed": request.seed,
        "n_candidates": request.n_candidates,
        "weights": [float(w) for w in request.weights],
        "epsilon": {
            "cand_set": request.eps_cand_set,
            "top_comb": request.eps_top_comb,
            "hist": request.eps_hist,
            "total": request.epsilon_total,
        },
        "combination": list(explanation.combination),
        "clusters": [
            {
                "cluster": e.cluster,
                "attribute": e.attribute.name,
                "domain": list(e.attribute.domain),
                "hist_cluster": [float(x) for x in e.hist_cluster],
                "hist_rest": [float(x) for x in e.hist_rest],
            }
            for e in explanation
        ],
    }


class ExplanationService:
    """Multi-tenant explanation server over registered datasets.

    Parameters
    ----------
    registry:
        Optional pre-built :class:`ServiceRegistry`; by default a fresh one
        (persisting under ``ledger_dir`` when given).
    ledger_dir:
        Directory for per-tenant JSON privacy ledgers; existing ledgers are
        reloaded, so a restarted service keeps refusing what a crashed one
        could no longer afford.
    cache_entries:
        LRU capacity of the explanation cache.
    fitted_entries:
        LRU capacity of the server-side fitted-clustering cache; evicted
        fits also drop their derived registry entries, bounding total
        memory (a later identical request re-fits byte-identically and
        legitimately re-charges — overcounting, never leaking).
    auto_tenant_budget:
        When set, unknown tenants are auto-provisioned with this per-dataset
        budget cap on their first request (the demo server's mode); when
        ``None``, unknown tenants are refused.
    """

    def __init__(
        self,
        registry: ServiceRegistry | None = None,
        *,
        ledger_dir=None,
        cache_entries: int = 256,
        fitted_entries: int = 64,
        auto_tenant_budget: float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        if registry is not None and ledger_dir is not None:
            raise ValueError("pass ledger_dir to the registry or here, not both")
        # One metrics registry per service instance — adopted from the
        # service registry when one is passed in (so budget/journal
        # instrumentation and request instrumentation land in the same
        # snapshot), else created here and shared downward.
        if registry is not None:
            self.registry = registry
            self.metrics = metrics if metrics is not None else registry.metrics
        else:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self.registry = ServiceRegistry(
                ledger_dir=ledger_dir, metrics=self.metrics
            )
        self.cache = ExplanationCache(cache_entries, metrics=self.metrics)
        # Server-side fitted clusterings (the /v1/pipeline route), keyed by
        # (fingerprint, method, params, seed).  LRU evictions also drop the
        # fit's derived registry entry (on_evict), so the registry stays
        # bounded by this cache's capacity.  Fills are single-flight per
        # key via striped locks: concurrent identical pipeline requests
        # charge one clustering fit, not N, while fits of *different* keys
        # (almost always on different stripes) proceed in parallel.
        self.fitted = FittedClusteringCache(
            fitted_entries, on_evict=self._on_fitted_evicted, metrics=self.metrics
        )
        self._fit_stripes = [threading.Lock() for _ in range(16)]
        self.stats = _Stats(registry=self.metrics)
        self._spans = span_histogram(self.metrics)
        self._budget_refusals = self.metrics.counter(
            "repro_budget_refusals_total",
            "Requests refused because the tenant ledger could not cover them.",
            ("tenant", "dataset"),
        )
        self.auto_tenant_budget = auto_tenant_budget
        self._queue = RequestQueue(metrics=self.metrics)
        self._stop = threading.Event()
        self._workers: list[threading.Thread] = []
        self._drain_lock = threading.Lock()
        # In-flight release claims: cache key -> Event set when the owning
        # worker has either filled the cache or given up.  Closes the
        # probe→compute window so two worker batches can never charge the
        # same release twice.
        self._inflight: "dict[tuple, threading.Event]" = {}
        self._inflight_lock = threading.Lock()

    # -- registry passthroughs ------------------------------------------ #

    def register_dataset(
        self, dataset_id, dataset, clustering=None, n_clusters=None
    ):
        """Register/replace a dataset and evict the old version's releases.

        ``clustering=None`` registers the dataset labels-free: explainable
        only through ``/v1/pipeline``, which fits a DP clustering
        server-side under the tenant's ledger.

        The release identity is the (fingerprint, signature) pair, so a
        replacement that keeps the data but changes the clustering (same
        fingerprint, new signature) also orphans every old cache entry —
        evict on any change of the pair, not just the fingerprint, or dead
        entries would squat in LRU slots crowding out live releases.  The
        same replacement also evicts the id's server-side fitted
        clusterings and their derived registry entries: they reference the
        replaced dataset object and must not keep serving it (a later
        re-fit of the same spec is byte-identical, so at worst the re-fit
        re-charges for the same release — overcounting, never leaking).
        """
        try:
            old = self.registry.dataset(dataset_id)
        except ServiceError:
            old = None
        entry = self.registry.register_dataset(
            dataset_id, dataset, clustering, n_clusters
        )
        if old is not None and (old.fingerprint, old.signature) != (
            entry.fingerprint,
            entry.signature,
        ):
            self.cache.invalidate_fingerprint(old.fingerprint)
            self.fitted.invalidate_fingerprint(old.fingerprint)
            for stale in self.registry.drop_derived(dataset_id):
                self.cache.invalidate_fingerprint(stale.fingerprint)
                self.fitted.invalidate_fingerprint(stale.fingerprint)
        return entry

    def create_tenant(self, tenant_id: str, budget_limit: float) -> Tenant:
        tenant = self.registry.create_tenant(tenant_id, budget_limit)
        self.registry.persist_tenant(tenant)
        return tenant

    # -- request entry points ------------------------------------------- #

    def submit(self, request: ExplainRequest) -> "Future[dict]":
        """Admit a request; returns a future resolving to the envelope.

        A request arriving without a trace id is minted one here — the
        in-process edge.  The id rides the (dataclass-copied) request
        through coalescing and is attached to the envelope's meta/error
        block on resolve; it is *not* part of the engine or cache key, so
        tracing never perturbs coalescing, caching, or released bytes.
        """
        if not request.trace_id:
            request = request.with_trace(new_trace_id())
        pending = _Pending(request, self.stats)
        self.stats.incr("requests")
        try:
            request.validated()
            entry = self.registry.dataset(request.dataset)
            self.registry.tenant(request.tenant, self.auto_tenant_budget)
            if entry.counts is None:
                raise ServiceError(
                    400,
                    "no-clustering",
                    f"dataset {request.dataset!r} is registered without a "
                    "clustering; fit one server-side via /v1/pipeline",
                )
            names = entry.dataset.schema.names
            if request.n_candidates > len(names):
                raise ServiceError(
                    400,
                    "invalid-request",
                    f"n_candidates={request.n_candidates} exceeds the "
                    f"{len(names)} attributes of "
                    f"{request.dataset!r}",
                )
        except ServiceError as exc:
            self.stats.incr("errors")
            pending.resolve(self._error_envelope(exc))
            return pending.future
        t0 = time.perf_counter()
        cached = self.cache.get(request.cache_key(entry))
        self._spans.observe(time.perf_counter() - t0, ("cache-lookup",))
        if cached is not None:
            self.stats.incr("cache_hits")
            pending.resolve(self._ok_envelope(request, cached, "hit", 0.0))
            return pending.future
        self._queue.put(request.engine_key(), pending)
        return pending.future

    def explain(
        self,
        request: ExplainRequest | None = None,
        timeout: float = 60.0,
        **kwargs,
    ) -> dict:
        """Synchronous request: submit, (inline-drain if no workers), wait."""
        if request is None:
            request = ExplainRequest(**kwargs)
        future = self.submit(request)
        if not self._workers and not future.done():
            self.process_pending()
        return future.result(timeout)

    def pipeline(
        self,
        request: PipelineRequest | None = None,
        timeout: float = 60.0,
        **kwargs,
    ) -> dict:
        """Serve one end-to-end pipeline request: fit-or-cache, then explain.

        Lifecycle: admission (both halves validated before any budget
        moves) → fitted-clustering cache probe keyed by
        ``(fingerprint, method, params, seed)`` — a hit reuses the released
        fit at **zero** clustering charge (post-processing is free) — →
        on a miss, the clustering epsilon is reserved atomically on the
        tenant's *base-dataset* ledger before the fit draws any noise
        (over-budget → structured 429, fit failure → token refund), the
        clustering is fitted server-side and registered as a derived
        dataset entry → the explanation half is routed through the
        standard :meth:`explain` path (cache, coalescing, per-release
        funding) against the derived entry, whose charges land in the
        *same* base-dataset ledger.

        The returned envelope is the explanation envelope plus a
        ``"pipeline"`` block recording the fitted clustering and what the
        clustering stage charged.
        """
        if request is None:
            request = PipelineRequest(**kwargs)
        if not request.trace_id:
            request = request.with_trace(new_trace_id())
        self.stats.incr("pipeline_requests")
        try:
            request.validated()
            base = self.registry.dataset(request.dataset)
            self.registry.tenant(request.tenant, self.auto_tenant_budget)
            names = base.dataset.schema.names
            if request.n_candidates > len(names):
                raise ServiceError(
                    400,
                    "invalid-request",
                    f"n_candidates={request.n_candidates} exceeds the "
                    f"{len(names)} attributes of {request.dataset!r}",
                )
        except ServiceError as exc:
            self.stats.incr("errors")
            return attach_trace(self._error_envelope(exc), request.trace_id)
        spec = request.spec()
        try:
            entry, fit_status, charged_fit = self._fitted_entry(
                base, spec, request.tenant
            )
        except BudgetError as exc:
            self.stats.incr("refused")
            self._budget_refusals.inc(1, (request.tenant, request.dataset))
            tenant = self.registry.tenant(request.tenant, self.auto_tenant_budget)
            accountant = tenant.accountant(base.base_id)
            envelope = attach_trace(
                self._budget_refusal(
                    request.tenant, request.dataset, spec.epsilon, accountant, exc
                ),
                request.trace_id,
            )
            envelope["error"]["stage"] = "clustering"
            return envelope
        except ServiceError as exc:
            self.stats.incr("errors")
            return attach_trace(self._error_envelope(exc), request.trace_id)
        except Exception as exc:  # noqa: BLE001 — fit failure must not 500 raw
            self.stats.incr("errors")
            # Redacted: exception text can embed raw rows/counts a deep
            # layer interpolated; tenants get the type name and a code.
            return attach_trace(
                self._error_envelope(
                    ServiceError(500, "internal-error", type(exc).__name__)
                ),
                request.trace_id,
            )
        envelope = self.explain(
            request.explain_request(entry.dataset_id), timeout=timeout
        )
        envelope["pipeline"] = {
            "dataset": request.dataset,
            "fitted_dataset": entry.dataset_id,
            "clustering": {**spec.describe(), "signature": entry.signature},
            "clustering_cache": fit_status,
            "charged_clustering_epsilon": charged_fit,
        }
        meta = envelope.get("meta")
        if meta is not None:
            meta["charged_total_epsilon"] = charged_fit + meta.get(
                "charged_epsilon", 0.0
            )
        return envelope

    def _on_fitted_evicted(self, key: tuple, entry: DatasetEntry) -> None:
        """LRU pressure dropped a fit: drop its derived registry entry too.

        Identity-guarded (:meth:`ServiceRegistry.remove_entry`), so a newer
        registration reusing the derived id is never collateral damage.
        Without this, the registry would be an unbounded shadow store of
        every fit the cache already let go.
        """
        self.registry.remove_entry(entry)

    def _fit_stripe(self, key: tuple) -> threading.Lock:
        return self._fit_stripes[hash(key) % len(self._fit_stripes)]

    def _still_registered(self, entry: DatasetEntry) -> bool:
        try:
            return self.registry.dataset(entry.dataset_id) is entry
        except ServiceError:
            return False

    def _fitted_entry(
        self, base: DatasetEntry, spec: ClusteringSpec, tenant_id: str
    ) -> "tuple[DatasetEntry, str, float]":
        """Fit-or-cache the requested DP clustering under the tenant ledger.

        Returns ``(derived entry, "hit"|"miss", charged epsilon)``.  Fills
        are single-flight per cache key (striped locks), so concurrent
        pipeline requests naming the same ``(fingerprint, method, params,
        seed)`` release fit and charge exactly once while unrelated fits
        proceed in parallel.  On a genuine miss, the clustering epsilon is
        reserved (atomic check-and-charge, may raise
        :class:`~repro.privacy.budget.BudgetError`) *before* the fit
        touches data, and refunded by token if the fit itself fails — so
        an over-budget or crashed fit provably draws no noise that the
        ledger doesn't cover.  A base re-registered *mid-fit* is detected
        by the atomic :meth:`ServiceRegistry.add_entry_if_current` admit:
        the never-exposed fit is discarded, its reservation refunded, and
        the caller told to retry against the new registration.
        """
        key = spec.cache_key(base.fingerprint)
        cached = self.fitted.get(key)
        if cached is not None and self._still_registered(cached):
            self.stats.incr("clustering_cache_hits")
            return cached, "hit", 0.0
        with self._fit_stripe(key):
            cached = self.fitted.get(key)
            if cached is not None:
                if self._still_registered(cached):
                    self.stats.incr("clustering_cache_hits")
                    return cached, "hit", 0.0
                # Its registry entry was dropped (base replaced mid-put):
                # the cached fit is stale bookkeeping — evict and refit.
                self.fitted.remove(key)
            derived_id = f"{base.dataset_id}::{spec.slug()}"
            # A derived entry still registered over the same base data
            # (e.g. after a cache clear) is the same release — re-adopt it
            # rather than re-charging.
            try:
                existing = self.registry.dataset(derived_id)
            except ServiceError:
                existing = None
            if (
                existing is not None
                and existing.fingerprint == base.fingerprint
                and existing.base_id == base.base_id
            ):
                self.fitted.put(key, existing)
                self.stats.incr("clustering_cache_hits")
                return existing, "hit", 0.0
            tenant = self.registry.tenant(tenant_id, self.auto_tenant_budget)
            accountant = tenant.accountant(base.base_id)
            token = accountant.spend(spec.epsilon, spec.label(base.dataset_id))
            try:
                clustering = spec.fit(base.dataset)
                entry = DatasetEntry(
                    derived_id,
                    base.dataset,
                    clustering,
                    base_id=base.base_id,
                    clustering_spec=spec,
                )
            except Exception:
                accountant.refund(token)
                self.registry.persist_tenant(tenant)
                raise
            if not self.registry.add_entry_if_current(entry, base):
                # The base was re-registered while we fitted: this fit ran
                # on the replaced data and was never exposed to anyone, so
                # the reservation rolls back and the caller retries
                # against the new registration.
                accountant.refund(token)
                self.registry.persist_tenant(tenant)
                raise ServiceError(
                    409,
                    "dataset-replaced",
                    f"dataset {base.dataset_id!r} was re-registered during "
                    "the clustering fit; retry",
                )
            self.fitted.put(key, entry)
            self.registry.persist_tenant(tenant)
            self.stats.incr("clustering_fits")
            return entry, "miss", spec.epsilon

    def process_pending(self) -> int:
        """Drain the queue inline (single-threaded mode); returns batch count.

        Serialised by a lock so concurrent HTTP handler threads on a
        worker-less service don't interleave batch executions.
        """
        n = 0
        with self._drain_lock:
            while True:
                batch = self._queue.take_batch(timeout=0)
                if not batch:
                    return n
                self._execute_batch(batch)
                n += 1

    # -- worker pool ----------------------------------------------------- #

    def start(self, workers: int = 2) -> "ExplanationService":
        """Spin up the worker pool (idempotent start is an error)."""
        if self._workers:
            raise RuntimeError("service is already started")
        if workers < 1:
            raise ValueError("need at least one worker")
        self._stop.clear()
        for i in range(workers):
            t = threading.Thread(
                target=run_worker,
                args=(self._queue, self._execute_batch, self._stop),
                name=f"explain-worker-{i}",
                daemon=True,
            )
            t.start()
            self._workers.append(t)
        return self

    def stop(self) -> None:
        """Stop workers, then drain any stragglers so no future hangs."""
        self._stop.set()
        for t in self._workers:
            t.join(timeout=10.0)
        self._workers = []
        self.process_pending()
        # Shutdown checkpoint: fold every tenant's journal tail back into
        # its snapshot so a clean restart replays nothing.
        self.registry.persist_all()

    def __enter__(self) -> "ExplanationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- batch execution -------------------------------------------------- #

    def _execute_batch(self, batch: Sequence[_Pending]) -> None:
        """Serve one coalesced batch; every future resolves, come what may."""
        try:
            self._serve_batch(list(batch))
        except ServiceError as exc:
            for p in batch:
                p.resolve(self._error_envelope(exc))
        except Exception as exc:  # noqa: BLE001 — worker must not die
            envelope = self._error_envelope(
                ServiceError(500, "internal-error", type(exc).__name__)
            )
            for p in batch:
                p.resolve(envelope)

    def _serve_batch(self, batch: "list[_Pending]") -> None:
        request0 = batch[0].request
        entry = self.registry.dataset(request0.dataset)
        explainer = DPClustX(
            request0.n_candidates, request0.weights_obj(), request0.budget()
        )

        # Group by release identity: duplicates (same seed & params) share
        # one DP release — the first funded requester pays, the rest ride
        # free under post-processing.
        groups: "dict[tuple, list[_Pending]]" = {}
        for p in batch:
            groups.setdefault(p.request.cache_key(entry), []).append(p)

        # Claim each missing key or defer to the worker already computing
        # it; never block while holding claims (no crossed waits).
        claimed: "list[tuple[tuple, list[_Pending], threading.Event]]" = []
        deferred: "list[tuple[tuple, list[_Pending]]]" = []
        for key, group in groups.items():
            cached = self.cache.get(key)
            if cached is not None:
                self._resolve_hits(group, cached)
                continue
            acquired, event = self._try_claim(key)
            if acquired:
                claimed.append((key, group, event))
            else:
                deferred.append((key, group))

        if claimed:
            self._compute_groups(entry, explainer, claimed)
        for key, group in deferred:
            self._serve_deferred(entry, explainer, key, group)

    def _compute_groups(
        self,
        entry: DatasetEntry,
        explainer: DPClustX,
        items: "list[tuple[tuple, list[_Pending], threading.Event]]",
    ) -> None:
        """Fund and compute claimed release groups in one batched pass.

        Budget is *reserved* before the engine runs (the atomic
        check-and-charge is what makes caps unbreakable under concurrency)
        and rolled back via
        :meth:`~repro.privacy.budget.PrivacyAccountant.refund` — by the
        charge token :meth:`~repro.privacy.budget.PrivacyAccountant.spend`
        returned at reservation time, so a failed batch can only ever remove
        its *own* reservations, never another request's recorded release
        (two requests may share a label: same dataset+seed, different
        epsilon config).  A failed request must not burn its tenant's
        budget.  Claims are always released.
        """
        try:
            funded: "list[tuple[tuple, list[_Pending], _Pending, Tenant, int]]" = []
            for key, group, _ in items:
                payer, tenant, charge_token = self._fund_group(entry, group)
                if payer is not None:
                    funded.append((key, group, payer, tenant, charge_token))
            if not funded:
                return

            self.stats.incr("engine_calls")
            seeds = [payer.request.seed for _, _, payer, _, _ in funded]
            try:
                explanations = explain_batched(
                    explainer,
                    entry.counts,
                    seeds,
                    context=entry.context,
                    metrics=self.metrics,
                )
            except Exception:
                for key, group, payer, tenant, charge_token in funded:
                    accountant = tenant.accountant(entry.base_id)
                    accountant.refund(charge_token)
                    self.registry.persist_tenant(tenant)
                raise  # _execute_batch resolves the futures with a 500

            self.stats.incr("releases", len(funded))
            for (key, group, payer, tenant, _), explanation in zip(
                funded, explanations
            ):
                payload = explanation_payload(payer.request, entry, explanation)
                cache_entry = CacheEntry(
                    canonical_json(payload), payer.request.epsilon_total
                )
                self.cache.put(key, cache_entry)
                self.registry.persist_tenant(tenant)
                for p in group:
                    if p.future.done():
                        continue  # refused while seeking a payer
                    if p is payer:
                        self.stats.incr("cache_misses")
                        p.resolve(
                            self._ok_envelope(
                                p.request,
                                cache_entry,
                                "miss",
                                p.request.epsilon_total,
                            )
                        )
                    else:
                        self.stats.incr("coalesced")
                        p.resolve(
                            self._ok_envelope(p.request, cache_entry, "coalesced", 0.0)
                        )
        finally:
            for key, _, claim_event in items:
                self._release_claim(key, claim_event)

    # A deferred group waits at most DEFERRED_TIMEOUT_SECONDS of *elapsed*
    # time for the claim owner before giving up with a 503 — a wedged owner
    # must not pin a worker thread (and its callers' futures) forever.  The
    # total is deliberately below explain()'s default 60s future timeout so
    # the structured 503 reaches HTTP callers before the blunt 504 does.
    # DEFERRED_WAIT_SECONDS only paces the cache re-probes within that
    # deadline.
    DEFERRED_TIMEOUT_SECONDS = 45.0
    DEFERRED_WAIT_SECONDS = 5.0

    def _serve_deferred(
        self,
        entry: DatasetEntry,
        explainer: DPClustX,
        key: tuple,
        group: "list[_Pending]",
    ) -> None:
        """Wait for another worker's in-flight release of ``key``.

        Normally the owner fills the cache and this resolves as hits; if
        the owner failed (or its payer was refused), the first waiter to
        re-claim computes the release itself.  The wait is bounded by a
        monotonic deadline (not a wake-up count, so early event churn
        cannot shorten it); when it expires the *stale claim is evicted* —
        otherwise a dead owner would wedge the key forever, with every
        retry pinning a worker for the full timeout — and the group
        resolves with a 503-style envelope.  Evicting a claim whose owner
        is merely slow can at worst charge the same release twice, which
        overcounts spend: safe in the privacy direction.
        """
        deadline = time.monotonic() + self.DEFERRED_TIMEOUT_SECONDS
        while True:
            cached = self.cache.get(key)
            if cached is not None:
                self._resolve_hits(group, cached)
                return
            acquired, event = self._try_claim(key)
            if acquired:
                self._compute_groups(entry, explainer, [(key, group, event)])
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            event.wait(timeout=min(remaining, self.DEFERRED_WAIT_SECONDS))
        # Deadline expired on a still-claimed key: evict the stale claim so
        # later requests can re-claim, wake any other waiters to re-probe,
        # and give the cache one last look (the owner may have finished as
        # the deadline ran out).
        with self._inflight_lock:
            if self._inflight.get(key) is event:
                del self._inflight[key]
        event.set()
        cached = self.cache.get(key)
        if cached is not None:
            self._resolve_hits(group, cached)
            return
        self.stats.incr("errors")
        envelope = self._error_envelope(
            ServiceError(
                503,
                "release-timeout",
                "timed out waiting for another worker's in-flight release "
                "of the same request; retry",
            )
        )
        for p in group:
            p.resolve(envelope)

    def _resolve_hits(self, group: "list[_Pending]", cached: CacheEntry) -> None:
        for p in group:
            self.stats.incr("cache_hits")
            p.resolve(self._ok_envelope(p.request, cached, "hit", 0.0))

    def _try_claim(self, key: tuple) -> "tuple[bool, threading.Event]":
        """Claim ``key`` for this worker.

        Returns ``(True, our_event)`` when the claim was acquired (the
        caller must eventually :meth:`_release_claim` that exact event) or
        ``(False, owner_event)`` to wait on the current owner.
        """
        with self._inflight_lock:
            event = self._inflight.get(key)
            if event is None:
                event = threading.Event()
                self._inflight[key] = event
                return True, event
            return False, event

    def _release_claim(self, key: tuple, event: threading.Event) -> None:
        """Release our claim on ``key`` and wake its waiters.

        Only removes the in-flight entry if it is still *our* event — a
        timed-out waiter may have evicted the claim and a third worker
        re-claimed the key, and their claim must not be torn down mid-compute.
        """
        with self._inflight_lock:
            if self._inflight.get(key) is event:
                del self._inflight[key]
        event.set()

    @staticmethod
    def _charge_label(request: ExplainRequest) -> str:
        """The ledger line for one release: the full release identity.

        Refunds go by charge token, not by this label, so the label is pure
        audit trail — but it still records every parameter that makes the
        release distinct (the eps triple, n_candidates, weights), so a human
        reading the persisted ledger can tell two same-seed charges apart.
        """
        return (
            f"service: {request.explainer} dataset={request.dataset} "
            f"seed={request.seed} "
            f"eps=({request.eps_cand_set},{request.eps_top_comb},"
            f"{request.eps_hist}) k={request.n_candidates} "
            f"w={request.weights}"
        )

    def _fund_group(
        self, entry: DatasetEntry, group: "list[_Pending]"
    ) -> "tuple[_Pending | None, Tenant | None, int | None]":
        """Charge the first requester whose ledger can afford the release.

        The ledger is the tenant's ``entry.base_id`` ledger — for derived
        (pipeline-fitted) datasets that is the *base* dataset's ledger, so
        clustering and explanation charges share one cap.  Requesters
        refused along the way get their 429 envelope immediately; the
        accountant's atomic check-and-charge is what makes the cap
        unbreakable under concurrent batches.  Returns the payer, its
        tenant, and the charge token to :meth:`refund
        <repro.privacy.budget.PrivacyAccountant.refund>` by on engine
        failure.
        """
        for p in group:
            request = p.request
            tenant = self.registry.tenant(request.tenant, self.auto_tenant_budget)
            accountant = tenant.accountant(entry.base_id)
            try:
                token = accountant.spend(
                    request.epsilon_total, self._charge_label(request)
                )
                return p, tenant, token
            except BudgetError as exc:
                self.stats.incr("refused")
                self._budget_refusals.inc(1, (request.tenant, request.dataset))
                p.resolve(self._refusal_envelope(request, accountant, exc))
        return None, None, None

    # -- envelopes -------------------------------------------------------- #

    def _ok_envelope(
        self,
        request: ExplainRequest,
        entry: CacheEntry,
        cache_status: str,
        charged: float,
    ) -> dict:
        return {
            "status": "ok",
            "code": 200,
            "result": entry.payload(),
            "meta": {
                "cache": cache_status,
                "charged_epsilon": charged,
                "tenant": request.tenant,
                "dataset": request.dataset,
            },
        }

    def _refusal_envelope(
        self,
        request: ExplainRequest,
        accountant: PrivacyAccountant,
        exc: BudgetError,
    ) -> dict:
        """The structured 429-style over-budget refusal."""
        return self._budget_refusal(
            request.tenant,
            request.dataset,
            request.epsilon_total,
            accountant,
            exc,
        )

    def _budget_refusal(
        self,
        tenant_id: str,
        dataset_id: str,
        requested: float,
        accountant: PrivacyAccountant,
        exc: BudgetError,
    ) -> dict:
        # One locked read: spent/remaining/limit move together, so a
        # concurrent charge can never make this envelope report
        # spent + remaining != limit.
        balance = accountant.balance()
        return {
            "status": "refused",
            "code": 429,
            "error": {
                "reason": "budget-exhausted",
                "message": str(exc),
                "tenant": tenant_id,
                "dataset": dataset_id,
                "requested_epsilon": requested,
                "spent": balance.spent,
                "remaining": balance.remaining,
                "limit": balance.limit,
            },
        }

    def _error_envelope(self, exc: ServiceError) -> dict:
        return {
            "status": "error",
            "code": exc.code,
            "error": {"reason": exc.reason, "message": str(exc)},
        }

    # -- observability ---------------------------------------------------- #

    def describe(self) -> dict:
        """Stats + cache + registered datasets/tenants (the /v1/stats body)."""
        return {
            "stats": self.stats.as_dict(),
            "latency": self.stats.latency_summary(),
            "cache": self.cache.stats(),
            "fitted_clusterings": self.fitted.stats(),
            "datasets": [e.describe() for e in self.registry.datasets()],
            "tenants": [t.describe() for t in self.registry.tenants()],
            "workers": len(self._workers),
            "queued": len(self._queue),
        }

    def metrics_snapshot(self) -> dict:
        """This process's metrics registry snapshot (mergeable across workers)."""
        return self.metrics.snapshot()

    def health(self, deep: bool = False) -> dict:
        """The /healthz body: liveness plus (``deep``) cheap internal reads.

        Deep mode adds per-tenant journal tail lengths and registry counts
        — pure lock-guarded reads, never a scoring pass or a fsync.
        """
        body = {
            "status": "ok",
            "sharded": False,
            "workers": len(self._workers),
            "queued": len(self._queue),
        }
        if deep:
            body["datasets"] = len(self.registry.datasets())
            body["tenants"] = len(self.registry.tenants())
            body["journal_tails"] = self.registry.journal_tails()
        return body

    def ledger_describe(self, tenant_id: str) -> dict:
        """One tenant's per-dataset ledgers (the /v1/ledger/<tenant> body)."""
        return self.registry.tenant(tenant_id).describe()

    def dataset_listing(self) -> "list[dict]":
        """Registered datasets with fingerprints (the /v1/datasets body)."""
        return [e.describe() for e in self.registry.datasets()]


class ServiceClient:
    """Thin programmatic client bound to one tenant (tests, notebooks).

    Wraps :meth:`ExplanationService.explain` with per-client defaults::

        client = ServiceClient(service, tenant="alice", dataset="diabetes")
        response = client.explain(seed=3)
        response["result"]["combination"]

    ``last_trace_id`` holds the trace id of the most recent response —
    success *or* structured refusal/error (429/503/...) — so a caller
    that just got refused can quote the id the server logged it under.
    """

    def __init__(
        self,
        service: ExplanationService,
        tenant: str,
        dataset: str | None = None,
        timeout: float = 60.0,
    ):
        self._service = service
        self.tenant = tenant
        self.dataset = dataset
        self.timeout = timeout
        self.last_trace_id: "str | None" = None

    def explain(self, dataset: str | None = None, **params) -> dict:
        target = dataset or self.dataset
        if target is None:
            raise ValueError("no dataset given (per-call or client default)")
        request = ExplainRequest(tenant=self.tenant, dataset=target, **params)
        envelope = self._service.explain(request, timeout=self.timeout)
        self.last_trace_id = trace_id_of(envelope)
        return envelope

    def pipeline(self, dataset: str | None = None, **params) -> dict:
        """End-to-end request: server-side DP clustering + explanation."""
        target = dataset or self.dataset
        if target is None:
            raise ValueError("no dataset given (per-call or client default)")
        request = PipelineRequest(tenant=self.tenant, dataset=target, **params)
        envelope = self._service.pipeline(request, timeout=self.timeout)
        self.last_trace_id = trace_id_of(envelope)
        return envelope

    def ledger(self) -> dict:
        return self._service.registry.tenant(self.tenant).describe()
