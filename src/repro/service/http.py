"""Stdlib-only HTTP front end for the explanation service.

``python -m repro serve`` exposes an :class:`~repro.service.service.ExplanationService`
over ``http.server`` — no third-party web framework, matching the repo's
dependency-free constraint.  Endpoints:

* ``POST /v1/explain`` — JSON body per
  :meth:`~repro.service.service.ExplainRequest.from_json`; responds with the
  service envelope, HTTP status mirroring the envelope ``code`` (200 ok,
  429 budget-exhausted, 400/404 request errors).
* ``POST /v1/pipeline`` — JSON body per
  :meth:`~repro.service.service.PipelineRequest.from_json`: fits a DP
  clustering server-side (fit-once-cached) under the tenant's ledger, then
  explains it; same envelope plus a ``"pipeline"`` block.
* ``GET /v1/stats`` — service counters, cache stats, datasets, tenants,
  plus the metrics-registry snapshot (JSON twin of ``/metrics``).
* ``GET /v1/ledger/<tenant>`` — the tenant's per-dataset budget ledgers.
* ``GET /v1/datasets`` — registered datasets with fingerprints.
* ``GET /metrics`` — Prometheus text exposition; sharded deployments merge
  every worker's registry snapshot into one scrape.
* ``GET /healthz`` — liveness probe; ``?deep=1`` adds per-worker liveness,
  last-respawn times and per-tenant journal tail lengths (cheap reads only).

Request tracing: every POST body is assigned a ``trace_id`` here (the HTTP
edge) unless the caller supplied one; it comes back in the envelope's
``meta``/``error`` block — including structured 429/503/504 refusals — so
one id follows a request from the edge through the frame protocol to a
shard worker and back.

``ThreadingHTTPServer`` gives one handler thread per connection; handlers
just submit into the service, so concurrent posts still coalesce into
batched engine calls.

.. warning:: **No authentication — localhost demo scope only.**

   Tenant identity is entirely caller-asserted: whatever ``tenant`` string
   a ``POST /v1/explain`` body names is the ledger that gets charged, and
   ``GET /v1/ledger/<tenant>`` returns any tenant's spend history.  That is
   fine for the single-user demo this server exists for (it binds to
   ``127.0.0.1`` by default, and :func:`serve_forever` warns loudly on any
   non-loopback bind), but it means one client can drain another tenant's
   privacy budget or read their ledger.  Do **not** expose this server
   beyond loopback without putting real authentication in front of it —
   e.g. a reverse proxy mapping per-tenant API keys to the ``tenant``
   field, so callers can no longer choose their own identity.
"""

from __future__ import annotations

import ipaddress
import json

from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from ..obs.export import prometheus_text
from ..obs.tracing import attach_trace, new_trace_id
from .registry import ServiceError
from .service import ExplainRequest, PipelineRequest

MAX_BODY_BYTES = 1_000_000


class ServiceHTTPServer(ThreadingHTTPServer):
    """An HTTP server bound to one service instance.

    ``service`` is anything exposing the handler surface — ``explain`` /
    ``pipeline`` / ``describe`` / ``ledger_describe`` / ``dataset_listing``
    / ``stop`` — i.e. an in-process
    :class:`~repro.service.service.ExplanationService` or the sharded
    :class:`~repro.service.frontend.ShardedService` facade; the routes are
    identical either way.

    ``daemon_threads`` keeps in-flight handler threads from pinning the
    process open after shutdown; ``allow_reuse_address`` (SO_REUSEADDR)
    lets a restarted server rebind its port while the previous socket
    lingers in TIME_WAIT — without it a quick stop/start cycle fails with
    ``EADDRINUSE`` for up to a minute.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service):
        super().__init__(address, ExplanationHandler)
        self.service = service


class ExplanationHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # -- plumbing -------------------------------------------------------- #

    def log_message(self, *args) -> None:  # pragma: no cover - quiet server
        pass

    def _send_json(self, code: int, body: dict) -> None:
        data = (json.dumps(body, indent=2) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_envelope(
        self, exc: ServiceError, trace_id: str = ""
    ) -> None:
        envelope = {
            "status": "error",
            "code": exc.code,
            "error": {"reason": exc.reason, "message": str(exc)},
        }
        self._send_json(exc.code, attach_trace(envelope, trace_id))

    # -- routes ----------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        parts = urlsplit(self.path)
        path = parts.path
        try:
            if path == "/healthz":
                deep = parse_qs(parts.query).get("deep", ["0"])[0] not in ("0", "")
                health = getattr(service, "health", None)
                body = health(deep=deep) if health is not None else {"status": "ok"}
                self._send_json(200, body)
            elif path == "/metrics":
                snapshot_of = getattr(service, "metrics_snapshot", None)
                if snapshot_of is None:
                    raise ServiceError(
                        404, "not-found", "this service exposes no metrics"
                    )
                self._send_text(
                    200,
                    prometheus_text(snapshot_of()),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/v1/stats":
                body = service.describe()
                snapshot_of = getattr(service, "metrics_snapshot", None)
                if snapshot_of is not None:
                    body["metrics"] = snapshot_of()
                self._send_json(200, body)
            elif path == "/v1/datasets":
                self._send_json(200, {"datasets": service.dataset_listing()})
            elif path.startswith("/v1/ledger/"):
                # Tenant ids are arbitrary strings; the URL path carries
                # them percent-encoded ("a b" → /v1/ledger/a%20b).
                tenant_id = unquote(path[len("/v1/ledger/") :])
                self._send_json(200, service.ledger_describe(tenant_id))
            else:
                raise ServiceError(404, "not-found", f"no route for {self.path!r}")
        except ServiceError as exc:
            self._send_error_envelope(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        # Minted before parsing: even a 400 for unparsable JSON is traceable.
        trace_id = new_trace_id()
        try:
            if self.path not in ("/v1/explain", "/v1/pipeline"):
                raise ServiceError(404, "not-found", f"no route for {self.path!r}")
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise ServiceError(400, "invalid-request", "missing JSON body")
            if length > MAX_BODY_BYTES:
                raise ServiceError(400, "invalid-request", "body too large")
            try:
                body = json.loads(self.rfile.read(length))
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    400, "invalid-request", f"bad JSON: {exc}"
                ) from None
            if isinstance(body, dict):
                if body.get("trace_id"):
                    trace_id = str(body["trace_id"])
                else:
                    body = {**body, "trace_id": trace_id}
            try:
                if self.path == "/v1/pipeline":
                    envelope = service.pipeline(PipelineRequest.from_json(body))
                else:
                    envelope = service.explain(ExplainRequest.from_json(body))
            except FuturesTimeoutError:
                raise ServiceError(
                    504,
                    "timeout",
                    "the explanation did not complete in time; retry",
                ) from None
            self._send_json(envelope["code"], envelope)
        except ServiceError as exc:
            self._send_error_envelope(exc, trace_id)


def make_server(
    service, host: str = "127.0.0.1", port: int = 8080
) -> ServiceHTTPServer:
    """Bind (without serving) — ``port=0`` picks a free port for tests."""
    return ServiceHTTPServer((host, port), service)


def is_loopback_host(host: str) -> bool:
    """True when ``host`` can only be reached from this machine.

    Unrecognised names (including ``""``, which binds all interfaces) count
    as non-loopback, so the warning errs on the loud side.
    """
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


def serve_forever(
    service, host: str = "127.0.0.1", port: int = 8080
) -> None:  # pragma: no cover - interactive entry point
    """Blocking serve loop for ``python -m repro serve``."""
    server = make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"explanation service listening on http://{bound_host}:{bound_port}")
    print(
        "  POST /v1/explain  /v1/pipeline   "
        "GET /v1/stats  /v1/ledger/<tenant>  /metrics  /healthz[?deep=1]"
    )
    if not is_loopback_host(host):
        print(
            f"WARNING: binding to {host!r} exposes the service beyond this "
            "machine, but tenant identity is caller-asserted (no "
            "authentication): any client can charge any tenant's privacy "
            "ledger or read it via /v1/ledger/<tenant>.  This server is a "
            "localhost demo; front it with real auth before remote use."
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        # Order matters: stop() first drains the queue — every accepted
        # request resolves and its charge takes the final journal
        # checkpoint — *while* handler threads can still write their
        # responses out.  Only then does the server stop accepting and
        # release the socket; closing the server first would race handler
        # threads against a service whose workers are already gone.
        service.stop()
        server.server_close()
