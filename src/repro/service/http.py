"""Stdlib-only HTTP front end for the explanation service.

``python -m repro serve`` exposes an :class:`~repro.service.service.ExplanationService`
over ``http.server`` — no third-party web framework, matching the repo's
dependency-free constraint.  Endpoints:

* ``POST /v1/explain`` — JSON body per
  :meth:`~repro.service.service.ExplainRequest.from_json`; responds with the
  service envelope, HTTP status mirroring the envelope ``code`` (200 ok,
  429 budget-exhausted, 400/404 request errors).
* ``GET /v1/stats`` — service counters, cache stats, datasets, tenants.
* ``GET /v1/ledger/<tenant>`` — the tenant's per-dataset budget ledgers.
* ``GET /v1/datasets`` — registered datasets with fingerprints.
* ``GET /healthz`` — liveness probe.

``ThreadingHTTPServer`` gives one handler thread per connection; handlers
just submit into the service, so concurrent posts still coalesce into
batched engine calls.
"""

from __future__ import annotations

import json

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .registry import ServiceError
from .service import ExplainRequest, ExplanationService

MAX_BODY_BYTES = 1_000_000


class ServiceHTTPServer(ThreadingHTTPServer):
    """An HTTP server bound to one :class:`ExplanationService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ExplanationService):
        super().__init__(address, ExplanationHandler)
        self.service = service


class ExplanationHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # -- plumbing -------------------------------------------------------- #

    def log_message(self, *args) -> None:  # pragma: no cover - quiet server
        pass

    def _send_json(self, code: int, body: dict) -> None:
        data = (json.dumps(body, indent=2) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_envelope(self, exc: ServiceError) -> None:
        self._send_json(
            exc.code,
            {
                "status": "error",
                "code": exc.code,
                "error": {"reason": exc.reason, "message": str(exc)},
            },
        )

    # -- routes ----------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        try:
            if self.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif self.path == "/v1/stats":
                self._send_json(200, service.describe())
            elif self.path == "/v1/datasets":
                self._send_json(
                    200,
                    {"datasets": [e.describe() for e in service.registry.datasets()]},
                )
            elif self.path.startswith("/v1/ledger/"):
                tenant_id = self.path[len("/v1/ledger/") :]
                tenant = service.registry.tenant(tenant_id)
                self._send_json(200, tenant.describe())
            else:
                raise ServiceError(404, "not-found", f"no route for {self.path!r}")
        except ServiceError as exc:
            self._send_error_envelope(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        try:
            if self.path != "/v1/explain":
                raise ServiceError(404, "not-found", f"no route for {self.path!r}")
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise ServiceError(400, "invalid-request", "missing JSON body")
            if length > MAX_BODY_BYTES:
                raise ServiceError(400, "invalid-request", "body too large")
            try:
                body = json.loads(self.rfile.read(length))
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    400, "invalid-request", f"bad JSON: {exc}"
                ) from None
            request = ExplainRequest.from_json(body)
            envelope = service.explain(request)
            self._send_json(envelope["code"], envelope)
        except ServiceError as exc:
            self._send_error_envelope(exc)


def make_server(
    service: ExplanationService, host: str = "127.0.0.1", port: int = 8080
) -> ServiceHTTPServer:
    """Bind (without serving) — ``port=0`` picks a free port for tests."""
    return ServiceHTTPServer((host, port), service)


def serve_forever(
    service: ExplanationService, host: str = "127.0.0.1", port: int = 8080
) -> None:  # pragma: no cover - interactive entry point
    """Blocking serve loop for ``python -m repro serve``."""
    server = make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"explanation service listening on http://{bound_host}:{bound_port}")
    print("  POST /v1/explain   GET /v1/stats  /v1/ledger/<tenant>  /healthz")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.stop()
