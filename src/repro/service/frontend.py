"""Asyncio front end for the sharded tier, plus a blocking facade.

:class:`AsyncFrontend` is the data path: it holds one asyncio unix-socket
connection per shard worker, routes every request to its tenant's owner
(``shard_of``), and **coalesces same-configuration requests into batches**
before they hit the wire — requests sharing an
:meth:`~repro.service.service.ExplainRequest.engine_key` that arrive within
``batch_window_s`` of each other are flushed as one ``explain_batch`` frame,
so a burst of equal-parameter requests costs one frame (and, worker-side,
one batched engine pass) instead of N.  Replies carry the request id and may
arrive in any order; a reader task per connection matches them to futures.

Failover semantics (the front-end half of the supervisor's contract): when
a worker connection drops, every in-flight and still-buffered request for
that worker resolves *immediately* with a structured 503
(``worker-restarting``) envelope — callers never hang on a dead process —
and a reconnect loop re-establishes the connection once the supervisor has
respawned the worker.  Requests arriving while the link is down get the
same 503; the journal guarantees their tenants' ledgers are exact when the
worker returns.

:class:`ShardedService` wraps the front end and the supervisor behind the
blocking ``ExplanationService`` surface the HTTP layer consumes
(``explain`` / ``pipeline`` / ``describe`` / ``ledger_describe`` /
``dataset_listing`` / ``stop``), running the event loop on a background
thread.  ``/v1/pipeline`` is *not supported* sharded — the pipeline route
needs the raw rows for server-side clustering, and rows never leave the
supervisor — so it returns a structured 501.
"""

from __future__ import annotations

import asyncio
import threading
import time

from dataclasses import asdict

from ..obs.metrics import MetricsRegistry, merge_snapshots
from ..obs.tracing import attach_trace, new_trace_id, span_histogram
from .service import ExplainRequest, PipelineRequest
from .shard import shard_of, worker_restarting_envelope
from .supervisor import ShardSupervisor
from .transport import FrameError, read_frame_async, write_frame_async


class _Link:
    """One worker connection: reader task, pending futures, batch buffers.

    ``enqueued``/``sent`` hold per-request ``time.monotonic()`` stamps
    (buffered → flushed-to-wire), ``traces`` the request's trace id — all
    keyed by request id and popped together on resolve, so the span
    bookkeeping can never outlive its future.
    """

    __slots__ = (
        "index",
        "reader",
        "writer",
        "alive",
        "pending",
        "buffers",
        "flush_handle",
        "reader_task",
        "enqueued",
        "sent",
        "traces",
    )

    def __init__(self, index: int):
        self.index = index
        self.reader = None
        self.writer = None
        self.alive = False
        self.pending: "dict[int, asyncio.Future]" = {}
        self.buffers: "dict[tuple, list]" = {}
        self.flush_handle: "asyncio.TimerHandle | None" = None
        self.reader_task: "asyncio.Task | None" = None
        self.enqueued: "dict[int, float]" = {}
        self.sent: "dict[int, float]" = {}
        self.traces: "dict[int, str]" = {}


class AsyncFrontend:
    """The async data path over one :class:`ShardSupervisor` deployment."""

    def __init__(
        self,
        supervisor: ShardSupervisor,
        *,
        batch_window_s: float = 0.002,
        max_batch: int = 64,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.supervisor = supervisor
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self._links = [_Link(i) for i in range(supervisor.n_workers)]
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._closed = False
        self._next_id = 0
        self.batches_sent = 0
        self.requests_sent = 0
        # Default to the supervisor's registry so respawn counters, control
        # frame counters and front-end spans land in one snapshot.
        self.metrics = metrics if metrics is not None else supervisor.metrics
        self._spans = span_histogram(self.metrics)
        self._frames = self.metrics.counter(
            "repro_frames_total",
            "Frames read/written on shard-tier sockets by direction.",
            ("direction",),
        )
        self._batch_size = self.metrics.histogram(
            "repro_frontend_batch_size",
            "Requests per explain_batch frame sent to a worker.",
            base=1.0, growth=2.0, n_buckets=12,
        )

    # -- lifecycle -------------------------------------------------------- #

    async def start(self) -> "AsyncFrontend":
        self._loop = asyncio.get_running_loop()
        for link in self._links:
            await self._connect(link)
        # A respawn notification wakes the reconnect path early; the
        # reader's own reconnect loop is the fallback when the callback
        # beats the respawned socket.
        self.supervisor.on_worker_restart(self._notify_restart)
        return self

    async def _connect(self, link: _Link) -> None:
        reader, writer = await asyncio.open_unix_connection(
            self.supervisor.socket_path(link.index)
        )
        link.reader, link.writer = reader, writer
        link.alive = True
        link.reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(link)
        )

    def _notify_restart(self, index: int) -> None:
        # Called from the supervisor's monitor thread.
        loop = self._loop
        if loop is not None and not self._closed:
            loop.call_soon_threadsafe(lambda: None)  # nudge the loop awake

    async def close(self) -> None:
        self._closed = True
        for link in self._links:
            if link.flush_handle is not None:
                link.flush_handle.cancel()
                link.flush_handle = None
            if link.reader_task is not None:
                link.reader_task.cancel()
            if link.writer is not None:
                link.writer.close()
            self._fail_link(link)
        for link in self._links:
            if link.reader_task is not None:
                try:
                    await link.reader_task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
                link.reader_task = None

    # -- data path -------------------------------------------------------- #

    async def explain(
        self, request: ExplainRequest, timeout_s: float = 60.0
    ) -> dict:
        """Route one request to its owner worker; resolve to the envelope.

        The trace id is minted here when the caller did not bring one —
        this is the sharded deployment's edge — and rides the request dict
        through the frame protocol; refusals produced *on this side* of
        the wire (worker down, link drop) carry the same id, so a 503 is
        as attributable as a served response.
        """
        if not request.trace_id:
            request = request.with_trace(new_trace_id())
        index = shard_of(request.tenant, self.supervisor.n_workers)
        link = self._links[index]
        if not link.alive:
            return attach_trace(
                worker_restarting_envelope(index), request.trace_id
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[dict]" = loop.create_future()
        self._next_id += 1
        rid = self._next_id
        link.pending[rid] = future
        link.enqueued[rid] = time.monotonic()
        link.traces[rid] = request.trace_id
        bucket = link.buffers.setdefault(request.engine_key(), [])
        bucket.append({"id": rid, "request": asdict(request)})
        self.requests_sent += 1
        if sum(len(b) for b in link.buffers.values()) >= self.max_batch:
            await self._flush(link)
        elif link.flush_handle is None:
            link.flush_handle = loop.call_later(
                self.batch_window_s,
                lambda: loop.create_task(self._flush(link)),
            )
        try:
            return await asyncio.wait_for(future, timeout_s)
        except TimeoutError:
            link.pending.pop(rid, None)
            link.enqueued.pop(rid, None)
            link.sent.pop(rid, None)
            link.traces.pop(rid, None)
            raise

    async def _flush(self, link: _Link) -> None:
        if link.flush_handle is not None:
            link.flush_handle.cancel()
            link.flush_handle = None
        buffers, link.buffers = link.buffers, {}
        if not buffers or not link.alive:
            for items in buffers.values():
                for item in items:
                    self._resolve(
                        link, item["id"], worker_restarting_envelope(link.index)
                    )
            return
        try:
            # One explain_batch frame per engine key: the worker enqueues
            # the whole frame before its coalescing queue takes a batch, so
            # same-key requests land in one engine pass.
            for items in buffers.values():
                now = time.monotonic()
                oldest = now
                for item in items:
                    t_in = link.enqueued.get(item["id"])
                    if t_in is not None:
                        oldest = min(oldest, t_in)
                        self._spans.observe(now - t_in, ("frontend-queue",))
                    link.sent[item["id"]] = now
                self._spans.observe(now - oldest, ("coalesce-window",))
                self._batch_size.observe(len(items))
                await write_frame_async(
                    link.writer, {"op": "explain_batch", "items": items}
                )
                self._frames.inc(1, ("written",))
                self.batches_sent += 1
        except (FrameError, OSError, ConnectionError):
            self._drop_link(link)

    async def _read_loop(self, link: _Link) -> None:
        try:
            while True:
                frame = await read_frame_async(link.reader)
                if frame is None:
                    break
                self._frames.inc(1, ("read",))
                self._resolve(link, frame.get("id"), frame.get("envelope"))
        except (FrameError, OSError, ConnectionError, asyncio.CancelledError):
            pass
        self._drop_link(link)
        await self._reconnect(link)

    def _resolve(self, link: _Link, rid, envelope) -> None:
        future = link.pending.pop(rid, None)
        link.enqueued.pop(rid, None)
        t_sent = link.sent.pop(rid, None)
        trace = link.traces.pop(rid, None)
        if future is not None and not future.done():
            if t_sent is not None:
                self._spans.observe(time.monotonic() - t_sent, ("frame-rtt",))
            if trace is not None:
                envelope = attach_trace(envelope, trace)
            future.set_result(envelope)

    def _drop_link(self, link: _Link) -> None:
        """Connection lost: fail everything outstanding, mark dead."""
        if not link.alive:
            return
        link.alive = False
        if link.writer is not None:
            link.writer.close()
        self._fail_link(link)

    def _fail_link(self, link: _Link) -> None:
        envelope = worker_restarting_envelope(link.index)
        for items in link.buffers.values():
            for item in items:
                self._resolve(link, item["id"], dict(envelope))
        link.buffers = {}
        for rid in list(link.pending):
            self._resolve(link, rid, dict(envelope))

    async def _reconnect(self, link: _Link) -> None:
        while not self._closed:
            try:
                reader, writer = await asyncio.open_unix_connection(
                    self.supervisor.socket_path(link.index)
                )
            except OSError:
                await asyncio.sleep(0.1)
                continue
            link.reader, link.writer = reader, writer
            link.alive = True
            link.reader_task = asyncio.get_running_loop().create_task(
                self._read_loop(link)
            )
            return

    # -- control reads ----------------------------------------------------- #

    def describe(self) -> dict:
        body = self.supervisor.describe()
        body["frontend"] = {
            "batches_sent": self.batches_sent,
            "requests_sent": self.requests_sent,
            "links_alive": sum(1 for link in self._links if link.alive),
        }
        return body

    def metrics_snapshot(self) -> dict:
        """Deployment-wide snapshot: this process's registry + every worker.

        Exact by construction — counters in the merged snapshot equal the
        sum of the per-worker registries (plus the front end's own) because
        the merge is plain integer addition over identical bucket
        geometries.  A worker that cannot be scraped (mid-respawn) is
        skipped; its journal-durable state reappears on the next scrape.
        """
        snapshots = [self.metrics.snapshot()]
        if self.supervisor.metrics is not self.metrics:
            snapshots.append(self.supervisor.metrics.snapshot())
        for i in range(self.supervisor.n_workers):
            try:
                snapshots.append(self.supervisor.worker_metrics(i))
            except Exception:  # noqa: BLE001 — a dead worker must not fail a scrape
                continue
        return merge_snapshots(snapshots)


class ShardedService:
    """Blocking facade: the ``ExplanationService`` surface, served by shards.

    Spawns the supervisor, runs an :class:`AsyncFrontend` on a background
    event-loop thread, and exposes the exact method set the HTTP handler
    and CLI consume — so ``python -m repro serve --workers N`` swaps the
    in-process service for the sharded tier without touching the routes.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        ledger_dir: "str | None" = None,
        auto_tenant_budget: "float | None" = None,
        cache_entries: int = 256,
        compact_every: int = 256,
        service_threads: int = 2,
        batch_window_s: float = 0.002,
        max_batch: int = 64,
        socket_dir: "str | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        # One registry spans the facade, supervisor and front end; worker
        # registries live in their own processes and merge in at scrape.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.supervisor = ShardSupervisor(
            n_workers,
            ledger_dir=ledger_dir,
            auto_tenant_budget=auto_tenant_budget,
            cache_entries=cache_entries,
            compact_every=compact_every,
            service_threads=service_threads,
            socket_dir=socket_dir,
            metrics=self.metrics,
        )
        self.frontend = AsyncFrontend(
            self.supervisor,
            batch_window_s=batch_window_s,
            max_batch=max_batch,
            metrics=self.metrics,
        )
        self._loop = asyncio.new_event_loop()
        self._loop_thread: "threading.Thread | None" = None
        self._started = False

    # -- lifecycle -------------------------------------------------------- #

    def start(self, workers: int | None = None) -> "ShardedService":
        """Spawn the deployment (``workers`` kept for signature parity)."""
        if self._started:
            return self
        self.supervisor.start()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="shard-frontend", daemon=True
        )
        self._loop_thread.start()
        self._run(self.frontend.start())
        self._started = True
        return self

    def stop(self) -> None:
        """Stop front end, then workers (each takes a final checkpoint)."""
        if self._loop_thread is not None:
            try:
                self._run(self.frontend.close())
            except RuntimeError:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=5.0)
            self._loop_thread = None
        self.supervisor.stop()

    def _run(self, coro, timeout: "float | None" = None):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    # -- the service surface ---------------------------------------------- #

    def register_dataset(
        self, dataset_id: str, dataset, clustering=None, n_clusters=None
    ) -> dict:
        return self.supervisor.register_dataset(
            dataset_id, dataset, clustering, n_clusters
        )

    def explain(
        self,
        request: "ExplainRequest | None" = None,
        timeout: float = 60.0,
        **kwargs,
    ) -> dict:
        if request is None:
            request = ExplainRequest(**kwargs)
        # Validation parity with the in-process service: reject malformed
        # requests here (no budget anywhere was touched) instead of paying
        # a round trip to a worker that would reject them identically.
        request = request.validated()
        return self._run(
            self.frontend.explain(request, timeout_s=timeout),
            # The async side owns the timeout; leave headroom so the
            # worker-side 504 wins over a racing facade-side one.
            timeout=timeout + 5.0,
        )

    def pipeline(
        self,
        request: "PipelineRequest | None" = None,
        timeout: float = 60.0,
        **kwargs,
    ) -> dict:
        del timeout
        if request is None:
            request = PipelineRequest(**kwargs)
        if not request.trace_id:
            request = request.with_trace(new_trace_id())
        envelope = {
            "status": "error",
            "code": 501,
            "error": {
                "reason": "pipeline-unsupported",
                "message": (
                    "/v1/pipeline needs the raw rows for server-side "
                    "clustering; rows never leave the supervisor in a "
                    "sharded deployment. Fit the clustering before "
                    "registering, or run a single-process service."
                ),
            },
        }
        return attach_trace(envelope, request.trace_id)

    def describe(self) -> dict:
        return self.frontend.describe()

    def metrics_snapshot(self) -> dict:
        return self.frontend.metrics_snapshot()

    def health(self, deep: bool = False) -> dict:
        return self.supervisor.health(deep=deep)

    def ledger_describe(self, tenant_id: str) -> dict:
        return self.supervisor.ledger(tenant_id)

    def dataset_listing(self) -> "list[dict]":
        return self.supervisor.dataset_listing()

    def __enter__(self) -> "ShardedService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
