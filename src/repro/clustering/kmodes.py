"""Huang's k-modes for categorical tuples (matching dissimilarity)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng
from .base import ModeBasedClustering, nearest_mode


def _column_modes(codes: np.ndarray, domain_sizes: list[int]) -> np.ndarray:
    """Per-column most frequent code of a cluster's member rows."""
    out = np.empty(codes.shape[1], dtype=np.int64)
    for j, m in enumerate(domain_sizes):
        out[j] = int(np.argmax(np.bincount(codes[:, j], minlength=m)))
    return out


@dataclass(frozen=True)
class KModes:
    """Fit categorical modes; assignment minimises attribute mismatches."""

    n_clusters: int
    max_iter: int = 20

    def fit(
        self, dataset: Dataset, rng: np.random.Generator | int | None = None
    ) -> ModeBasedClustering:
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        gen = ensure_rng(rng)
        names = dataset.schema.names
        codes = dataset.to_matrix(names).astype(np.int64)
        n = codes.shape[0]
        if n < self.n_clusters:
            # Row count redacted: raw-data-derived, can reach envelopes.
            raise ValueError(
                f"dataset has fewer rows than {self.n_clusters} clusters"
            )
        domain_sizes = [dataset.schema.attribute(nm).domain_size for nm in names]

        # Seed with distinct random rows (retrying to avoid duplicate modes).
        seen: set[tuple[int, ...]] = set()
        modes: list[np.ndarray] = []
        for _ in range(50 * self.n_clusters):
            row = codes[gen.integers(n)]
            key = tuple(int(v) for v in row)
            if key not in seen:
                seen.add(key)
                modes.append(row.copy())
            if len(modes) == self.n_clusters:
                break
        while len(modes) < self.n_clusters:  # fewer distinct rows than clusters
            modes.append(codes[gen.integers(n)].copy())
        mode_mat = np.stack(modes)

        labels = nearest_mode(codes, mode_mat)
        for _ in range(self.max_iter):
            new_modes = mode_mat.copy()
            for c in range(self.n_clusters):
                members = codes[labels == c]
                if len(members) == 0:
                    new_modes[c] = codes[gen.integers(n)]
                else:
                    new_modes[c] = _column_modes(members, domain_sizes)
            new_labels = nearest_mode(codes, new_modes)
            mode_mat = new_modes
            if np.array_equal(new_labels, labels):
                labels = new_labels
                break
            labels = new_labels
        return ModeBasedClustering(tuple(names), mode_mat)
