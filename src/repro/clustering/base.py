"""Clustering functions ``f : dom(R) -> C`` — the black-box interface.

The paper models the *output* of a (DP) clustering algorithm as a function
from the full tuple domain to cluster labels (Section 2.1): fixed centers
define an assignment for any tuple, which is what lets the explanation
mechanism compose sequentially with the clustering mechanism (Definition 3.1).
Every model here is value-based — assignment depends only on a tuple's
attribute values, never on its position in the dataset — and therefore *is*
such a function.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..dataset.table import Dataset
from .encode import IdentityEncoder, MinMaxEncoder, StandardEncoder

Encoder = "StandardEncoder | MinMaxEncoder | IdentityEncoder"


class ClusteringFunction(ABC):
    """A total function from tuples to cluster labels ``{0, ..., |C|-1}``."""

    @property
    @abstractmethod
    def n_clusters(self) -> int:
        """``|C|`` — the number of cluster labels."""

    @abstractmethod
    def assign(self, dataset: Dataset) -> np.ndarray:
        """Label every tuple of ``dataset``; returns an int array of length |D|."""

    def cluster_sizes(self, dataset: Dataset) -> np.ndarray:
        """``(|D_c|)_{c in C}`` for the given dataset."""
        labels = self.assign(dataset)
        return np.bincount(labels, minlength=self.n_clusters).astype(np.int64)

    def partition_masks(self, dataset: Dataset) -> list[np.ndarray]:
        """Boolean masks of the disjoint clusters ``{D_c}``."""
        labels = self.assign(dataset)
        return [labels == c for c in range(self.n_clusters)]


@dataclass(frozen=True)
class CenterBasedClustering(ClusteringFunction):
    """Nearest-center assignment in an encoded metric space.

    Covers k-means, DP-k-means (released centers), GMM hard assignment via
    centroids, and the nearest-centroid extension of agglomerative clustering.
    """

    encoder: "StandardEncoder | MinMaxEncoder | IdentityEncoder"
    centers: np.ndarray  # (k, dim) in encoded space

    @property
    def n_clusters(self) -> int:
        return int(self.centers.shape[0])

    def assign(self, dataset: Dataset) -> np.ndarray:
        points = self.encoder.transform(dataset)
        if points.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return nearest_center(points, self.centers)


@dataclass(frozen=True)
class ModeBasedClustering(ClusteringFunction):
    """Minimum-mismatch assignment to categorical modes (k-modes)."""

    names: tuple[str, ...]
    modes: np.ndarray  # (k, d) integer codes

    @property
    def n_clusters(self) -> int:
        return int(self.modes.shape[0])

    def assign(self, dataset: Dataset) -> np.ndarray:
        codes = dataset.to_matrix(self.names).astype(np.int64)
        if codes.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return nearest_mode(codes, self.modes)


@dataclass(frozen=True)
class GaussianMixtureClustering(ClusteringFunction):
    """Max-posterior assignment under a diagonal-covariance Gaussian mixture."""

    encoder: "StandardEncoder | MinMaxEncoder | IdentityEncoder"
    means: np.ndarray  # (k, dim)
    variances: np.ndarray  # (k, dim), strictly positive
    log_weights: np.ndarray  # (k,)

    @property
    def n_clusters(self) -> int:
        return int(self.means.shape[0])

    def log_joint(self, points: np.ndarray) -> np.ndarray:
        """``log pi_k + log N(x | mu_k, diag(var_k))`` for every point/component."""
        diff = points[:, None, :] - self.means[None, :, :]
        quad = np.sum(diff * diff / self.variances[None, :, :], axis=2)
        log_det = np.sum(np.log(self.variances), axis=1)
        d = points.shape[1]
        return self.log_weights[None, :] - 0.5 * (
            quad + log_det[None, :] + d * np.log(2.0 * np.pi)
        )

    def assign(self, dataset: Dataset) -> np.ndarray:
        points = self.encoder.transform(dataset)
        if points.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return np.argmax(self.log_joint(points), axis=1).astype(np.int64)


@dataclass(frozen=True)
class PredicateClustering(ClusteringFunction):
    """User-defined predicates over tuple values (Section 2.1 mentions these).

    ``predicates`` are evaluated in order on the decoded tuple; the first
    match wins, and tuples matching none fall into an implicit final cluster.
    """

    names: tuple[str, ...]
    predicates: tuple[Callable[[dict[str, str]], bool], ...]

    @property
    def n_clusters(self) -> int:
        return len(self.predicates) + 1

    def assign(self, dataset: Dataset) -> np.ndarray:
        labels = np.full(len(dataset), len(self.predicates), dtype=np.int64)
        for i in range(len(dataset)):
            row = dict(zip(dataset.schema.names, dataset.row(i)))
            for c, pred in enumerate(self.predicates):
                if pred(row):
                    labels[i] = c
                    break
        return labels


def nearest_center(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Index of the closest center (squared Euclidean) per point, blockwise."""
    n = points.shape[0]
    out = np.empty(n, dtype=np.int64)
    block = max(1, int(4_000_000 // max(centers.shape[0], 1)))
    c_sq = np.sum(centers * centers, axis=1)
    for start in range(0, n, block):
        chunk = points[start : start + block]
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; ||x||^2 constant per row.
        d = chunk @ centers.T
        d = c_sq[None, :] - 2.0 * d
        out[start : start + block] = np.argmin(d, axis=1)
    return out


def nearest_mode(codes: np.ndarray, modes: np.ndarray) -> np.ndarray:
    """Index of the mode with the fewest attribute mismatches per row."""
    n = codes.shape[0]
    k = modes.shape[0]
    out = np.empty(n, dtype=np.int64)
    block = max(1, int(8_000_000 // max(k * codes.shape[1], 1)))
    for start in range(0, n, block):
        chunk = codes[start : start + block]
        mism = np.sum(chunk[:, None, :] != modes[None, :, :], axis=2)
        out[start : start + block] = np.argmin(mism, axis=1)
    return out


def subsample_indices(
    n: int, max_rows: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform row subsample used by quadratic-cost fitters (agglomerative)."""
    if n <= max_rows:
        return np.arange(n)
    return np.sort(rng.choice(n, size=max_rows, replace=False))
