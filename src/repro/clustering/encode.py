"""Numeric encodings that let clustering substrates consume coded tuples.

Following the paper's preprocessing ("categorical attributes are transformed
into equivalent numerical data by mapping each domain value to a unique
integer", Section 6.1), clustering algorithms operate on the matrix of domain
codes.  Encoders are *fitted statistics + a pure function of tuple values*, so
a fitted clustering model composes with an encoder into a clustering function
``f : dom(R) -> C`` as Definition 3.1 requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dataset.table import Dataset


@dataclass(frozen=True)
class StandardEncoder:
    """Z-score encoding of the code matrix (zero-variance columns pass through)."""

    names: tuple[str, ...]
    means: np.ndarray
    scales: np.ndarray

    @classmethod
    def fit(cls, dataset: Dataset, names: Sequence[str] | None = None) -> "StandardEncoder":
        names = tuple(names) if names is not None else dataset.schema.names
        mat = dataset.to_matrix(names)
        if mat.shape[0] == 0:
            means = np.zeros(len(names))
            scales = np.ones(len(names))
        else:
            means = mat.mean(axis=0)
            scales = mat.std(axis=0)
            scales = np.where(scales > 0, scales, 1.0)
        return cls(names, means, scales)

    def transform(self, dataset: Dataset) -> np.ndarray:
        mat = dataset.to_matrix(self.names)
        return (mat - self.means) / self.scales

    @property
    def dim(self) -> int:
        return len(self.names)


@dataclass(frozen=True)
class MinMaxEncoder:
    """Scale codes into ``[-1, 1]^d`` using *data-independent* domain bounds.

    DP-k-means needs coordinates bounded by a constant to calibrate noise;
    because attribute domains are finite and data-independent (Section 2),
    scaling by ``|dom(A)| - 1`` leaks nothing about the dataset.
    """

    names: tuple[str, ...]
    lows: np.ndarray
    highs: np.ndarray

    @classmethod
    def fit(cls, dataset: Dataset, names: Sequence[str] | None = None) -> "MinMaxEncoder":
        names = tuple(names) if names is not None else dataset.schema.names
        lows = np.zeros(len(names))
        highs = np.array(
            [max(dataset.schema.attribute(n).domain_size - 1, 1) for n in names],
            dtype=np.float64,
        )
        return cls(names, lows, highs)

    def transform(self, dataset: Dataset) -> np.ndarray:
        mat = dataset.to_matrix(self.names)
        span = np.where(self.highs > self.lows, self.highs - self.lows, 1.0)
        return 2.0 * (mat - self.lows) / span - 1.0

    @property
    def dim(self) -> int:
        return len(self.names)


@dataclass(frozen=True)
class IdentityEncoder:
    """Raw integer codes as floats (used by k-modes, which works on codes)."""

    names: tuple[str, ...]

    @classmethod
    def fit(cls, dataset: Dataset, names: Sequence[str] | None = None) -> "IdentityEncoder":
        names = tuple(names) if names is not None else dataset.schema.names
        return cls(names)

    def transform(self, dataset: Dataset) -> np.ndarray:
        return dataset.to_matrix(self.names)

    @property
    def dim(self) -> int:
        return len(self.names)
