"""Ward agglomerative clustering (Lance-Williams), centroid-extended.

The paper applies Agglomerative Clustering where it scales (it skips the
Census dataset "due to its scalability limitations", Section 6.1).  Raw
agglomerative labels are *not* a function ``dom(R) -> C``, so — consistent
with the paper's own modelling of DP clustering outputs — we fit the
hierarchy on a bounded subsample, cut it at ``n_clusters``, and release the
cluster *centroids*; nearest-centroid assignment is then a total clustering
function usable by the explanation framework.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng
from .base import CenterBasedClustering, subsample_indices
from .encode import StandardEncoder


def ward_labels(points: np.ndarray, n_clusters: int) -> np.ndarray:
    """Cut a Ward hierarchy at ``n_clusters`` via Lance-Williams updates.

    Maintains the full squared-distance matrix (O(n^2) memory), merging the
    globally closest active pair until ``n_clusters`` remain.  Ward update for
    squared Euclidean distances:

        d(i∪j, l) = ((s_i + s_l) d_il + (s_j + s_l) d_jl - s_l d_ij)
                    / (s_i + s_j + s_l)
    """
    n = points.shape[0]
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    if n < n_clusters:
        # Row count redacted: it is raw-data-derived and the message can
        # surface in error envelopes.
        raise ValueError(f"fewer points than the {n_clusters} requested clusters")

    sq = np.einsum("ij,ij->i", points, points)
    dist = sq[:, None] + sq[None, :] - 2.0 * (points @ points.T)
    np.fill_diagonal(dist, np.inf)
    dist = np.maximum(dist, 0.0)
    np.fill_diagonal(dist, np.inf)

    sizes = np.ones(n)
    active = np.ones(n, dtype=bool)
    parent = np.arange(n)

    for _ in range(n - n_clusters):
        flat = np.argmin(dist)
        i, j = divmod(int(flat), n)
        if i > j:
            i, j = j, i
        d_ij = dist[i, j]
        s_i, s_j = sizes[i], sizes[j]
        others = active.copy()
        others[i] = others[j] = False
        s_l = sizes[others]
        new_d = (
            (s_i + s_l) * dist[i, others]
            + (s_j + s_l) * dist[j, others]
            - s_l * d_ij
        ) / (s_i + s_j + s_l)
        dist[i, others] = new_d
        dist[others, i] = new_d
        dist[j, :] = np.inf
        dist[:, j] = np.inf
        sizes[i] = s_i + s_j
        active[j] = False
        parent[j] = i

    # Resolve each point's root representative, then compact labels.
    def root(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    roots = np.array([root(x) for x in range(n)])
    uniq = {r: c for c, r in enumerate(sorted(set(int(r) for r in roots)))}
    return np.array([uniq[int(r)] for r in roots], dtype=np.int64)


@dataclass(frozen=True)
class Agglomerative:
    """Ward clustering on a subsample, released as nearest-centroid centers."""

    n_clusters: int
    max_fit_rows: int = 1500

    def fit(
        self, dataset: Dataset, rng: np.random.Generator | int | None = None
    ) -> CenterBasedClustering:
        gen = ensure_rng(rng)
        encoder = StandardEncoder.fit(dataset)
        idx = subsample_indices(len(dataset), self.max_fit_rows, gen)
        points = encoder.transform(dataset.subset(idx))
        labels = ward_labels(points, self.n_clusters)
        centers = np.stack(
            [points[labels == c].mean(axis=0) for c in range(self.n_clusters)]
        )
        return CenterBasedClustering(encoder, centers)
