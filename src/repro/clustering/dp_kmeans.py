"""DPLloyd — differentially private k-means in the style of Su et al. [64].

The paper clusters with "DP-k-means [64] implemented by DiffPrivLib" at
``eps = 1``.  We reproduce the DPLloyd recipe those implementations follow:

1. scale data into ``[-1, 1]^d`` using *data-independent* domain bounds
   (our attribute domains are finite and public, Section 2);
2. pick initial centers uniformly in the cube (data-independent, free);
3. run ``T`` Lloyd iterations; each iteration releases, per cluster, a noisy
   count (sensitivity 1) and a noisy coordinate sum (L1 sensitivity ``d``
   since every coordinate is bounded by 1), each with Laplace noise funded by
   an even split of ``eps / T``;
4. release the final centers, which define ``f : dom(R) -> C``.

Total privacy: each iteration is ``eps/T``-DP by sequential composition over
its two query batches (counts and sums are each parallel across the disjoint
clusters), and the ``T`` iterations compose sequentially to ``eps``-DP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.table import Dataset
from ..privacy.budget import BudgetError, PrivacyAccountant, check_epsilon
from ..privacy.mechanisms import LaplaceMechanism
from ..privacy.rng import ensure_rng
from .base import CenterBasedClustering, nearest_center
from .encode import MinMaxEncoder


@dataclass(frozen=True)
class DPKMeans:
    """DPLloyd private k-means releasing ``eps``-DP centers."""

    n_clusters: int
    epsilon: float = 1.0
    n_iterations: int = 5

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        check_epsilon(self.epsilon)
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")

    def fit(
        self,
        dataset: Dataset,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
    ) -> CenterBasedClustering:
        gen = ensure_rng(rng)
        encoder = MinMaxEncoder.fit(dataset)
        points = encoder.transform(dataset)
        n, d = points.shape
        if n == 0:
            raise ValueError("cannot fit DP-k-means on an empty dataset")

        eps_iter = self.epsilon / self.n_iterations
        eps_count = eps_iter / 2.0
        eps_sum = eps_iter / 2.0
        count_mech = LaplaceMechanism(eps_count, sensitivity=1.0)
        sum_mech = LaplaceMechanism(eps_sum, sensitivity=float(max(d, 1)))

        # repro-lint: disable=charge-before-release — init centers are data-independent (uniform over the encoded cube, no dataset input), so this draw consumes no privacy; every data-dependent draw below is charged per iteration first
        centers = gen.uniform(-1.0, 1.0, size=(self.n_clusters, d))
        for it in range(self.n_iterations):
            labels = nearest_center(points, centers)
            # Charge the full iteration *before* any noise is drawn: a
            # BudgetError must never fire after a release has already been
            # sampled.  If the second charge is refused, the first (whose
            # noise was equally never drawn) is rolled back by token, so an
            # aborted iteration leaves the ledger exactly as it found it.
            if accountant is not None:
                token = accountant.parallel(
                    [eps_count] * self.n_clusters, f"dp-kmeans iter {it} counts"
                )
                try:
                    accountant.parallel(
                        [eps_sum] * self.n_clusters, f"dp-kmeans iter {it} sums"
                    )
                except BudgetError:
                    accountant.refund(token)
                    raise
            new_centers = centers.copy()
            noisy_counts = np.empty(self.n_clusters)
            noisy_sums = np.empty((self.n_clusters, d))
            for c in range(self.n_clusters):
                members = points[labels == c]
                noisy_counts[c] = count_mech.randomise(float(len(members)), gen)
                true_sum = members.sum(axis=0) if len(members) else np.zeros(d)
                noisy_sums[c] = np.asarray(sum_mech.randomise(true_sum, gen))
            for c in range(self.n_clusters):
                denom = max(noisy_counts[c], 1.0)
                new_centers[c] = np.clip(noisy_sums[c] / denom, -1.0, 1.0)
            centers = new_centers
        return CenterBasedClustering(encoder, centers)
