"""Diagonal-covariance Gaussian mixture models fitted by EM."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng
from .base import GaussianMixtureClustering
from .encode import StandardEncoder
from .kmeans import kmeans_pp_init, lloyd_iterations


@dataclass(frozen=True)
class GaussianMixture:
    """EM-fitted GMM; assignment is by maximum posterior responsibility."""

    n_clusters: int
    max_iter: int = 50
    tol: float = 1e-4
    var_floor: float = 1e-6

    def fit(
        self, dataset: Dataset, rng: np.random.Generator | int | None = None
    ) -> GaussianMixtureClustering:
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        gen = ensure_rng(rng)
        encoder = StandardEncoder.fit(dataset)
        points = encoder.transform(dataset)
        n, d = points.shape
        if n < self.n_clusters:
            # Row count redacted: raw-data-derived, can reach envelopes.
            raise ValueError(
                f"dataset has fewer rows than {self.n_clusters} clusters"
            )

        # Warm-start means with a short k-means run for stable convergence.
        means = kmeans_pp_init(points, self.n_clusters, gen)
        means = lloyd_iterations(points, means, 10, 1e-4, gen)
        variances = np.full((self.n_clusters, d), max(points.var(), self.var_floor))
        log_weights = np.full(self.n_clusters, -np.log(self.n_clusters))

        prev_ll = -np.inf
        for _ in range(self.max_iter):
            model = GaussianMixtureClustering(encoder, means, variances, log_weights)
            log_joint = model.log_joint(points)  # (n, k)
            log_norm = logsumexp(log_joint, axis=1)
            ll = float(log_norm.mean())
            resp = np.exp(log_joint - log_norm[:, None])  # responsibilities

            nk = resp.sum(axis=0) + 1e-12
            means = (resp.T @ points) / nk[:, None]
            diff_sq = (
                points[:, None, :] - means[None, :, :]
            ) ** 2  # (n, k, d)
            variances = np.einsum("nk,nkd->kd", resp, diff_sq) / nk[:, None]
            variances = np.maximum(variances, self.var_floor)
            log_weights = np.log(nk / nk.sum())

            if abs(ll - prev_ll) <= self.tol:
                break
            prev_ll = ll
        return GaussianMixtureClustering(encoder, means, variances, log_weights)
