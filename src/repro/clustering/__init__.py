"""Clustering substrate: black-box clustering functions ``f : dom(R) -> C``."""

from .agglomerative import Agglomerative, ward_labels
from .base import (
    CenterBasedClustering,
    ClusteringFunction,
    GaussianMixtureClustering,
    ModeBasedClustering,
    PredicateClustering,
    nearest_center,
    nearest_mode,
)
from .dp_kmeans import DPKMeans
from .dp_kmodes import DPKModes
from .encode import IdentityEncoder, MinMaxEncoder, StandardEncoder
from .gmm import GaussianMixture
from .kmeans import KMeans, inertia, kmeans_pp_init
from .kmodes import KModes

CLUSTERING_METHODS = {
    "k-means": KMeans,
    "DP-k-means": DPKMeans,
    "k-modes": KModes,
    "GMMs": GaussianMixture,
    "Agglomerative": Agglomerative,
}

__all__ = [
    "Agglomerative",
    "ward_labels",
    "CenterBasedClustering",
    "ClusteringFunction",
    "GaussianMixtureClustering",
    "ModeBasedClustering",
    "PredicateClustering",
    "nearest_center",
    "nearest_mode",
    "DPKMeans",
    "DPKModes",
    "IdentityEncoder",
    "MinMaxEncoder",
    "StandardEncoder",
    "GaussianMixture",
    "KMeans",
    "inertia",
    "kmeans_pp_init",
    "KModes",
    "CLUSTERING_METHODS",
]
