"""Differentially private k-modes, in the spirit of Nguyen [53].

The paper cites privacy-preserving k-modes as one of the DP clustering
options (reference [53]).  We implement the natural DPLloyd-style recipe for
categorical data: in each of ``T`` iterations, each cluster's new mode is
taken attribute-wise as the *noisy* arg-max of the within-cluster value
histogram.

Privacy analysis.  Per iteration, for every cluster x attribute we release a
noisy histogram with budget ``eps_iter / d`` where ``eps_iter = eps / T``:
within a cluster the ``d`` attribute histograms compose sequentially; across
clusters the releases are parallel (clusters are disjoint for a fixed
assignment).  Taking the arg-max is post-processing.  The ``T`` iterations
compose sequentially, so releasing the final modes is ``eps``-DP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.table import Dataset
from ..privacy.budget import PrivacyAccountant, check_epsilon
from ..privacy.mechanisms import GeometricMechanism
from ..privacy.rng import ensure_rng
from .base import ModeBasedClustering, nearest_mode


@dataclass(frozen=True)
class DPKModes:
    """DP k-modes releasing ``eps``-DP cluster modes."""

    n_clusters: int
    epsilon: float = 1.0
    n_iterations: int = 5

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        check_epsilon(self.epsilon)
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")

    def fit(
        self,
        dataset: Dataset,
        rng: np.random.Generator | int | None = None,
        accountant: PrivacyAccountant | None = None,
    ) -> ModeBasedClustering:
        gen = ensure_rng(rng)
        names = dataset.schema.names
        d = len(names)
        if len(dataset) == 0:
            raise ValueError("cannot fit DP-k-modes on an empty dataset")
        codes = dataset.to_matrix(names).astype(np.int64)
        domain_sizes = [dataset.schema.attribute(n).domain_size for n in names]

        eps_iter = self.epsilon / self.n_iterations
        eps_hist = eps_iter / d
        mech = GeometricMechanism(eps_hist, sensitivity=1.0)

        # Data-independent init: uniform random modes over the domains.
        modes = np.stack(
            [
                # repro-lint: disable=charge-before-release — init modes are drawn uniformly over the schema domains (data-independent), so no privacy is consumed; the per-iteration releases below charge first
                np.array([gen.integers(m) for m in domain_sizes])
                for _ in range(self.n_clusters)
            ]
        )
        for it in range(self.n_iterations):
            labels = nearest_mode(codes, modes)
            # d sequential releases per cluster, parallel across clusters.
            # Charged *before* any noise is drawn so an over-cap iteration
            # raises while zero histograms have been sampled.
            if accountant is not None:
                accountant.parallel(
                    [eps_hist * d] * self.n_clusters, f"dp-kmodes iter {it}"
                )
            new_modes = modes.copy()
            for c in range(self.n_clusters):
                members = codes[labels == c]
                for j, m in enumerate(domain_sizes):
                    hist = (
                        np.bincount(members[:, j], minlength=m)
                        if len(members)
                        else np.zeros(m, dtype=np.int64)
                    )
                    noisy = hist + mech.sample_noise(m, gen)
                    new_modes[c, j] = int(np.argmax(noisy))
            modes = new_modes
        return ModeBasedClustering(tuple(names), modes)
