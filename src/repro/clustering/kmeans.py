"""Lloyd's k-means with k-means++ seeding (non-private baseline clusterer)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.table import Dataset
from ..privacy.rng import ensure_rng
from .base import CenterBasedClustering, nearest_center
from .encode import StandardEncoder


def kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: iteratively sample centers ∝ squared distance."""
    n = points.shape[0]
    if n < k:
        # Point count redacted: raw-data-derived, can reach envelopes.
        raise ValueError(f"cannot seed {k} centers: fewer points than centers")
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    centers[0] = points[rng.integers(n)]
    closest = np.full(n, np.inf)
    for i in range(1, k):
        diff = points - centers[i - 1]
        closest = np.minimum(closest, np.einsum("ij,ij->i", diff, diff))
        total = closest.sum()
        if total <= 0:
            centers[i:] = points[rng.integers(n, size=k - i)]
            break
        probs = closest / total
        centers[i] = points[rng.choice(n, p=probs)]
    return centers


def lloyd_iterations(
    points: np.ndarray,
    centers: np.ndarray,
    max_iter: int,
    tol: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Run Lloyd updates, re-seeding empty clusters from random points."""
    k = centers.shape[0]
    for _ in range(max_iter):
        labels = nearest_center(points, centers)
        new_centers = centers.copy()
        for c in range(k):
            members = points[labels == c]
            if len(members) == 0:
                new_centers[c] = points[rng.integers(points.shape[0])]
            else:
                new_centers[c] = members.mean(axis=0)
        shift = float(np.max(np.abs(new_centers - centers)))
        centers = new_centers
        if shift <= tol:
            break
    return centers


@dataclass(frozen=True)
class KMeans:
    """Fit nearest-center clusters; returns a ``dom(R) -> C`` function."""

    n_clusters: int
    max_iter: int = 50
    tol: float = 1e-6

    def fit(
        self, dataset: Dataset, rng: np.random.Generator | int | None = None
    ) -> CenterBasedClustering:
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        gen = ensure_rng(rng)
        encoder = StandardEncoder.fit(dataset)
        points = encoder.transform(dataset)
        if points.shape[0] < self.n_clusters:
            # Row count redacted: raw-data-derived, can reach envelopes.
            raise ValueError(
                f"dataset has fewer rows than {self.n_clusters} clusters"
            )
        centers = kmeans_pp_init(points, self.n_clusters, gen)
        centers = lloyd_iterations(points, centers, self.max_iter, self.tol, gen)
        return CenterBasedClustering(encoder, centers)


def inertia(points: np.ndarray, centers: np.ndarray) -> float:
    """Sum of squared distances to the closest center (fit diagnostics)."""
    labels = nearest_center(points, centers)
    diff = points - centers[labels]
    return float(np.einsum("ij,ij->", diff, diff))
