"""Table 1 bench: Quality under different weight configurations."""

from __future__ import annotations

import numpy as np

from repro.evaluation.runner import format_results_table
from repro.experiments import table1_weights

from bench_common import show


def test_table1_weight_configurations(benchmark, bench_config):
    rows = benchmark.pedantic(
        table1_weights.run,
        args=(bench_config,),
        kwargs={"cluster_grid": (3, 5)},
        rounds=1,
        iterations=1,
    )
    show("Table 1 — weight configurations", format_results_table(rows, table1_weights.COLUMNS))

    # Paper shape: DPClustX stays within a few percent of TabEE under every
    # weight configuration (Section 6.2 reports sub-1% averages at scale).
    gaps = []
    for dp_row in (r for r in rows if r["explainer"] == "DPClustX"):
        tab_row = next(
            r
            for r in rows
            if r["explainer"] == "TabEE"
            and r["dataset"] == dp_row["dataset"]
            and r["n_clusters"] == dp_row["n_clusters"]
            and r["method"] == dp_row["method"]
        )
        for col in ("Equal", "lInt=0", "lSuf=0", "lDiv=0"):
            if tab_row[col] > 0:
                gaps.append((tab_row[col] - dp_row[col]) / tab_row[col])
    avg_gap = float(np.mean(gaps))
    assert avg_gap < 0.15  # lenient at bench scale; sub-1% at paper scale
    benchmark.extra_info["avg_relative_gap"] = avg_gap
