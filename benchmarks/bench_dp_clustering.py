"""Ablation: which DP clustering feeds DPClustX best at equal budget.

The paper's pipeline composes a DP clustering (eps = 1) with the explanation
(Section 3).  This bench holds the total budget fixed and swaps the private
clusterer — DP-k-means [64] vs DP-k-modes [53] — measuring the downstream
explanation Quality, plus the non-private k-means reference.
"""

from __future__ import annotations

import numpy as np

from repro.clustering import DPKMeans, DPKModes, KMeans
from repro.core.counts import ClusteredCounts
from repro.core.dpclustx import DPClustX
from repro.core.quality.scores import Weights
from repro.evaluation.quality import QualityEvaluator
from repro.experiments.common import load_dataset

from bench_common import BENCH_ROWS, show

EPS_CLUSTER = 1.0
N_CLUSTERS = 4


def test_dp_clustering_ablation(benchmark):
    data = load_dataset("Diabetes", BENCH_ROWS["Diabetes"], n_groups=N_CLUSTERS, seed=0)

    def run():
        results = {}
        fitters = {
            "k-means (non-private)": lambda rng: KMeans(N_CLUSTERS).fit(data, rng),
            "DP-k-means": lambda rng: DPKMeans(N_CLUSTERS, EPS_CLUSTER).fit(data, rng),
            "DP-k-modes": lambda rng: DPKModes(N_CLUSTERS, EPS_CLUSTER).fit(data, rng),
        }
        for name, fit in fitters.items():
            vals = []
            for seed in range(3):
                clustering = fit(np.random.default_rng(seed))
                counts = ClusteredCounts(data, clustering)
                evaluator = QualityEvaluator(counts, Weights(), 0)
                combo = (
                    DPClustX()
                    .select_combination(counts, rng=seed)
                    .combination
                )
                vals.append(evaluator.quality(tuple(combo)))
            results[name] = float(np.mean(vals))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — DP clustering substrate for DPClustX",
        "\n".join(f"  {k:<24} quality = {v:.4f}" for k, v in results.items()),
    )
    assert all(0.0 <= v <= 1.0 for v in results.values())
    benchmark.extra_info.update(results)
