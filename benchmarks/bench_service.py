"""Before/after benchmark of the explanation service layer.

Replays a realistic interactive workload — ``unique`` distinct requests
(different seed streams), each asked ``repeats`` times, as analysts re-open
the same explanation — against two server designs:

* ``serial_s`` — naive per-request execution: every request is handled
  statelessly (fresh :class:`~repro.core.counts.ClusteredCounts`, fresh
  scoring engine, full ``DPClustX.explain``), no batching, no caching —
  what a thin stateless HTTP wrapper around the explainer would do;
* ``service_s`` — the :class:`~repro.service.service.ExplanationService`
  path: requests coalesce into one batched scoring pass per configuration
  (:func:`~repro.evaluation.sweeps.explain_batched`), repeat releases are
  served from the fingerprint-keyed cache with zero budget charged.

Both paths produce byte-identical response payloads (``exact_equal`` in the
artifact — the serial release and the served release consume the same seed
streams); ``scripts/ci.sh`` fails if the throughput speedup regresses below
5x or the payloads diverge.

Entry points:

* ``pytest benchmarks/bench_service.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_service.py [--rows N --unique U --repeats R]``
  — standalone comparison emitting the ``BENCH_service.json`` artifact.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

from repro.core.counts import ClusteredCounts
from repro.core.dpclustx import DPClustX
from repro.experiments.common import fit_clustering, load_dataset
from repro.service import (
    ExplainRequest,
    ExplanationService,
    canonical_json,
    explanation_payload,
)

from bench_common import BENCH_ROWS, merge_json_artifact


def _dataset_and_clustering(n_rows: int, n_clusters: int):
    data = load_dataset("Diabetes", n_rows, n_groups=n_clusters, seed=0)
    clustering = fit_clustering("k-means", data, n_clusters, rng=0)
    return data, clustering


def _workload(unique: int, repeats: int) -> "list[ExplainRequest]":
    """``unique`` distinct seed streams, each requested ``repeats`` times."""
    return [
        ExplainRequest(tenant="bench", dataset="diabetes", seed=seed)
        for _ in range(repeats)
        for seed in range(unique)
    ]


def _serve_serial(data, clustering, requests) -> "list[str]":
    """The naive per-request server: stateless, uncached, unbatched."""
    payloads = []
    for request in requests:
        counts = ClusteredCounts(data, clustering)  # stateless handling
        explainer = DPClustX(
            request.n_candidates, request.weights_obj(), request.budget()
        )
        explanation = explainer.explain(
            data, clustering, rng=request.seed, counts=counts
        )
        entry = _PayloadEntry(data, counts)
        payloads.append(canonical_json(explanation_payload(request, entry, explanation)))
    return payloads


class _PayloadEntry:
    """Just enough of a DatasetEntry for explanation_payload()."""

    def __init__(self, data, counts):
        self.dataset_id = "diabetes"
        self.fingerprint = data.fingerprint()
        self.signature = counts.signature()


def _make_service(data, clustering) -> ExplanationService:
    service = ExplanationService(auto_tenant_budget=1e9)
    service.register_dataset("diabetes", data, clustering)
    return service


def _serve_batched(service: ExplanationService, requests) -> "list[str]":
    """The service path: submit everything, drain, collect payload bytes."""
    futures = [service.submit(r) for r in requests]
    service.process_pending()
    return [
        canonical_json(f.result(timeout=60)["result"]) for f in futures
    ]


def test_service_serial(benchmark):
    data, clustering = _dataset_and_clustering(BENCH_ROWS["Diabetes"], 5)
    requests = _workload(unique=4, repeats=4)
    benchmark(lambda: _serve_serial(data, clustering, requests))


def test_service_batched(benchmark):
    data, clustering = _dataset_and_clustering(BENCH_ROWS["Diabetes"], 5)
    requests = _workload(unique=4, repeats=4)

    def run():
        service = _make_service(data, clustering)
        return _serve_batched(service, requests)

    benchmark(run)


# --------------------------------------------------------------------------- #
# standalone before/after harness (JSON artifact)
# --------------------------------------------------------------------------- #


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def run_service_bench(
    n_rows: int = 8_000,
    n_clusters: int = 5,
    unique: int = 6,
    repeats: int = 6,
    timing_repeats: int = 3,
) -> dict:
    """Serial vs coalesced/cached service comparison + byte-equality check."""
    data, clustering = _dataset_and_clustering(n_rows, n_clusters)
    requests = _workload(unique, repeats)

    serial_payloads = _serve_serial(data, clustering, requests)
    service = _make_service(data, clustering)
    service_payloads = _serve_batched(service, requests)
    exact_equal = serial_payloads == service_payloads
    stats = service.stats.as_dict()

    serial_s = _median_time(
        lambda: _serve_serial(data, clustering, requests), timing_repeats
    )

    def timed_service():
        # A fresh service each run: the cold path (one batched scoring pass
        # per configuration) plus the warm path (cache hits) together.
        _serve_batched(_make_service(data, clustering), requests)

    service_s = _median_time(timed_service, timing_repeats)

    n_requests = len(requests)
    return {
        "benchmark": "explanation service vs naive per-request serving",
        "dataset": "diabetes_like",
        "rows": n_rows,
        "clusters": n_clusters,
        "unique_requests": unique,
        "repeats_per_request": repeats,
        "total_requests": n_requests,
        "timing_repeats": timing_repeats,
        "serial_s": serial_s,
        "service_s": service_s,
        "serial_rps": n_requests / serial_s,
        "service_rps": n_requests / service_s,
        "speedup": serial_s / service_s,
        "cache_hit_ratio": (stats["cache_hits"] + stats["coalesced"])
        / n_requests,
        "engine_calls": stats["engine_calls"],
        "releases": stats["releases"],
        "exact_equal": exact_equal,
    }


def main(argv: "list[str] | None" = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=8_000)
    parser.add_argument("--clusters", type=int, default=5)
    parser.add_argument("--unique", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=6)
    parser.add_argument("--timing-repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        default="BENCH_service.json",
        help="JSON artifact path ('-' to skip writing)",
    )
    args = parser.parse_args(argv)
    result = run_service_bench(
        n_rows=args.rows,
        n_clusters=args.clusters,
        unique=args.unique,
        repeats=args.repeats,
        timing_repeats=args.timing_repeats,
    )
    print(json.dumps(result, indent=2))
    if args.out != "-":
        # Merge, don't clobber: bench_load.py adds a "sharded" section to
        # the same artifact.
        merge_json_artifact(args.out, result)
    return result


if __name__ == "__main__":
    main()
