"""Figure 5 bench: Quality vs epsilon for the four explainers.

Regenerates the Figure 5 series at reduced scale and checks the paper's
qualitative shape: DPClustX improves with epsilon and beats the DP baselines
at the top of the swept range.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.runner import format_results_table
from repro.experiments import fig5_quality

from bench_common import show


def test_fig5_quality_vs_epsilon(benchmark, bench_config):
    rows = benchmark.pedantic(
        fig5_quality.run, args=(bench_config,), rounds=1, iterations=1
    )
    show("Figure 5 — Quality vs epsilon", format_results_table(rows, fig5_quality.COLUMNS))

    def q(explainer: str, eps: float) -> float:
        return next(
            r["quality"]
            for r in rows
            if r["explainer"] == explainer and np.isclose(r["epsilon"], eps)
        )

    eps_grid = sorted({r["epsilon"] for r in rows})
    lo, hi = eps_grid[0], eps_grid[-1]
    # Paper shape: DPClustX rises with eps ...
    assert q("DPClustX", hi) >= q("DPClustX", lo)
    # ... and dominates both DP baselines at the top of the range.
    assert q("DPClustX", hi) > q("DP-Naive", hi)
    assert q("DPClustX", hi) > q("DP-TabEE", hi)
    # Non-private TabEE upper-bounds everything (within averaging noise).
    assert q("TabEE", hi) >= q("DPClustX", hi) - 0.02
    benchmark.extra_info["dpclustx_hi"] = q("DPClustX", hi)
    benchmark.extra_info["tabee"] = q("TabEE", hi)
