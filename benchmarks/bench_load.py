"""Load benchmark for the sharded multi-process serving tier.

Two measurements against a live :class:`~repro.service.supervisor.ShardSupervisor`
deployment, driven through the :class:`~repro.service.frontend.AsyncFrontend`
data path (the same code ``python -m repro serve --workers N`` runs):

* **open loop** — Poisson arrivals at a fixed offered rate (exponential
  interarrival gaps, *not* waiting for responses — queueing delay shows up
  as latency, the honest way to measure a server), with zipf-skewed tenant
  and seed popularity (a few hot tenants and hot request configurations
  dominate, as in any real multi-tenant service).  Reports p50/p99/p999 of
  the per-request enqueue→resolve wall time and the achieved throughput.
* **saturation** — a closed-loop flood of the same workload, as fast as the
  deployment will take it, against both a single in-process service and the
  W-worker sharded tier.  The ratio is the tier's scaling headroom; on a
  single-core container it is ≈1 by construction (W workers share one CPU),
  so the artifact records ``cores`` and ``scripts/ci.sh`` gates the ≥3x
  expectation only where ≥8 cores exist to scale onto.

Correctness rides along: the DP releases (the ``result`` block) produced by
the single-process service and the sharded tier for the identical workload
must be byte-identical (``exact_equal``) — sharding may change *where* a
request is served, never *what* is released.  (Envelope ``meta`` is
excluded by design: a single process dedups cache hits across tenants,
while shards only dedup within their own partition, so cache/charge
annotations legitimately differ.)

Observability rides along too (both tiers run with per-tenant journal
ledgers, so the fsync path is part of what is measured):

* the ``obs`` section floods the single-process service with the metrics
  registry enabled and disabled (best-of-N each); ``throughput_ratio``
  is enabled/disabled — ``scripts/ci.sh`` gates it at >= 0.95 — and
  ``byte_identical`` asserts instrumentation never perturbs DP bytes;
* the sharded deployment is scraped through the front end's merged
  snapshot before shutdown; the artifact records per-span observation
  counts and that the snapshot renders as Prometheus text;
* open-loop and saturation results both break errors down per class
  (``"<code>:<reason>"``), so a 429 surge is distinguishable from 503s.

Entry point::

    python benchmarks/bench_load.py [--workers N --rate R --duration S]

merges a ``"sharded"`` section into ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import tempfile
import time

import numpy as np

from repro.experiments.common import fit_clustering, load_dataset
from repro.obs import (
    SPAN_HISTOGRAM,
    MetricsRegistry,
    prometheus_text,
    snapshot_series,
)
from repro.service import ExplainRequest, ExplanationService
from repro.service.cache import canonical_json
from repro.service.frontend import AsyncFrontend
from repro.service.supervisor import ShardSupervisor

from bench_common import merge_json_artifact


def _dataset_and_clustering(n_rows: int, n_clusters: int):
    data = load_dataset("Diabetes", n_rows, n_groups=n_clusters, seed=0)
    clustering = fit_clustering("k-means", data, n_clusters, rng=0)
    return data, clustering


def _zipf_probs(n: int, a: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks**-a
    return p / p.sum()


def make_workload(
    n_requests: int,
    rate_rps: float,
    *,
    n_tenants: int = 16,
    n_seeds: "int | None" = 8,
    tenant_skew: float = 1.1,
    seed_skew: float = 1.2,
    rng_seed: int = 0,
) -> "list[tuple[float, ExplainRequest]]":
    """``(arrival_offset_s, request)`` pairs: Poisson arrivals, zipf skew.

    ``n_seeds=None`` gives every request a unique seed — all cache misses,
    the compute-bound workload the saturation comparison scales on (a
    cache-hit flood would only measure IPC overhead).
    """
    rng = np.random.default_rng(rng_seed)
    gaps = rng.exponential(1.0 / rate_rps, size=n_requests)
    offsets = np.cumsum(gaps)
    tenants = rng.choice(
        n_tenants, size=n_requests, p=_zipf_probs(n_tenants, tenant_skew)
    )
    if n_seeds is None:
        seeds = np.arange(n_requests)
    else:
        seeds = rng.choice(
            n_seeds, size=n_requests, p=_zipf_probs(n_seeds, seed_skew)
        )
    return [
        (
            float(offsets[i]),
            ExplainRequest(
                tenant=f"tenant-{tenants[i]}",
                dataset="diabetes",
                seed=int(seeds[i]),
            ),
        )
        for i in range(n_requests)
    ]


def _quantile(sorted_xs: "list[float]", q: float) -> float:
    if not sorted_xs:
        return float("nan")
    idx = min(len(sorted_xs) - 1, max(0, int(round(q * (len(sorted_xs) - 1)))))
    return sorted_xs[idx]


def _error_classes(envelopes) -> "dict[str, int]":
    """Non-ok envelopes bucketed as ``"<code>:<reason>"`` counts."""
    counts: "dict[str, int]" = {}
    for e in envelopes:
        if e.get("status") == "ok":
            continue
        reason = (e.get("error") or {}).get("reason", "unknown")
        key = f"{e.get('code')}:{reason}"
        counts[key] = counts.get(key, 0) + 1
    return counts


async def _open_loop(
    frontend: AsyncFrontend, schedule, timeout_s: float
) -> dict:
    """Fire requests at their scheduled offsets; latency includes queueing."""
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    tasks = []

    async def one(request, intended: float):
        envelope = await frontend.explain(request, timeout_s=timeout_s)
        return loop.time() - intended, envelope

    for offset, request in schedule:
        delay = (t0 + offset) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(one(request, t0 + offset))
        )
    pairs = await asyncio.gather(*tasks)
    total_s = loop.time() - t0
    latencies = sorted(p[0] for p in pairs)
    envelopes = [e for _, e in pairs]
    errors = sum(1 for e in envelopes if e.get("status") != "ok")
    return {
        "requests": len(schedule),
        "errors": errors,
        "error_classes": _error_classes(envelopes),
        "offered_rps": len(schedule) / schedule[-1][0],
        "achieved_rps": len(schedule) / total_s,
        "p50_ms": _quantile(latencies, 0.50) * 1e3,
        "p99_ms": _quantile(latencies, 0.99) * 1e3,
        "p999_ms": _quantile(latencies, 0.999) * 1e3,
        "max_ms": latencies[-1] * 1e3,
    }


async def _flood(
    frontend: AsyncFrontend, requests, timeout_s: float
) -> "tuple[float, list[dict]]":
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    envelopes = await asyncio.gather(
        *[frontend.explain(r, timeout_s=timeout_s) for r in requests]
    )
    return loop.time() - t0, list(envelopes)


def _flood_single_process(
    data, clustering, requests, *, obs_enabled: bool = True
) -> "tuple[float, list[dict]]":
    """The single-process baseline: same workload, one coalescing service.

    Runs against a throwaway journal ledger directory so the fsync path is
    exercised like the sharded tier's; ``obs_enabled=False`` keeps every
    metric and span a no-op, which is what the overhead ratio compares.
    """
    with tempfile.TemporaryDirectory(prefix="bench-load-ledgers-") as ledgers:
        service = ExplanationService(
            ledger_dir=ledgers,
            auto_tenant_budget=1e9,
            metrics=MetricsRegistry(enabled=obs_enabled),
        )
        service.register_dataset("diabetes", data, clustering)
        t0 = time.perf_counter()
        futures = [service.submit(r) for r in requests]
        service.process_pending()
        envelopes = [f.result(timeout=120) for f in futures]
        elapsed = time.perf_counter() - t0
        service.stop()
    return elapsed, envelopes


def _span_counts(snapshot: dict) -> "dict[str, int]":
    """Observation count per span label in a merged registry snapshot."""
    return {
        labels[0]: cell["count"]
        for labels, cell in snapshot_series(snapshot, SPAN_HISTOGRAM).items()
    }


def _result_bytes(envelopes) -> "list[str]":
    return [
        canonical_json(e["result"]) if e.get("status") == "ok" else canonical_json(e)
        for e in envelopes
    ]


def run_load_bench(
    n_rows: int = 2_000,
    n_clusters: int = 3,
    workers: int = 2,
    rate_rps: float = 50.0,
    duration_s: float = 3.0,
    flood_requests: int = 200,
    timeout_s: float = 120.0,
    obs_repeats: int = 4,
) -> dict:
    data, clustering = _dataset_and_clustering(n_rows, n_clusters)
    schedule = make_workload(
        max(8, int(rate_rps * duration_s)), rate_rps
    )
    flood = [
        r
        for _, r in make_workload(
            flood_requests, rate_rps, n_seeds=None, rng_seed=1
        )
    ]

    # Instrumentation overhead: best-of-N floods with the registry enabled
    # vs disabled (fresh service + ledger dir each run, so caches and
    # journal replay never favour one side).  Each repeat alternates which
    # side runs first: when ambient load is decaying (this bench runs right
    # after heavier ones in CI) a fixed order hands the first runner a
    # systematic penalty that best-of-N alone cannot cancel.  N=2 also
    # proved too few on a busy single-core box, so the default is
    # best-of-4.  The enabled envelopes double as the single-process
    # baseline for the sharded comparison below.
    _flood_single_process(data, clustering, flood)  # warmup (not timed)
    enabled_times, disabled_times = [], []
    single_envelopes = disabled_envelopes = None
    for i in range(max(1, obs_repeats)):
        sides = ("on", "off") if i % 2 == 0 else ("off", "on")
        for side in sides:
            if side == "on":
                t_on, env_on = _flood_single_process(data, clustering, flood)
                enabled_times.append(t_on)
            else:
                t_off, env_off = _flood_single_process(
                    data, clustering, flood, obs_enabled=False
                )
                disabled_times.append(t_off)
        single_envelopes, disabled_envelopes = env_on, env_off
    single_s = min(enabled_times)
    obs = {
        "enabled_s": min(enabled_times),
        "disabled_s": min(disabled_times),
        "throughput_ratio": min(disabled_times) / min(enabled_times),
        "byte_identical": _result_bytes(single_envelopes)
        == _result_bytes(disabled_envelopes),
    }

    with tempfile.TemporaryDirectory(prefix="bench-load-shards-") as ledgers:
        supervisor = ShardSupervisor(
            workers, ledger_dir=ledgers, auto_tenant_budget=1e9
        )
        supervisor.start()
        try:
            supervisor.register_dataset("diabetes", data, clustering)

            async def session():
                frontend = AsyncFrontend(supervisor)
                await frontend.start()
                open_loop = await _open_loop(frontend, schedule, timeout_s)
                flood_s, flood_envelopes = await _flood(
                    frontend, flood, timeout_s
                )
                snapshot = frontend.metrics_snapshot()
                await frontend.close()
                return open_loop, flood_s, flood_envelopes, snapshot

            open_loop, flood_s, flood_envelopes, snapshot = asyncio.run(
                session()
            )
            worker_latency = [
                w.get("latency") for w in supervisor.describe()["workers"]
            ]
        finally:
            supervisor.stop()

    obs["span_counts"] = _span_counts(snapshot)
    obs["prometheus_text_ok"] = prometheus_text(snapshot).startswith("# HELP")

    exact_equal = _result_bytes(single_envelopes) == _result_bytes(
        flood_envelopes
    )
    return {
        "benchmark": "sharded serving tier under open-loop + saturation load",
        "workers": workers,
        "cores": os.cpu_count(),
        "rows": n_rows,
        "clusters": n_clusters,
        "open_loop": open_loop,
        "saturation": {
            "requests": len(flood),
            "single_process_s": single_s,
            "single_process_rps": len(flood) / single_s,
            "sharded_s": flood_s,
            "sharded_rps": len(flood) / flood_s,
            "speedup": single_s / flood_s,
            "error_classes": _error_classes(flood_envelopes),
        },
        "obs": obs,
        "exact_equal": exact_equal,
        "worker_latency": worker_latency,
    }


def main(argv: "list[str] | None" = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=2_000)
    parser.add_argument("--clusters", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--rate", type=float, default=50.0,
                        help="offered open-loop arrival rate (requests/s)")
    parser.add_argument("--duration", type=float, default=3.0,
                        help="open-loop phase length (s)")
    parser.add_argument("--flood-requests", type=int, default=200,
                        help="closed-loop saturation workload size")
    parser.add_argument("--obs-repeats", type=int, default=4,
                        help="best-of-N repeats for the metrics-overhead ratio")
    parser.add_argument(
        "--out",
        default="BENCH_service.json",
        help="artifact to merge the 'sharded' section into ('-' to skip)",
    )
    args = parser.parse_args(argv)
    result = run_load_bench(
        n_rows=args.rows,
        n_clusters=args.clusters,
        workers=args.workers,
        rate_rps=args.rate,
        duration_s=args.duration,
        flood_requests=args.flood_requests,
        obs_repeats=args.obs_repeats,
    )
    print(json.dumps(result, indent=2))
    if args.out != "-":
        merge_json_artifact(args.out, {"sharded": result})
    return result


if __name__ == "__main__":
    main()
